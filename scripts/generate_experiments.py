#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md: run every experiment, record vs paper.

Run:  python scripts/generate_experiments.py [--runs N] [--out PATH]
"""

import argparse
import io
import time

from repro.analysis import generate_experiments_report

PREAMBLE = """\
# EXPERIMENTS — paper vs. measured

Every table and figure of *Network Performance Effects of HTTP/1.1,
CSS1, and PNG* (SIGCOMM '97), reproduced by this library and printed
next to the published numbers.  Regenerate with:

    python scripts/generate_experiments.py

Columns: `Pa` packets (both directions), `Bytes` application payload,
`Sec` elapsed time, `%ov` TCP/IP header overhead share; `(p)`/`(paper)`
columns are the published values; ratio columns are measured/paper.
Protocol cells are means of {runs} seeded simulation runs (the paper
averaged 5 real runs); browser tables use {browser_runs} runs (the
paper used 3).

## Reading guide

The reproduction targets *shape*, not absolute equality: who wins, by
roughly what factor, where the crossovers sit.  The substrate is a
deterministic TCP simulator calibrated with a handful of constants
(server CPU costs, WAN bottleneck rate, modem efficiency — see
DESIGN.md); everything else is emergent from real TCP mechanics, real
HTTP bytes, and real image codecs.

Headline checks (all enforced by `benchmarks/`):

* pipelined HTTP/1.1 vs HTTP/1.0-with-4-connections: ≥2× fewer packets
  on first retrieval, ~10× on revalidation, lower elapsed time in every
  environment;
* HTTP/1.1 *without* pipelining: far fewer packets than HTTP/1.0 but
  **higher elapsed time** (Tables 3, 6, 7);
* deflate: ~3× on the HTML, ~16 % of packets and ~12 % of time on first
  retrieval, ~68 %/~64 % on the HTML-only modem test;
* GIF→PNG ≈ 10 % smaller overall with the sub-200 B images *growing*;
  animations→MNG ≈ 35 % smaller;
* Figure 1: ≥4× byte reduction from HTML+CSS, one request saved.

A final section quantifies the paper's *future work*: the compact HTTP
wire representation (its "factor of five or ten" envelope), the server
CPU savings it said "could now be quantified", rendering timelines with
range-request multiplexing, progressive-format byte fractions, and the
two-connection packet-train effect.

## Robustness under injected faults

The closing robustness table re-runs the pipelined WAN first-time
fetch under each named fault plan (`repro.faults`): Gilbert–Elliott
bursty segment loss, combined wire chaos (loss + reordering +
duplication + payload corruption caught by the receiver's checksum),
a flaky server (scripted 503s and mid-body aborts), and a hostile
server (close-after-one-response plus a long stall).  Every row still
retrieves all 43 resources byte-identically; the columns show what the
recovery cost — drops split by cause, TCP retransmissions / RTO fires /
fast retransmits, checksum discards, and client-level retries.

The full sweep is `python -m repro chaos`: every fault plan × protocol
mode (pipelined, persistent, HTTP/1.0, MUX, MUX push, sharded) ×
environment (WAN, PPP), 48 cells, deterministic in `--seed` (default
1997; per-cell seeds are derived from the cell coordinates, so no two
cells share a fault schedule).  A failing cell reproduces in isolation
from its printed coordinates alone:

    python -m repro chaos --seed 1997 --only bursty-loss:pipelined:WAN

With `faults=None` (the default everywhere) the injector is never
installed and the seven golden WAN traces remain byte-identical.

## Modern protocol modes

The paper closes by pointing past pipelining — at multiplexed
transports ("HTTP-NG"), server push, and the workarounds deployed
while the world waited.  Three post-paper modes put numbers on that
future against the same 1997 networks (the "Modern protocol modes"
table below; also `python -m repro report`):

* **HTTP/MUX** (`--mode mux`) — one TCP connection carrying
  HTTP/2-shaped frames: every request opens an odd-numbered stream,
  responses interleave as flow-controlled `DATA` frames (16 KB initial
  window, 4 KB max frame), so the 35 KB hero GIF no longer blocks the
  small images behind it.
* **HTTP/MUX Push** (`--mode mux-push`) — after a 200 HTML response
  the server speculatively promises and frames all 42 inline GIFs on
  even-numbered streams; the client refuses duplicates with `CANCEL`
  (cancel-on-duplicate), so a warm cache costs only a promise frame,
  never a transfer.
* **HTTP/1.1 Sharded x4** (`--mode sharded`) — the late-90s workaround
  the MUX modes obsolete: content hashed across 4 origins (ports
  80–83), 2 redundant persistent connections each.  More parallelism,
  8 slow-start ramps, and 8 connections' worth of per-packet overhead.

The headline matches the history: on the WAN, MUX framing costs about
as much as disciplined pipelining buys (the frame headers are the %ov
delta), push saves the request packets on first visits and stays
dormant on revalidation, and sharding wins only where parallel server
CPU beats connection overhead (the LAN) — which is why HTTP/2
multiplexes one connection instead.

Modes are an open registry, not an enum: a transport plugs in with

    from repro.core.modes import ProtocolMode
    from repro.core.registry import register_mode
    register_mode(ProtocolMode("HTTP/FANCY", HTTP11, transport=...),
                  aliases=("fancy",), environments=("LAN", "WAN"))

and immediately resolves everywhere a mode is named — `run_experiment`,
`ExperimentMatrix`, the chaos planner, the sanitizer (each transport
contributes its own trace rules: "exactly one connection" for MUX,
"every origin port dialed, ≤2 handshakes each" for sharding, frame
legality and flow-control accounting for both MUX modes), and the
report tables.

## Performance

The whole reproduction is wall-time-bounded by the simulator kernel,
so the kernel carries an opt-in **flow-level fast-forward**
(`repro.simnet.fastforward`): when the TCP layer flags a
window-limited sender in steady bulk transfer — ESTABLISHED, no loss
or recovery in sight, a deep send queue, the receiver a pure sink
with textbook delayed-ACK state — the driver lifts the flow's
in-flight deliveries and timer standings off the event heap and
replays the per-segment arithmetic (cwnd growth, RTT estimation,
delayed ACKs, FIFO link serialization with the same RNG jitter draws,
V.42bis dictionary updates) in a tight local loop, synthesizing the
exact packet records per-segment execution would have produced.  Any
discontinuity — another flow's event, an application callback doing
anything at all, an RTO deadline, the send queue running low, an
exact event-time tie — ends the span and hands back to per-segment
execution.  A span pays a heap scan and two heap rebuilds, so a flow
whose first span synthesizes almost nothing (request/response traffic
where the application's next request breaks every span immediately)
is vetoed and runs per-segment for the rest of its life — the HTTP
cells pay at most one probe span per connection.

Traces are byte-identical by construction and by gate: `scripts/
check.sh` compares a WAN and a PPP cell against `--no-fastpath`, the
seven golden WAN fixtures and the 48-cell chaos grid run with the
driver enabled, and `python -m repro bench --fastpath` re-verifies
identity before recording timings.  Measured on the bulk-transfer
cells (best of 3, under `fastpath` in `BENCH_simnet.json`):

    cell                        on        off      speedup
    bulk-8MB | LAN              34 ms     132 ms   3.9x
    bulk-4MB | WAN              16 ms      69 ms   4.3x
    bulk-2MB no-modem | PPP     10 ms      46 ms   4.8x
    bulk-1MB no-modem | PPP      6 ms      22 ms   3.6x

`fastpath` is a cache-key dimension of `ExperimentSpec` and an escape
hatch everywhere a run is configured: `python -m repro run
--no-fastpath`, `run_experiment(..., fastpath=False)`,
`TcpConfig(fastpath=False)`.

## Population-scale experiments

The paper's tables measure one robot against one server.  The fleet
engine (`repro.fleet`) scales the same simulator to whole populations:

    python -m repro fleet --users 1000 --cohorts 16 --environment WAN \
        --arrival-rate 10 --pages-per-user 1 --backbone-bps 45e6 \
        --max-sim-time 300 --jobs 4 --cache --progress

A `FleetSpec` compiles into per-user plans — Poisson arrivals, a
weighted protocol-mode mix (plain-HTTP modes only: a cohort shares
one port-80 listener), exponential think-times between pages — all
drawn from one seeded RNG stream in strict user-index order, so the
schedule is a pure function of the spec.  The population shards into
cohorts; one simulator hosts each cohort end to end (N client stacks,
one finite-capacity server, a shared bottleneck link), and cohorts
interact only through an analytic bottleneck model: each fixed-point
round the parent water-fills the backbone capacity over the cohorts'
measured per-epoch downlink demands (max-min fair; ≥90 % use of a
grant reads as saturation, bounded demands get 25 % headroom over a
5 %-of-equal-split floor) and re-simulates every cohort under its new
shares.  Shares are integer-quantized bits/second *before* unit
construction, and the quantized share vector + cohort index + every
`FleetSpec` field (`FLEET_CACHE_KEY_FIELDS`, held complete by the
deep linter's cache-key pass) form the unit's cache identity — so a
10k-user run is just a grid of cacheable, journaled matrix units, and
`--resume` of a killed run hydrates byte-identically, as do `--jobs 1`
vs `--jobs N`.

Two semantics deliberately differ from the single-robot runner:
`max_sim_time` is a *hard* deadline (an overloaded population would
otherwise run for unbounded simulated time), with pages still in
flight at the cutoff counted as session errors; and a failed page
ends its session, the way real users give up.

The fleet report leads with what single-robot tables cannot show:
nearest-rank p50/p95/p99 page-load time overall and per protocol
mode, Jain's fairness index over per-session means, and the server's
accept-backlog queueing record.  Committed throughput (under `fleet`
in `BENCH_simnet.json`, gated at ≥1000 users/minute by
`scripts/check.sh`): 1000 WAN users in 16 cohorts simulate in ~13 s
of wall time — ~4700 users/minute — at p50 1.33 s / p95 6.23 s /
p99 6.60 s with zero errors.

## Known deviations

* **HTTP/1.0 first-retrieval byte counts** run ~12 % below the paper's
  (≈188 KB vs ≈216 KB).  The paper's old libwww 4.1D client evidently
  sent even fatter requests than our reconstruction; the orderings and
  every packet count are unaffected.
* **Jigsaw revalidation bytes** are ~10–15 % low for the same reason
  (exact 1997 Jigsaw response headers are not recoverable).
* **Mixed-case deflate penalty** reproduces in direction (mixed > lower)
  but smaller than the paper's 0.35-vs-0.27 because the synthetic page
  is less tag-dense than the real Netscape/Microsoft merge.
* **Table 3 / Table 10 elapsed times** depend on unpublished details
  (libwww's disk-cache latency, browser scheduling); we model the
  paper's stated mechanisms and match within ~2× where the paper's own
  explanation is qualitative.
* The robot's mean request size is ~120–150 B against the paper's
  ~190 B: our synthetic URLs are shorter than real 1997 paths.

---

"""


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=5)
    parser.add_argument("--browser-runs", type=int, default=3)
    parser.add_argument("--out", default="EXPERIMENTS.md")
    args = parser.parse_args()

    start = time.time()
    body = generate_experiments_report(runs=args.runs,
                                       browser_runs=args.browser_runs)
    elapsed = time.time() - start

    out = io.StringIO()
    out.write(PREAMBLE.format(runs=args.runs,
                              browser_runs=args.browser_runs))
    out.write("```\n")
    out.write(body)
    out.write("\n```\n\n")
    out.write(f"*Generated in {elapsed:.0f} s of wall time "
              f"(simulated hours of 1997 network traffic).*\n")
    with open(args.out, "w") as handle:
        handle.write(out.getvalue())
    print(f"wrote {args.out} ({elapsed:.0f} s)")


if __name__ == "__main__":
    main()
