#!/bin/sh
# Repo health check: the tier-1 test suite plus a parallel, cached
# smoke run of the full report through the CLI.
#
#   scripts/check.sh            # everything
#   FAST=1 scripts/check.sh     # skip the slow whole-grid sweeps
set -eu

cd "$(dirname "$0")/.."
export PYTHONPATH=src

# Static determinism lint + golden-trace sanitization run in every
# mode, FAST included: they are cheap and guard the properties (bit
# reproducibility, TCP invariants) everything else rests on.
sh scripts/lint.sh

# Whole-program deep lint: cache-key completeness, RNG-stream
# discipline, pool purity — gated against the committed baseline.
# Fixed findings must be removed from DEEP_BASELINE.json (stale
# entries fail the run); new findings fail outright.  The analyzer
# runs on every check, so it also carries a wall-time budget — if it
# ever creeps past DEEP_LINT_BUDGET seconds it is no longer a
# pre-commit tool and the graph construction needs attention.
python - <<'EOF'
import os
import subprocess
import sys
import time

budget = float(os.environ.get("DEEP_LINT_BUDGET", "10"))
start = time.monotonic()
proc = subprocess.run([sys.executable, "-m", "repro", "lint", "--deep",
                       "--baseline", "DEEP_BASELINE.json"])
elapsed = time.monotonic() - start
if proc.returncode != 0:
    sys.exit(proc.returncode)
if elapsed > budget:
    print(f"check.sh: deep lint took {elapsed:.1f}s, over the "
          f"{budget:.0f}s budget (DEEP_LINT_BUDGET)", file=sys.stderr)
    sys.exit(1)
EOF

if [ "${FAST:-0}" = "1" ]; then
    python -m pytest -x -q -m "not slow"
else
    python -m pytest -x -q
fi

# Exercise the experiment-matrix engine end to end: two worker
# processes, results cached under a throwaway directory.
SMOKE_CACHE=".repro-cache/check-smoke"
rm -rf "$SMOKE_CACHE"
python -m repro report --runs 1 --jobs 2 --cache \
    --cache-dir "$SMOKE_CACHE" > /dev/null
# A second pass must be pure cache hits (zero simulation runs).  The
# runner stats land on stderr; capture both streams explicitly rather
# than relying on redirection order tricks (`2>&1 >/dev/null |` pipes
# only stderr, which reads as a typo for the common swap-and-discard
# idiom and silently greps nothing if the stats ever move to stdout).
SMOKE_OUT="$SMOKE_CACHE/second-pass.out"
python -m repro report --runs 1 --jobs 2 --cache \
    --cache-dir "$SMOKE_CACHE" > "$SMOKE_OUT" 2>&1
grep -q " 0 simulated" "$SMOKE_OUT" \
    || { echo "check.sh: cached report re-ran simulations" >&2; exit 1; }
rm -rf "$SMOKE_CACHE"

# Post-paper protocol modes: one sanitized WAN cell per mode.  The
# --sanitize flag runs the live TCP sanitizer, the mode's trace rules
# (connection counts, origin ports), and — for the MUX modes — the
# frame-stream validator over every frame on the wire.
python -m repro run --mode mux --environment WAN --sanitize > /dev/null
python -m repro run --mode mux-push --environment WAN --sanitize \
    > /dev/null
python -m repro run --mode sharded --environment WAN --sanitize \
    > /dev/null

# Chaos smoke: fault-injected cells (one link plan, one server plan,
# one cell per post-paper mode) must still retrieve the full site
# byte-identical within the robot's retry budget.  The full 48-cell
# grid is the slow-marked test.
python -m repro chaos --seed 1997 --only bursty-loss:pipelined:WAN \
    > /dev/null
python -m repro chaos --seed 1997 --only flaky-server:http/1.1:WAN \
    > /dev/null
python -m repro chaos --seed 1997 --only bursty-loss:mux:WAN \
    > /dev/null
python -m repro chaos --seed 1997 --only wire-chaos:mux-push:WAN \
    > /dev/null
python -m repro chaos --seed 1997 --only hostile-server:sharded:WAN \
    > /dev/null

# Harness-chaos smoke: SIGKILL a pool worker mid-chunk during a
# 12-unit grid and require the supervisor to respawn the pool, retry
# the lost units, and finish with numbers byte-identical to an
# undisturbed serial run — inside a wall-time budget (default 120 s;
# a wedged drain would otherwise hang this script forever).
python - <<'EOF'
import os
import time

from repro.faults import HarnessFaultPlan
from repro.matrix import ExperimentSpec, MatrixRunner

specs = [ExperimentSpec(mode=mode, scenario="revalidate",
                        environment="LAN", server=server,
                        seeds=(0, 1, 2))
         for mode in ("pipelined", "HTTP/1.1")
         for server in ("Apache", "Jigsaw")]

serial = MatrixRunner(jobs=1).run_many(specs)

budget = float(os.environ.get("HARNESS_CHAOS_BUDGET", "120"))
plan = HarnessFaultPlan(name="smoke-kill", kill_unit=4)
start = time.monotonic()
with MatrixRunner(jobs=2, chunk_size=2, harness_faults=plan,
                  unit_deadline=30.0) as runner:
    supervised = runner.run_many(specs)
    stats = runner.stats
elapsed = time.monotonic() - start

if elapsed > budget:
    raise SystemExit(f"check.sh: harness-chaos smoke took "
                     f"{elapsed:.1f}s, over the {budget:.0f}s budget")
if stats.pool_respawns < 1:
    raise SystemExit("check.sh: worker kill never triggered a "
                     "pool respawn")
if stats.failures:
    raise SystemExit(f"check.sh: {stats.failures} unit(s) were "
                     f"quarantined instead of recovered")
for a, b in zip(serial, supervised):
    if a.packets != b.packets or a.elapsed != b.elapsed \
            or a.percent_overhead != b.percent_overhead:
        raise SystemExit(f"check.sh: supervised recovery diverged "
                         f"from serial on {b.runs and b.runs[0]}")
print(f"harness-chaos smoke: recovered from worker kill in "
      f"{elapsed:.1f}s ({stats.pool_respawns} respawn(s), "
      f"{stats.unit_retries} retries)")
EOF

# Fast-path identity smoke: the flow-level fast-forward driver must be
# byte-invisible.  One full-stack HTTP cell guards the decline path
# (request/response traffic sits below the profitability threshold),
# then bulk transfers on a clean WAN link and on PPP behind the
# compressing modem must both engage the driver and match per-segment
# execution exactly (a silent fallback would make that half vacuous).
python - <<'EOF'
from repro.core.runner import run_experiment
from repro.simnet.link import ENVIRONMENTS
from repro.simnet.network import SERVER_HOST, TwoHostNetwork

kw = dict(environment="WAN", profile="Apache", seed=0, keep_trace=True)
fast = run_experiment("HTTP/1.1 Pipelined", "first-time",
                      fastpath=True, **kw)
slow = run_experiment("HTTP/1.1 Pipelined", "first-time",
                      fastpath=False, **kw)
if fast.trace_lines != slow.trace_lines:
    raise SystemExit("check.sh: fast path not byte-identical on "
                     "HTTP/1.1 Pipelined | WAN")

def bulk(environment, fastpath, modem):
    net = TwoHostNetwork(ENVIRONMENTS[environment], seed=0, jitter=0.02,
                         fastpath=fastpath, modem_compression=modem)
    body = (bytes(range(256)) * 1025)[:256 * 1024]

    def on_accept(conn):
        conn.on_connect = lambda c: c.send(body, close=True)

    net.server.listen(80, on_accept)
    net.client.connect(SERVER_HOST, 80)
    net.run()
    return net

for environment, modem in (("WAN", None), ("PPP", True)):
    fast_net = bulk(environment, True, modem)
    slow_net = bulk(environment, False, modem)
    if fast_net.trace.records != slow_net.trace.records:
        raise SystemExit(f"check.sh: fast path not byte-identical on "
                         f"bulk | {environment}")
    if fast_net.sim.perf.fastforward_spans == 0:
        raise SystemExit(f"check.sh: fast path never engaged on "
                         f"bulk | {environment}")
EOF

# Benchmark smoke: one repetition per cell into a throwaway file, then
# validate the emitted JSON against the schema the repo's tooling reads
# and gate wall time against the committed baseline.  The threshold is
# generous (25% by default) because --quick takes one sample per cell;
# override with BENCH_REGRESSION_THRESHOLD=0.5 on noisy machines.
BENCH_SMOKE=".repro-cache/check-bench.json"
rm -f "$BENCH_SMOKE"
python -m repro bench --quick --output "$BENCH_SMOKE" > /dev/null
python - "$BENCH_SMOKE" <<'EOF'
import json, os, sys
from repro.perf import check_bench_regression, validate_bench_payload
with open(sys.argv[1]) as fh:
    payload = json.load(fh)
problems = validate_bench_payload(payload)
if not problems and os.path.exists("BENCH_simnet.json"):
    with open("BENCH_simnet.json") as fh:
        committed = json.load(fh)
    threshold = float(os.environ.get("BENCH_REGRESSION_THRESHOLD", "0.25"))
    problems = check_bench_regression(payload["current"]["cells"],
                                      committed["baseline"]["cells"],
                                      threshold=threshold)
for problem in problems:
    print(f"check.sh: bench problem: {problem}", file=sys.stderr)
sys.exit(1 if problems else 0)
EOF
rm -f "$BENCH_SMOKE"

# Fleet smoke: a 200-user population on two jobs must finish inside
# the wall-time budget (default 180 s) and report percentiles
# byte-identical to the same population run serially — the determinism
# contract the fleet engine commits to at any job count.
python - <<'EOF'
import os
import time

from repro.fleet import FleetSpec, run_fleet
from repro.matrix import MatrixRunner

budget = float(os.environ.get("FLEET_SMOKE_BUDGET", "180"))
spec = FleetSpec(users=200, cohorts=4, environment="WAN",
                 arrival_rate=4.0, think_time=2.0, pages_per_user=1,
                 rounds=2, max_sim_time=240.0, backbone_bps=20e6)
start = time.monotonic()
with MatrixRunner(jobs=2) as runner:
    parallel = run_fleet(spec, runner=runner)
elapsed = time.monotonic() - start
with MatrixRunner(jobs=1) as runner:
    serial = run_fleet(spec, runner=runner)

if elapsed > budget:
    raise SystemExit(f"check.sh: fleet smoke took {elapsed:.1f}s, "
                     f"over the {budget:.0f}s budget")
if parallel.cohorts != serial.cohorts:
    raise SystemExit("check.sh: fleet cohort results differ between "
                     "--jobs 2 and --jobs 1")
for p in (50, 95, 99):
    if parallel.percentile(p) != serial.percentile(p):
        raise SystemExit(f"check.sh: fleet p{p} differs between "
                         f"--jobs 2 and --jobs 1")
if not parallel.page_times:
    raise SystemExit("check.sh: fleet smoke completed zero pages")
print(f"fleet smoke: {spec.users} users in {elapsed:.1f}s, "
      f"p50={parallel.percentile(50):.2f}s "
      f"p99={parallel.percentile(99):.2f}s, serial-identical")
EOF

# The committed benchmark file must carry a valid fleet section (the
# population-scale throughput record `python -m repro bench --fleet`
# maintains) meeting the >=1000 users/minute commitment.
python - <<'EOF'
import json
import sys

from repro.perf import validate_bench_payload

with open("BENCH_simnet.json") as fh:
    payload = json.load(fh)
problems = validate_bench_payload(payload)
fleet = payload.get("fleet")
if fleet is None:
    problems.append("committed BENCH_simnet.json has no fleet section "
                    "(run: python -m repro bench --fleet)")
elif fleet.get("users_per_minute", 0) < 1000:
    problems.append(f"committed fleet bench below 1000 users/minute "
                    f"({fleet.get('users_per_minute')})")
for problem in problems:
    print(f"check.sh: fleet bench problem: {problem}", file=sys.stderr)
sys.exit(1 if problems else 0)
EOF

echo "check.sh: all green"
