#!/bin/sh
# Time the representative benchmark cells and (re)write
# BENCH_simnet.json at the repo root.  The file's baseline section is
# preserved across runs, so speedup_vs_baseline tracks the simulator's
# perf trajectory PR over PR.
#
#   scripts/bench.sh                # 3 repetitions per cell, best kept
#   scripts/bench.sh --quick        # 1 repetition (CI smoke mode)
#   scripts/bench.sh --repeats 10   # more repetitions for stable numbers
#   scripts/bench.sh --matrix       # 24-cell grid cold vs. warm
#                                   # (artifact store + worker pool),
#                                   # recorded under the 'matrix' key
set -eu

cd "$(dirname "$0")/.."
export PYTHONPATH=src

exec python -m repro bench "$@"
