#!/bin/sh
# Determinism lint over the source tree, then the TCP protocol
# sanitizer over the golden WAN trace fixtures.  Exit 0 means the tree
# is determinism-clean and every golden trace satisfies the paper's TCP
# invariants (handshake order, sequence monotonicity, Nagle,
# delayed-ACK deadlines, independent half-close).
#
#   scripts/lint.sh                 # src/repro + golden fixtures
#   scripts/lint.sh path/to/code    # lint other paths instead
set -eu

cd "$(dirname "$0")/.."
export PYTHONPATH=src

python -m repro lint --sanitize-traces -- "$@"
