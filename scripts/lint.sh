#!/bin/sh
# Determinism lint over the source tree, then the TCP protocol
# sanitizer over the trace fixtures.  Exit 0 means the tree is
# determinism-clean and every golden trace satisfies the paper's TCP
# invariants (handshake order, sequence monotonicity, Nagle,
# delayed-ACK deadlines, independent half-close); lossy_* fixtures
# (captured under fault injection) validate under the relaxed
# fault-run config, which still enforces the structural invariants.
#
#   scripts/lint.sh                 # src/repro + all fixtures
#   scripts/lint.sh path/to/code    # lint other paths instead
set -eu

cd "$(dirname "$0")/.."
export PYTHONPATH=src

python -m repro lint --sanitize-traces -- "$@"
