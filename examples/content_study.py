#!/usr/bin/env python3
"""The content study: CSS1 replacement, GIF->PNG/MNG, and deflate.

Reproduces the paper's "Impact of Changing Web Content" sections with
the real codecs: per-image GIF vs PNG sizes (watch the tiny ones grow),
the animation-to-MNG conversion, the Figure 1 banner replacement, the
whole-page CSS pass, and the back-of-the-envelope "all techniques
combined" estimate from the conclusions.

Run:  python examples/content_study.py
"""

from repro.analysis import reproduce_content_experiments
from repro.content import (apply_all_transforms, banner_replacement,
                           build_microscape_site, convert_site_to_png,
                           css_replacement_analysis)
from repro.http import deflate_encode


def main() -> None:
    site = build_microscape_site()
    png = convert_site_to_png(site)

    print("Per-image GIF -> PNG conversion")
    print(f"{'image':30s} {'GIF':>7s} {'PNG':>7s} {'change':>8s}")
    for record in png.static:
        change = record.converted_bytes - record.gif_bytes
        print(f"{record.url:30s} {record.gif_bytes:7d} "
              f"{record.converted_bytes:7d} {change:+8d}")
    print(f"{'TOTAL (static)':30s} {png.static_gif_total:7d} "
          f"{png.static_png_total:7d} {-png.static_saved:+8d}")
    print()
    print("Animations -> MNG")
    for record in png.animations:
        print(f"{record.url:30s} {record.gif_bytes:7d} "
              f"{record.converted_bytes:7d} {-record.saved:+8d}")
    print()

    figure1 = banner_replacement("solutions")
    print("Figure 1: the 'solutions' banner")
    print(f"  GIF: 682 bytes (paper) / "
          f"{next(o.size for o in site.image_objects if o.text == 'solutions')}"
          f" bytes (ours)")
    print(f"  HTML+CSS ({figure1.byte_size} bytes):")
    print(f"    {figure1.html}")
    for line in figure1.css.serialize().splitlines():
        print(f"    {line}")
    print()

    css = css_replacement_analysis(site)
    print(f"CSS replacement: {css.requests_saved}/42 images become "
          f"markup; {css.image_bytes_removed} B of GIF -> "
          f"{css.markup_bytes_added} B of HTML+CSS")
    print()

    combined = apply_all_transforms(site)
    before = site.html.size + site.total_image_bytes
    before_compressed = before - site.html.size + len(
        deflate_encode(site.html.body))
    after = (combined.total_payload - len(combined.html)
             + len(deflate_encode(combined.html)))
    print("All techniques combined (CSS + PNG/MNG + deflate):")
    print(f"  payload {before} -> {after} bytes "
          f"({after / before:.0%} of original)")
    print(f"  requests 43 -> {combined.request_count}")
    print(f"  (paper: 'might be downloaded over a modem in "
          f"approximately 60% of the time')")

    print()
    print("Progressive rendering (bytes needed for 90% display area):")
    from repro.content import encode_gif, encode_png
    from repro.content.progressive import (bytes_for_coverage,
                                           gif_area_coverage,
                                           png_area_coverage)
    hero = next(o for o in site.image_objects
                if o.url.endswith("hero.gif")).image
    for label, wire, fn in (
            ("GIF baseline", encode_gif(hero), gif_area_coverage),
            ("GIF interlaced", encode_gif(hero, interlace=True),
             gif_area_coverage),
            ("PNG baseline", encode_png(hero), png_area_coverage),
            ("PNG Adam7", encode_png(hero, interlace=True),
             png_area_coverage)):
        fraction = bytes_for_coverage(wire, fn, 0.9)
        print(f"  {label:15s} {fraction:4.0%} of {len(wire)} bytes")

    _, summary = reproduce_content_experiments()
    print()
    print(summary)


if __name__ == "__main__":
    main()
