#!/usr/bin/env python3
"""Look at the wire the way the paper's authors did: dumps and xplot.

Runs one pipelined first-time retrieval on the simulated WAN, prints
the opening of the client-side packet trace (their tcpdump), renders an
ASCII time-sequence diagram (their xplot), and writes a real
xplot-format file.  The slow-start "staircase" in the diagram is the
paper's whole argument in one picture: a new connection spends its
first round trips ramping up.

Run:  python examples/trace_analysis.py
"""

from repro.analysis.xplot import ascii_time_sequence, write_xplot
from repro.client.robot import ClientConfig, Robot
from repro.content import build_microscape_site
from repro.server import APACHE, ResourceStore, SimHttpServer
from repro.simnet import SERVER_HOST, TwoHostNetwork, WAN


def main() -> None:
    site = build_microscape_site()
    net = TwoHostNetwork(WAN)
    SimHttpServer(net.sim, net.server, ResourceStore.from_site(site),
                  APACHE)
    robot = Robot(net.sim, net.client, SERVER_HOST, 80,
                  ClientConfig(pipeline=True))
    result = robot.fetch(site.html_url)
    net.run()

    summary = net.trace.summary()
    print(f"pipelined first-time retrieval over the WAN: "
          f"{summary.packets} packets, {summary.payload_bytes} bytes, "
          f"{result.elapsed:.2f} s")
    print()
    print("client-side trace (first 18 packets):")
    print(net.trace.format_trace(limit=18))
    print("  ...")
    print()
    print(ascii_time_sequence(net.trace, SERVER_HOST, width=72,
                              height=18, until=1.2))
    print()
    print("Each column of '*' is a flight of segments; the widening")
    print("flights are slow start opening the congestion window.")

    path = "trace_wan_pipelined.xpl"
    write_xplot(net.trace, path, SERVER_HOST,
                title="Microscape over WAN, HTTP/1.1 pipelined")
    print(f"\nwrote {path} (xplot format, as used in the paper)")


if __name__ == "__main__":
    main()
