#!/usr/bin/env python3
"""Quickstart: measure HTTP/1.0 vs HTTP/1.1 pipelining in two minutes.

Builds the synthetic Microscape site (42 KB HTML + 42 GIFs), serves it
from an Apache-like server on a simulated WAN, and fetches it with the
four client configurations from the paper — printing the Pa / Bytes /
Sec / %ov table that corresponds to the paper's Table 7.

Run:  python examples/quickstart.py
"""

from repro.core import (ALL_MODES, FIRST_TIME, REVALIDATE,
                        run_experiment)
from repro.server import APACHE
from repro.simnet import WAN


def main() -> None:
    print(f"Network: {WAN.description} (RTT {WAN.rtt * 1000:.0f} ms)")
    print(f"Server:  {APACHE.name}")
    print()
    header = (f"{'mode':34s} {'scenario':11s} {'packets':>8s} "
              f"{'bytes':>9s} {'seconds':>8s} {'%ov':>5s}")
    print(header)
    print("-" * len(header))
    for mode in ALL_MODES:
        for scenario in (FIRST_TIME, REVALIDATE):
            result = run_experiment(mode, scenario, environment=WAN,
                                    profile=APACHE, seed=0)
            print(f"{mode.name:34s} {scenario:11s} "
                  f"{result.packets:8d} {result.payload_bytes:9d} "
                  f"{result.elapsed:8.2f} "
                  f"{result.percent_overhead:5.1f}")
    print()
    print("Compare with Table 7 of the paper: pipelining cuts packets")
    print(">=2x on first visits and ~10x on revalidation, while the")
    print("persistent-but-serialized client is *slower* than HTTP/1.0.")


if __name__ == "__main__":
    main()
