#!/usr/bin/env python3
"""Why HTTP/1.1 persistence is not just Keep-Alive: the proxy deadlock.

The paper notes HTTP/1.1's design "differs in minor details from
Keep-Alive to overcome a problem discovered when Keep-Alive is used
with more than one proxy between a client and a server."  This demo
runs that exact failure on the simulator: a client sends
``Connection: Keep-Alive`` through a blind HTTP/1.0 proxy, the origin
holds the proxied connection open, and the whole exchange stalls until
the proxy's idle timeout — then repeats the fetch through an
HTTP/1.1-compliant proxy that strips hop-by-hop headers.

Run:  python examples/proxy_keepalive.py
"""

from repro.content import build_microscape_site
from repro.http import HTTP10, Headers, Request, ResponseParser
from repro.server import APACHE, ResourceStore, SimHttpServer
from repro.server.proxy import SimHttpProxy
from repro.simnet import LAN
from repro.simnet.network import ChainNetwork, PROXY_HOST, SERVER_HOST


def fetch_through_proxy(store, mode):
    net = ChainNetwork(LAN)
    SimHttpServer(net.sim, net.server, store, APACHE)
    proxy = SimHttpProxy(net.sim, net.proxy_client_side,
                         net.proxy_server_side, SERVER_HOST, mode=mode,
                         idle_timeout=15.0)
    parser = ResponseParser()
    parser.expect("GET")
    responses = []
    done_at = {}

    conn = net.client.connect(PROXY_HOST, 8080)
    conn.set_nodelay(True)

    def on_data(_conn, data):
        responses.extend(parser.feed(data))
        if responses:
            done_at.setdefault("t", net.sim.now)

    def on_eof(_conn):
        final = parser.eof()
        if final is not None:
            responses.append(final)
        done_at.setdefault("t", net.sim.now)

    eof_at = {}
    conn.on_data = on_data
    conn.on_eof = lambda c: (on_eof(c),
                             eof_at.setdefault("t", net.sim.now))
    request = Request("GET", "/gifs/bullet0.gif", HTTP10, Headers([
        ("Host", SERVER_HOST),
        ("Connection", "Keep-Alive")]))      # the poisonous header
    conn.send(request.to_bytes())
    net.run()
    return responses, done_at.get("t"), eof_at.get("t"), proxy


def main() -> None:
    store = ResourceStore.from_site(build_microscape_site())

    print("GET /gifs/bullet0.gif with 'Connection: Keep-Alive',")
    print("through two different proxies:")
    print()
    for mode, label in (("blind", "blind HTTP/1.0 proxy "
                                  "(forwards Connection verbatim)"),
                        ("hop_by_hop", "HTTP/1.1 proxy "
                                       "(strips hop-by-hop headers)")):
        responses, parsed_at, eof_at, proxy = fetch_through_proxy(
            store, mode)
        status = responses[0].status if responses else "none"
        released = (f"t={eof_at:.2f}s (after the proxy's idle timer!)"
                    if eof_at is not None and eof_at > 1.0 else
                    f"t={eof_at:.2f}s" if eof_at is not None else
                    "immediately (connection stays usable)")
        print(f"  {label}")
        print(f"    response status {status} parsed at "
              f"t={parsed_at:.2f}s")
        print(f"    connection + proxy resources released: {released}")
        print(f"    proxy idle timeouts: {proxy.idle_timeouts}")
        print()
    print("Through the blind proxy, the origin honoured the forwarded")
    print("Keep-Alive, so the proxy's close-delimited relay could not")
    print("finish: client connection and upstream slot stayed wedged")
    print("for the full 15-second idle timeout.  A response without a")
    print("Content-Length (any CGI output of the era) would have kept")
    print("the *user waiting* that long, too.  HTTP/1.1 fixed this by")
    print("making Connection strictly hop-by-hop.")


if __name__ == "__main__":
    main()
