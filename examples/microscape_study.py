#!/usr/bin/env python3
"""The full protocol study: regenerate Tables 3-11 and the modem test.

This is the paper's complete measurement campaign — every server
(Jigsaw, Apache), every network (LAN, WAN, PPP), every client mode,
both scenarios, the product browsers, and the §8.2.1 modem comparison —
each cell averaged over seeded runs, printed next to the published
numbers.

Run:  python examples/microscape_study.py [--runs N]
(N defaults to 3 to keep the demo quick; the paper used 5.)
"""

import argparse

from repro.analysis import (reproduce_browser_table,
                            reproduce_modem_experiment,
                            reproduce_protocol_table, reproduce_table3)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=3,
                        help="seeded runs per cell (paper used 5)")
    args = parser.parse_args()

    _, text = reproduce_table3(runs=args.runs)
    print(text)
    print()
    for server in ("Jigsaw", "Apache"):
        for environment in ("LAN", "WAN", "PPP"):
            _, text = reproduce_protocol_table(server, environment,
                                               runs=args.runs)
            print(text)
            print()
    for server in ("Jigsaw", "Apache"):
        _, text = reproduce_browser_table(server, runs=args.runs)
        print(text)
        print()
    _, text = reproduce_modem_experiment(runs=args.runs)
    print(text)


if __name__ == "__main__":
    main()
