#!/usr/bin/env python3
"""'Poor man's multiplexing': cache validation + ranged requests.

The paper argues HTTP/1.1 clients can get good interactive behaviour on
a *single* connection by combining validators with byte ranges: on a
revisit, send ``If-None-Match`` + ``If-Range`` + ``Range: bytes=0-N``
for each embedded image — unchanged objects cost a 304; changed objects
return just their first bytes (enough metadata for page layout), and
the client schedules the rest afterwards.

This demo runs the idiom against the real-socket server: it revisits
Microscape after one image "changed" on the server, fetching image
*prefixes* first and the changed image's tail second.

Run:  python examples/range_multiplexing.py
"""

from repro.content import build_microscape_site
from repro.realnet import RealHttpClient, RealHttpServer
from repro.server import APACHE, Resource, ResourceStore


PREFIX = 256        # bytes of image metadata to fetch eagerly


def main() -> None:
    site = build_microscape_site()
    store = ResourceStore.from_site(site)
    urls = [u for u in site.all_urls() if u.endswith(".gif")]

    with RealHttpServer(store, APACHE) as server:
        host, port = server.address
        with RealHttpClient(host, port) as client:
            # First visit fills the cache.
            client.pipeline(site.all_urls())
            print(f"first visit: cached {len(site.all_urls())} objects")

            # The site changes one image (same URL, new bytes).
            changed_url = "/gifs/hero.gif"
            new_body = site.objects[changed_url].body[::-1]
            store.add(Resource.create(changed_url, "image/gif", new_body))
            print(f"server-side change: {changed_url} "
                  f"({len(new_body)} bytes)")
            print()

            # Revisit: one pipelined batch of validation+range requests.
            # If-None-Match answers "did it change?"; the bare Range
            # header bounds the transfer of a *changed* entity to its
            # first bytes.  (If-Range would instead request the full
            # new entity on change — that is the resume-a-download
            # idiom, not this one.)
            requests = []
            for url in urls:
                entry = client.cache.get(url)
                requests.append(client.build_request(
                    url,
                    headers=[("If-None-Match", entry.etag),
                             ("Range", f"bytes=0-{PREFIX - 1}")]))
            responses = client.pipeline_requests(requests)

            fresh = [u for u, r in zip(urls, responses)
                     if r.status == 304]
            partial = [(u, r) for u, r in zip(urls, responses)
                       if r.status == 206]
            print(f"revalidated {len(fresh)} unchanged images with 304s")
            for url, response in partial:
                total = int(response.headers.get(
                    "Content-Range").rsplit("/", 1)[1])
                print(f"changed: {url} -> got first "
                      f"{len(response.body)} of {total} bytes "
                      f"(layout can start)")
                # Fetch the tail with a second ranged request.
                tail = client.get(url, headers=[
                    ("Range", f"bytes={PREFIX}-")])
                assert tail.status == 206
                body = response.body + tail.body
                assert body == new_body
                print(f"         tail of {len(tail.body)} bytes "
                      f"completes the image")

            print()
            print("One connection, no stalls on large objects, and the")
            print("unchanged 41 images cost ~100 bytes each.")


if __name__ == "__main__":
    main()
