#!/usr/bin/env python3
"""Serve Microscape over real sockets and fetch it three ways.

Starts the threaded :class:`~repro.realnet.RealHttpServer` on
localhost, then fetches the whole site with (1) one connection per
request, (2) a persistent connection, and (3) a pipelined batch —
plus a conditional-revalidation pass and a deflate transfer — timing
each with a wall clock.  The absolute numbers are localhost numbers;
the point is the protocol machinery running over genuine TCP.

Run:  python examples/realnet_demo.py
"""

import time

from repro.content import build_microscape_site
from repro.realnet import RealHttpClient, RealHttpServer
from repro.server import APACHE, ResourceStore


def timed(label, fn):
    start = time.perf_counter()
    value = fn()
    elapsed = (time.perf_counter() - start) * 1000
    print(f"{label:42s} {elapsed:8.1f} ms")
    return value


def main() -> None:
    site = build_microscape_site()
    store = ResourceStore.from_site(site)
    urls = site.all_urls()

    with RealHttpServer(store, APACHE) as server:
        host, port = server.address
        print(f"serving {len(store)} resources on {host}:{port}")
        print()

        def one_connection_per_request():
            responses = []
            for url in urls:
                with RealHttpClient(host, port) as client:
                    responses.append(client.get(url))
            return responses

        def persistent_serialized():
            with RealHttpClient(host, port) as client:
                return [client.get(url) for url in urls]

        def pipelined():
            with RealHttpClient(host, port) as client:
                return client.pipeline(urls)

        for label, fn in (
                ("43 connections (HTTP/1.0 style)",
                 one_connection_per_request),
                ("1 persistent connection, serialized",
                 persistent_serialized),
                ("1 connection, pipelined batch", pipelined)):
            responses = timed(label, fn)
            assert all(r.status == 200 for r in responses)

        print()
        with RealHttpClient(host, port) as client:
            timed("warm the client cache (pipelined)",
                  lambda: client.pipeline(urls))
            revalidated = timed(
                "revalidate everything (conditional GETs)",
                lambda: client.pipeline(urls, conditional=True))
            print(f"  -> {sum(r.status == 304 for r in revalidated)}"
                  f"/43 responses were 304 Not Modified")

            html = client.get("/home.html", accept_deflate=True)
            print(f"  -> deflate transfer inflated to "
                  f"{len(html.body)} bytes "
                  f"(original {site.html.size})")


if __name__ == "__main__":
    main()
