"""Time-sequence diagrams: xplot export and ASCII rendering.

The paper's Tools section: "We also used Tim Shepard's xplot program to
graphically plot the dumps; this was very useful to find a number of
problems in our implementation not visible in the raw dumps."  This
module gives the simulator's traces the same treatment: export in
xplot's file format, or render a quick ASCII time-sequence diagram
directly in the terminal — data segments advancing up the sequence
space, with stalls showing up as horizontal gaps.
"""

from __future__ import annotations

from typing import Optional

from ..simnet.trace import TraceCollector

__all__ = ["xplot_document", "write_xplot", "ascii_time_sequence"]


def xplot_document(trace: TraceCollector, src: str,
                   title: str = "time sequence graph") -> str:
    """Render ``src``'s data segments as an xplot(1) input file."""
    lines = ["double double", f"title\n{title}",
             "xlabel\ntime (s)", "ylabel\nsequence number"]
    for record in trace.records:
        start = trace.records[0].time
        t = record.time - start
        if record.src == src and record.payload_len:
            # A data segment: vertical bar over its sequence span.
            lines.append(f"line {t:.6f} {record.seq} "
                         f"{t:.6f} {record.seq + record.payload_len}")
        elif record.dst == src and "A" in record.flags \
                and not record.payload_len:
            # An arriving ACK: a green tick at the acked sequence.
            lines.append(f"dtick {t:.6f} {record.ack}\ngreen")
    lines.append("go")
    return "\n".join(lines) + "\n"


def write_xplot(trace: TraceCollector, path: str, src: str,
                title: str = "time sequence graph") -> None:
    """Write :func:`xplot_document` output to ``path``."""
    with open(path, "w") as handle:
        handle.write(xplot_document(trace, src, title))


def ascii_time_sequence(trace: TraceCollector, src: str, *,
                        width: int = 72, height: int = 20,
                        until: Optional[float] = None) -> str:
    """A terminal-sized time-sequence diagram of ``src``'s data segments.

    ``*`` marks a transmitted data segment (at its end sequence number);
    the x-axis is time, the y-axis is sequence space.  Retransmissions
    show up as marks *below* the frontier; stalls as horizontal gaps.
    """
    points = trace.time_sequence(src)
    if until is not None:
        points = [(t, s) for t, s in points if t <= until]
    if not points:
        return "(no data segments)"
    t_max = max(t for t, _ in points) or 1e-9
    s_max = max(s for _, s in points) or 1
    grid = [[" "] * width for _ in range(height)]
    for t, seq in points:
        x = min(width - 1, int(t / t_max * (width - 1)))
        y = min(height - 1, int(seq / s_max * (height - 1)))
        grid[height - 1 - y][x] = "*"
    lines = [f"{src}: sequence vs time "
             f"(x: 0..{t_max:.3f} s, y: 0..{s_max} B)"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    return "\n".join(lines)
