"""Analysis: paper reference data, table rendering, reproduction drivers.

``repro.analysis.paperdata`` transcribes every number the paper
publishes; ``repro.analysis.report`` re-runs each experiment and prints
it next to the published value.  The benchmark suite and EXPERIMENTS.md
are thin wrappers over this package.
"""

from .paperdata import (BROWSER_TABLES, CONTENT_NUMBERS, MODEM_TABLE,
                        PROTOCOL_TABLES, PaperCell, TABLE3, Table3Row)
from .report import (generate_experiments_report,
                     reproduce_browser_table, reproduce_content_experiments,
                     reproduce_future_work, reproduce_modem_experiment,
                     reproduce_protocol_table, reproduce_robustness,
                     reproduce_table3,
                     PROFILE_BY_NAME, TABLE_NUMBERS)
from .tables import (ComparisonRow, format_comparison_table,
                     format_simple_table, ratio)

__all__ = [
    "BROWSER_TABLES", "CONTENT_NUMBERS", "MODEM_TABLE", "PROTOCOL_TABLES",
    "PaperCell", "TABLE3", "Table3Row",
    "generate_experiments_report", "reproduce_browser_table",
    "reproduce_content_experiments", "reproduce_future_work",
    "reproduce_modem_experiment",
    "reproduce_protocol_table", "reproduce_robustness",
    "reproduce_table3", "PROFILE_BY_NAME",
    "TABLE_NUMBERS",
    "ComparisonRow", "format_comparison_table", "format_simple_table",
    "ratio",
]
