"""The paper's published numbers, transcribed for comparison.

Every measured value in Tables 1 and 3–11 plus the §8.2.1 modem
experiment and the content-section numbers, as printed in the SIGCOMM
'97 version.  Benchmarks and EXPERIMENTS.md compare against these.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

__all__ = ["PaperCell", "Table3Row", "TABLE3", "PROTOCOL_TABLES",
           "BROWSER_TABLES", "MODEM_TABLE", "CONTENT_NUMBERS"]


@dataclasses.dataclass(frozen=True)
class PaperCell:
    """One (mode, scenario) cell: Pa / Bytes / Sec / %ov."""

    packets: float
    payload_bytes: float
    seconds: float
    percent_overhead: float


@dataclasses.dataclass(frozen=True)
class Table3Row:
    """Table 3 reports socket counts and per-direction packets."""

    max_sockets: int
    total_sockets: int
    packets_client_to_server: int
    packets_server_to_client: int
    total_packets: int
    seconds: float


#: Table 3 — Jigsaw, initial high-bandwidth low-latency revalidation.
TABLE3: Dict[str, Table3Row] = {
    "HTTP/1.0": Table3Row(6, 40, 226, 271, 497, 1.85),
    "HTTP/1.1": Table3Row(1, 1, 70, 153, 223, 4.13),
    "HTTP/1.1 Pipelined": Table3Row(1, 1, 25, 58, 83, 3.02),
}

_M10 = "HTTP/1.0"
_M11 = "HTTP/1.1"
_MPL = "HTTP/1.1 Pipelined"
_MPC = "HTTP/1.1 Pipelined w. compression"
FIRST = "first-time"
REVAL = "revalidate"

#: Tables 4–9, keyed by (server, environment) then (mode, scenario).
PROTOCOL_TABLES: Dict[Tuple[str, str],
                      Dict[Tuple[str, str], PaperCell]] = {
    ("Jigsaw", "LAN"): {       # Table 4
        (_M10, FIRST): PaperCell(510.2, 216289, 0.97, 8.6),
        (_M10, REVAL): PaperCell(374.8, 61117, 0.78, 19.7),
        (_M11, FIRST): PaperCell(281.0, 191843, 1.25, 5.5),
        (_M11, REVAL): PaperCell(133.4, 17694, 0.89, 23.2),
        (_MPL, FIRST): PaperCell(181.8, 191551, 0.68, 3.7),
        (_MPL, REVAL): PaperCell(32.8, 17694, 0.54, 6.9),
        (_MPC, FIRST): PaperCell(148.8, 159654, 0.71, 3.6),
        (_MPC, REVAL): PaperCell(32.6, 17687, 0.54, 6.9),
    },
    ("Apache", "LAN"): {       # Table 5
        (_M10, FIRST): PaperCell(489.4, 215536, 0.72, 8.3),
        (_M10, REVAL): PaperCell(365.4, 60605, 0.41, 19.4),
        (_M11, FIRST): PaperCell(244.2, 189023, 0.81, 4.9),
        (_M11, REVAL): PaperCell(98.4, 14009, 0.40, 21.9),
        (_MPL, FIRST): PaperCell(175.8, 189607, 0.49, 3.6),
        (_MPL, REVAL): PaperCell(29.2, 14009, 0.23, 7.7),
        (_MPC, FIRST): PaperCell(139.8, 156834, 0.41, 3.4),
        (_MPC, REVAL): PaperCell(28.4, 14002, 0.23, 7.5),
    },
    ("Jigsaw", "WAN"): {       # Table 6
        (_M10, FIRST): PaperCell(565.8, 251913, 4.17, 8.2),
        (_M10, REVAL): PaperCell(389.2, 62348.0, 2.96, 20.0),
        (_M11, FIRST): PaperCell(304.0, 193595, 6.64, 5.9),
        (_M11, REVAL): PaperCell(137.0, 18065.6, 4.95, 23.3),
        (_MPL, FIRST): PaperCell(214.2, 193887, 2.33, 4.2),
        (_MPL, REVAL): PaperCell(34.8, 18233.2, 1.10, 7.1),
        (_MPC, FIRST): PaperCell(183.2, 161698, 2.09, 4.3),
        (_MPC, REVAL): PaperCell(35.4, 19102.2, 1.15, 6.9),
    },
    ("Apache", "WAN"): {       # Table 7
        (_M10, FIRST): PaperCell(559.6, 248655.2, 4.09, 8.3),
        (_M10, REVAL): PaperCell(370.0, 61887, 2.64, 19.3),
        (_M11, FIRST): PaperCell(309.4, 191436.0, 6.14, 6.1),
        (_M11, REVAL): PaperCell(104.2, 14255, 4.43, 22.6),
        (_MPL, FIRST): PaperCell(221.4, 191180.6, 2.23, 4.4),
        (_MPL, REVAL): PaperCell(29.8, 15352, 0.86, 7.2),
        (_MPC, FIRST): PaperCell(182.0, 159170.0, 2.11, 4.4),
        (_MPC, REVAL): PaperCell(29.0, 15088, 0.83, 7.2),
    },
    ("Jigsaw", "PPP"): {       # Table 8 (no HTTP/1.0 row)
        (_M11, FIRST): PaperCell(309.6, 190687, 63.8, 6.1),
        (_M11, REVAL): PaperCell(89.2, 17528, 12.9, 16.9),
        (_MPL, FIRST): PaperCell(284.4, 190735, 53.3, 5.6),
        (_MPL, REVAL): PaperCell(31.0, 17598, 5.4, 6.6),
        (_MPC, FIRST): PaperCell(234.2, 159449, 47.4, 5.5),
        (_MPC, REVAL): PaperCell(31.0, 17591, 5.4, 6.6),
    },
    ("Apache", "PPP"): {       # Table 9
        (_M11, FIRST): PaperCell(308.6, 187869, 65.6, 6.2),
        (_M11, REVAL): PaperCell(89.0, 13843, 11.1, 20.5),
        (_MPL, FIRST): PaperCell(281.4, 187918, 53.4, 5.7),
        (_MPL, REVAL): PaperCell(26.0, 13912, 3.4, 7.0),
        (_MPC, FIRST): PaperCell(233.0, 157214, 47.2, 5.6),
        (_MPC, REVAL): PaperCell(26.0, 13905, 3.4, 7.0),
    },
}

#: Tables 10–11: browsers over PPP, keyed by (server,) then
#: (browser, scenario).
BROWSER_TABLES: Dict[str, Dict[Tuple[str, str], PaperCell]] = {
    "Jigsaw": {                # Table 10
        ("Netscape Navigator", FIRST): PaperCell(339.4, 201807, 58.8, 6.3),
        ("Netscape Navigator", REVAL): PaperCell(108, 19282, 14.9, 18.3),
        ("Internet Explorer", FIRST): PaperCell(360.3, 199934, 63.0, 6.7),
        ("Internet Explorer", REVAL): PaperCell(301.0, 61009, 17.0, 16.5),
    },
    "Apache": {                # Table 11
        ("Netscape Navigator", FIRST): PaperCell(334.3, 199243, 58.7, 6.3),
        ("Netscape Navigator", REVAL): PaperCell(103.3, 23741, 5.9, 14.8),
        ("Internet Explorer", FIRST): PaperCell(381.3, 204219, 60.6, 6.9),
        ("Internet Explorer", REVAL): PaperCell(117.0, 23056, 8.3, 16.9),
    },
}

#: §8.2.1 — single GET of the Microscape HTML over 28.8k modems
#: (packets, seconds) per server, uncompressed vs deflate-compressed.
MODEM_TABLE = {
    ("Jigsaw", "uncompressed"): (67.0, 12.21),
    ("Jigsaw", "compressed"): (21.0, 4.35),
    ("Apache", "uncompressed"): (67.0, 12.13),
    ("Apache", "compressed"): (21.0, 4.43),   # Pa misprinted 4.35 in text
}

#: Content-section headline numbers.
CONTENT_NUMBERS = {
    "html_bytes": 42 * 1024,
    "image_count": 42,
    "image_bytes": 125 * 1024,
    "static_gif_bytes": 103_299,
    "static_png_bytes": 92_096,
    "png_saved": 11_203,
    "animation_gif_bytes": 24_988,
    "animation_mng_bytes": 16_329,
    "mng_saved": 8_659,
    "figure1_gif_bytes": 682,
    "figure1_css_bytes": 150,
    "html_compressed_bytes": 11 * 1024,
    "deflate_ratio_lowercase": 0.27,
    "deflate_ratio_mixedcase": 0.35,
    "gamma_bytes_per_image": 16,
}
