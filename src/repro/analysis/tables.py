"""Table rendering and paper-vs-measured comparison.

The benchmark harness uses these helpers to print each reproduced table
in the paper's layout, side by side with the published numbers, and to
compute the shape checks (who wins, by what factor) that the
reproduction is graded on.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional, Sequence

from ..core.runner import AveragedResult
from .paperdata import PaperCell

__all__ = ["ComparisonRow", "format_comparison_table", "ratio",
           "format_simple_table"]


@dataclasses.dataclass
class ComparisonRow:
    """One table row: our averaged measurement next to the paper's."""

    label: str
    scenario: str
    measured: AveragedResult
    paper: Optional[PaperCell] = None

    def cells(self) -> List[str]:
        out = [
            self.label,
            self.scenario,
            f"{self.measured.packets:8.1f}",
            f"{self.measured.payload_bytes:9.0f}",
            f"{self.measured.elapsed:8.2f}",
            f"{self.measured.percent_overhead:5.1f}",
        ]
        if self.paper is not None:
            out.extend([
                f"{self.paper.packets:8.1f}",
                f"{self.paper.payload_bytes:9.0f}",
                f"{self.paper.seconds:8.2f}",
                f"{self.paper.percent_overhead:5.1f}",
                f"{ratio(self.measured.packets, self.paper.packets):5.2f}",
                f"{ratio(self.measured.elapsed, self.paper.seconds):5.2f}",
            ])
        return out


def ratio(measured: float, reference: float) -> float:
    """measured / reference, guarding against zero references."""
    if reference == 0:
        return float("inf") if measured else 1.0
    return measured / reference


_HEADER = ["mode", "scenario", "Pa", "Bytes", "Sec", "%ov",
           "Pa(paper)", "B(paper)", "Sec(paper)", "%ov(p)",
           "Pa ratio", "Sec ratio"]


def format_comparison_table(title: str,
                            rows: Sequence[ComparisonRow]) -> str:
    """Render rows as an aligned text table with the paper columns."""
    table_rows = [row.cells() for row in rows]
    n_cols = max(len(r) for r in table_rows)
    header = _HEADER[:n_cols]
    return format_simple_table(title, header, table_rows)


def format_simple_table(title: str, header: Sequence[str],
                        rows: Iterable[Sequence[str]]) -> str:
    """Align arbitrary string cells under a header, with a title."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in header]
    for row in str_rows:
        for index, cell in enumerate(row):
            if index >= len(widths):
                widths.append(len(cell))
            else:
                widths[index] = max(widths[index], len(cell))

    def fmt(row: Sequence[str]) -> str:
        return "  ".join(str(c).ljust(widths[i])
                         for i, c in enumerate(row)).rstrip()

    lines = [title, "=" * len(title), fmt(header),
             fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)
