"""Reproduction drivers: run every experiment, render every table.

Each ``reproduce_*`` function runs one of the paper's tables or
figures end to end and returns both the structured results and a
rendered text table with the paper's numbers alongside.
:func:`generate_experiments_report` strings them all together into the
EXPERIMENTS.md document.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..client.robot import ClientConfig
from ..content import (build_microscape_site, change_tag_case,
                       convert_site_to_png, css_replacement_analysis,
                       banner_replacement, apply_all_transforms)
from ..core.browsers import BROWSERS
from ..core.modes import (HTTP10_MODE, HTTP11_PERSISTENT,
                          HTTP11_PIPELINED,
                          initial_tuning_client_config)
from ..core.registry import (PROFILES, TABLE_CELLS,
                             modes_for_environment)
from ..core.scenarios import FIRST_TIME, REVALIDATE
from ..http import compression_ratio
from ..matrix import ExperimentSpec, MatrixRunner
from .paperdata import (BROWSER_TABLES, CONTENT_NUMBERS, MODEM_TABLE,
                        PROTOCOL_TABLES, TABLE3)
from .tables import (ComparisonRow, format_comparison_table,
                     format_simple_table)

__all__ = [
    "reproduce_protocol_table", "reproduce_table3",
    "reproduce_browser_table", "reproduce_modem_experiment",
    "reproduce_content_experiments", "reproduce_robustness",
    "reproduce_modern_modes",
    "format_fleet_report",
    "generate_experiments_report",
    "PROFILE_BY_NAME", "TABLE_NUMBERS",
]

#: Kept as aliases of the shared registry (see repro.core.registry).
PROFILE_BY_NAME = PROFILES

#: Paper table number for each (server, environment) pair.
TABLE_NUMBERS: Dict[Tuple[str, str], int] = {
    cell: number for number, cell in TABLE_CELLS.items()}


def _runner(runner: Optional[MatrixRunner]) -> MatrixRunner:
    return runner if runner is not None else MatrixRunner()


def reproduce_protocol_table(server_name: str, environment_name: str,
                             *, runs: int = 5,
                             runner: Optional[MatrixRunner] = None
                             ) -> Tuple[List[ComparisonRow], str]:
    """Reproduce one of Tables 4–9."""
    paper = PROTOCOL_TABLES[(server_name, environment_name)]
    specs = [
        ExperimentSpec(mode=mode.name, scenario=scenario,
                       environment=environment_name, server=server_name,
                       seeds=tuple(range(runs)))
        for mode in modes_for_environment(environment_name,
                                          paper_only=True)
        for scenario in (FIRST_TIME, REVALIDATE)]
    measured = _runner(runner).run_many(specs)
    rows = [
        ComparisonRow(spec.mode, spec.scenario, result,
                      paper.get((spec.mode, spec.scenario)))
        for spec, result in zip(specs, measured)]
    number = TABLE_NUMBERS[(server_name, environment_name)]
    title = (f"Table {number} - {server_name} - {environment_name} "
             f"(mean of {runs} runs)")
    return rows, format_comparison_table(title, rows)


def reproduce_table3(*, runs: int = 5,
                     runner: Optional[MatrixRunner] = None
                     ) -> Tuple[List[dict], str]:
    """Reproduce Table 3: the pre-tuning LAN revalidation comparison."""
    modes = (HTTP10_MODE, HTTP11_PERSISTENT, HTTP11_PIPELINED)
    specs = [
        ExperimentSpec.for_client_config(
            mode, REVALIDATE, "LAN", "Jigsaw-initial",
            initial_tuning_client_config(mode),
            seeds=tuple(range(runs)))
        for mode in modes]
    measured = _runner(runner).run_many(specs)
    results = [
        {"mode": mode.name, "measured": result,
         "paper": TABLE3[mode.name]}
        for mode, result in zip(modes, measured)]
    header = ["mode", "sockets", "c->s", "s->c", "Pa", "Sec",
              "Pa(paper)", "Sec(paper)"]
    table_rows = []
    for entry in results:
        m, p = entry["measured"], entry["paper"]
        table_rows.append([
            entry["mode"], f"{m.connections_used:.0f}",
            f"{m.packets_client_to_server:.0f}",
            f"{m.packets_server_to_client:.0f}",
            f"{m.packets:.0f}", f"{m.elapsed:.2f}",
            f"{p.total_packets}", f"{p.seconds:.2f}"])
    text = format_simple_table(
        f"Table 3 - Jigsaw - initial LAN cache revalidation "
        f"(mean of {runs} runs)", header, table_rows)
    return results, text


def reproduce_browser_table(server_name: str, *, runs: int = 3,
                            runner: Optional[MatrixRunner] = None
                            ) -> Tuple[List[ComparisonRow], str]:
    """Reproduce Table 10 (Jigsaw) or 11 (Apache): browsers over PPP."""
    paper = BROWSER_TABLES[server_name]
    labelled = [
        (browser.name, scenario,
         ExperimentSpec.for_client_config(
             HTTP10_MODE, scenario, "PPP", server_name,
             browser.client_config(), seeds=tuple(range(runs))))
        for browser in BROWSERS
        for scenario in (FIRST_TIME, REVALIDATE)]
    measured = _runner(runner).run_many([s for _, _, s in labelled])
    rows = [
        ComparisonRow(name, scenario, result,
                      paper.get((name, scenario)))
        for (name, scenario, _), result in zip(labelled, measured)]
    number = 10 if server_name == "Jigsaw" else 11
    title = (f"Table {number} - {server_name} - Navigator and IE, PPP "
             f"(mean of {runs} runs)")
    return rows, format_comparison_table(title, rows)


def reproduce_modem_experiment(*, runs: int = 5,
                               runner: Optional[MatrixRunner] = None
                               ) -> Tuple[List[dict], str]:
    """Reproduce §8.2.1: HTML-only GET over 28.8k, ±deflate."""
    cells = [(server_name, compressed)
             for server_name in ("Jigsaw", "Apache")
             for compressed in (False, True)]
    specs = [
        ExperimentSpec.for_client_config(
            HTTP11_PERSISTENT, FIRST_TIME, "PPP", server_name,
            ClientConfig(pipeline=False, accept_deflate=compressed,
                         follow_images=False),
            seeds=tuple(range(runs)), verify=False)
        for server_name, compressed in cells]
    results = []
    for (server_name, compressed), measured in zip(
            cells, _runner(runner).run_many(specs)):
        label = "compressed" if compressed else "uncompressed"
        paper_pa, paper_sec = MODEM_TABLE[(server_name, label)]
        results.append({
            "server": server_name, "variant": label,
            "measured": measured,
            "paper": (paper_pa, paper_sec),
        })
    header = ["server", "variant", "Pa", "Sec", "Pa(paper)",
              "Sec(paper)"]
    table_rows = [[r["server"], r["variant"],
                   f"{r['measured'].packets:.1f}",
                   f"{r['measured'].elapsed:.2f}",
                   f"{r['paper'][0]:.0f}", f"{r['paper'][1]:.2f}"]
                  for r in results]
    saved = _modem_savings(results)
    text = format_simple_table(
        f"Modem compression (section 8.2.1, mean of {runs} runs)",
        header, table_rows)
    return results, text + "\n" + saved


def _modem_savings(results: Sequence[dict]) -> str:
    lines = []
    for server_name in ("Jigsaw", "Apache"):
        pair = {r["variant"]: r["measured"] for r in results
                if r["server"] == server_name}
        pa_saving = 1 - pair["compressed"].packets / \
            pair["uncompressed"].packets
        sec_saving = 1 - pair["compressed"].elapsed / \
            pair["uncompressed"].elapsed
        lines.append(f"{server_name}: saved {pa_saving:.1%} packets, "
                     f"{sec_saving:.1%} time "
                     f"(paper: 68.7% packets, ~64.5% time)")
    return "\n".join(lines)


def reproduce_content_experiments() -> Tuple[dict, str]:
    """Reproduce the content sections: Figure 1, CSS, PNG/MNG, deflate."""
    site = build_microscape_site()
    png = convert_site_to_png(site)
    css = css_replacement_analysis(site)
    figure1 = banner_replacement("solutions")
    combined = apply_all_transforms(site)
    html = site.html.body
    html_text = html.decode("latin-1")
    ratios = {
        mode: compression_ratio(
            change_tag_case(html_text, mode).encode("latin-1"))
        for mode in ("lower", "mixed")}
    results = {
        "site_html_bytes": site.html.size,
        "site_image_bytes": site.total_image_bytes,
        "static_gif_total": png.static_gif_total,
        "static_png_total": png.static_png_total,
        "animation_gif_total": png.animation_gif_total,
        "animation_mng_total": png.animation_mng_total,
        "images_grown": len(png.grew()),
        "figure1_replacement_bytes": figure1.byte_size,
        "css_requests_saved": css.requests_saved,
        "css_net_bytes_saved": css.net_bytes_saved,
        "combined_payload": combined.total_payload,
        "combined_requests": combined.request_count,
        "deflate_ratio_lower": ratios["lower"],
        "deflate_ratio_mixed": ratios["mixed"],
    }
    paper = CONTENT_NUMBERS
    rows = [
        ["HTML bytes", results["site_html_bytes"], paper["html_bytes"]],
        ["image bytes (42 GIFs)", results["site_image_bytes"],
         paper["image_bytes"]],
        ["static GIF total", results["static_gif_total"],
         paper["static_gif_bytes"]],
        ["static PNG total", results["static_png_total"],
         paper["static_png_bytes"]],
        ["animated GIF total", results["animation_gif_total"],
         paper["animation_gif_bytes"]],
        ["MNG total", results["animation_mng_total"],
         paper["animation_mng_bytes"]],
        ["Figure 1 CSS bytes (vs 682 GIF)",
         results["figure1_replacement_bytes"],
         paper["figure1_css_bytes"]],
        ["CSS: requests saved", results["css_requests_saved"], "(many)"],
        ["CSS: net bytes saved", results["css_net_bytes_saved"], "-"],
        ["deflate ratio, lowercase tags",
         f"{results['deflate_ratio_lower']:.2f}",
         paper["deflate_ratio_lowercase"]],
        ["deflate ratio, mixed-case tags",
         f"{results['deflate_ratio_mixed']:.2f}",
         paper["deflate_ratio_mixedcase"]],
        ["combined page payload", results["combined_payload"], "-"],
        ["combined page requests", results["combined_requests"], "-"],
    ]
    text = format_simple_table("Content experiments (CSS1, PNG, MNG)",
                               ["quantity", "measured", "paper"], rows)
    return results, text


def reproduce_future_work(*, runner: Optional[MatrixRunner] = None
                          ) -> Tuple[dict, str]:
    """Quantify the paper's future-work claims (single-seed runs).

    * compact wire representation: "an additional factor of five or
      ten" on pipelined revalidation requests,
    * server CPU savings of HTTP/1.1 ("could now be quantified"),
    * time to render over a single connection with range requests,
    * progressive-rendering byte fractions (PNG vs GIF),
    * the two-connection allowance's effect on packet trains.
    """
    from ..client.robot import ClientConfig
    from ..content import encode_gif, encode_png
    from ..content.progressive import (bytes_for_coverage,
                                       gif_area_coverage,
                                       png_area_coverage)
    from ..core.render import measure_render
    from ..core.registry import resolve_environment, resolve_profile
    from ..http import HTTP10, HTTP11, Headers, Request
    from ..http.compact import DeltaStreamEncoder
    from ..server.static import ResourceStore

    run = _runner(runner)
    site = build_microscape_site()
    results: dict = {}
    rows = []

    # Compact HTTP on the actual revalidation requests.
    store = ResourceStore.from_site(site)
    encoder = DeltaStreamEncoder()
    for url in site.all_urls():
        encoder.encode(Request("GET", url, (1, 1), Headers([
            ("Host", "www26.w3.org"),
            ("User-Agent", "W3CRobot/5.1 libwww/5.1"),
            ("Accept", "*/*"),
            ("If-None-Match", store.get(url).etag)])).to_bytes())
    results["compact_http_factor"] = encoder.ratio
    rows.append(["compact HTTP on reval requests",
                 f"{encoder.ratio:.1f}x", "5-10x (envelope)"])

    # Server CPU per protocol mode (LAN, Apache).
    http10, pipelined = run.run_many([
        ExperimentSpec(mode=HTTP10_MODE.name, scenario=FIRST_TIME,
                       environment="LAN", server="Apache", seeds=(0,)),
        ExperimentSpec(mode=HTTP11_PIPELINED.name, scenario=FIRST_TIME,
                       environment="LAN", server="Apache", seeds=(0,))])
    cpu_saving = 1 - pipelined.server_cpu_seconds / \
        http10.server_cpu_seconds
    results["server_cpu_saving"] = cpu_saving
    rows.append(["server CPU saved by pipelining (first visit)",
                 f"{cpu_saving:.0%}", '"very substantial"'])

    # Render timelines on PPP.
    ppp = resolve_environment("PPP")
    apache = resolve_profile("Apache")
    plain = measure_render(ClientConfig(http_version=HTTP11,
                                        pipeline=True), ppp, apache)
    ranged = measure_render(ClientConfig(http_version=HTTP11,
                                         pipeline=True,
                                         range_prefix_bytes=256),
                            ppp, apache)
    results["layout_plain"] = plain.layout_complete
    results["layout_ranged"] = ranged.layout_complete
    rows.append(["time-to-layout, pipelined (PPP)",
                 f"{plain.layout_complete:.1f} s", "-"])
    rows.append(["time-to-layout, + range prefixes",
                 f"{ranged.layout_complete:.1f} s",
                 '"can perform well over a single connection"'])

    # Progressive rendering on the hero image.
    hero = next(o for o in site.image_objects
                if o.url.endswith("hero.gif")).image
    gif_i = bytes_for_coverage(encode_gif(hero, interlace=True),
                               gif_area_coverage, 0.9)
    png_i = bytes_for_coverage(encode_png(hero, interlace=True),
                               png_area_coverage, 0.9)
    results["gif_interlace_90"] = gif_i
    results["png_adam7_90"] = png_i
    rows.append(["bytes for 90% area, interlaced GIF",
                 f"{gif_i:.0%}", "-"])
    rows.append(["bytes for 90% area, PNG Adam7", f"{png_i:.0%}",
                 '"time to render benefits relative to GIF"'])

    # Two-connection packet trains.
    two, one = run.run_many([
        ExperimentSpec.for_client_config(
            HTTP11_PIPELINED, FIRST_TIME, "WAN", "Apache",
            ClientConfig(http_version=HTTP11, pipeline=True,
                         max_connections=2), seeds=(0,)),
        ExperimentSpec(mode=HTTP11_PIPELINED.name, scenario=FIRST_TIME,
                       environment="WAN", server="Apache", seeds=(0,))])
    results["train_ratio"] = (two.mean_packets_per_connection
                              / one.mean_packets_per_connection)
    rows.append(["packet-train length, 2 conns vs 1",
                 f"{results['train_ratio']:.2f}x",
                 '"down by a factor of two"'])

    text = format_simple_table(
        "Beyond the tables: the paper's future work, quantified",
        ["quantity", "measured", "paper's words"], rows)
    return results, text


def reproduce_robustness(*, runner: Optional[MatrixRunner] = None
                         ) -> Tuple[List[dict], str]:
    """Pipelined WAN first-time fetches under the fault plans.

    Every row retrieves the full Microscape site byte-identical; the
    columns show what it cost the transport and the robot to get there
    (drops split by cause, TCP repair actions, client retries).  The
    clean row doubles as the zero-fault anchor: all fault counters must
    read zero there.
    """
    plans = (None, "bursty-loss", "wire-chaos", "flaky-server",
             "hostile-server")
    specs = [
        ExperimentSpec(mode=HTTP11_PIPELINED.name, scenario=FIRST_TIME,
                       environment="WAN", server="Apache", seeds=(0,),
                       faults=plan)
        for plan in plans]
    measured = _runner(runner).run_many(specs)
    results = [
        {"plan": plan or "(none)", "measured": result}
        for plan, result in zip(plans, measured)]
    header = ["fault plan", "Sec", "retries", "lost", "ovfl", "retx",
              "RTO", "fastrtx", "cksum"]
    rows = [[r["plan"], f"{r['measured'].elapsed:.2f}",
             f"{r['measured'].retries:.0f}",
             f"{r['measured'].dropped_loss:.0f}",
             f"{r['measured'].dropped_overflow:.0f}",
             f"{r['measured'].retransmissions:.0f}",
             f"{r['measured'].timeouts:.0f}",
             f"{r['measured'].fast_retransmits:.0f}",
             f"{r['measured'].checksum_drops:.0f}"]
            for r in results]
    text = format_simple_table(
        "Robustness: pipelined WAN fetches under injected faults "
        "(all byte-identical)", header, rows)
    return results, text


def reproduce_modern_modes(*, runs: int = 3,
                           runner: Optional[MatrixRunner] = None
                           ) -> Tuple[List[dict], str]:
    """Every registered mode — the paper's four plus the post-paper
    transports — on a first-time Apache fetch across LAN/WAN/PPP.

    This is the "would HTTP/2 have beaten pipelining on the 1997
    Microscape site?" table: multiplexed streams, server push and
    domain sharding measured with exactly the paper's content,
    methodology and environments.  The headline number is the
    MUX-vs-pipelined elapsed ratio on each environment.
    """
    environments = ("LAN", "WAN", "PPP")
    labelled = [
        (environment, mode.name,
         ExperimentSpec(mode=mode.name, scenario=FIRST_TIME,
                        environment=environment, server="Apache",
                        seeds=tuple(range(runs))))
        for environment in environments
        for mode in modes_for_environment(environment)]
    measured = _runner(runner).run_many([s for _, _, s in labelled])
    results = [
        {"environment": environment, "mode": mode, "measured": result}
        for (environment, mode, _), result in zip(labelled, measured)]
    header = ["env", "mode", "conns", "Pa", "c->s", "s->c", "%ov",
              "Sec"]
    rows = [[r["environment"], r["mode"],
             f"{r['measured'].connections_used:.0f}",
             f"{r['measured'].packets:.0f}",
             f"{r['measured'].packets_client_to_server:.0f}",
             f"{r['measured'].packets_server_to_client:.0f}",
             f"{r['measured'].percent_overhead:.1f}",
             f"{r['measured'].elapsed:.2f}"]
            for r in results]
    by_cell = {(r["environment"], r["mode"]): r["measured"]
               for r in results}
    headlines = []
    for environment in environments:
        mux = by_cell[(environment, "HTTP/MUX")]
        pipelined = by_cell[(environment, "HTTP/1.1 Pipelined")]
        ratio = mux.elapsed / pipelined.elapsed
        headlines.append(
            f"{environment}: MUX runs at {ratio:.2f}x pipelined's "
            f"elapsed time ({mux.elapsed:.2f}s vs "
            f"{pipelined.elapsed:.2f}s)")
    text = format_simple_table(
        f"Modern protocol modes - Apache, first-time fetch "
        f"(mean of {runs} runs)", header, rows)
    return results, text + "\n" + "\n".join(headlines)


def format_fleet_report(result) -> str:
    """Render a fleet run's tail-latency / fairness / queueing section.

    ``result`` is a :class:`~repro.fleet.runner.FleetResult`.  The
    section leads with nearest-rank page-load percentiles (overall and
    per protocol mode), then the Jain fairness index over per-session
    means, then the server's accept-backlog queueing record — the three
    population-scale views a single-robot table cannot show.
    """
    from ..core.runner import nearest_rank
    spec = result.spec
    lines: List[str] = []
    lines.append(f"Fleet population: {spec.users} users in "
                 f"{spec.cohorts} cohorts on {spec.environment}, "
                 f"scenario {spec.scenario}, seed {spec.seed}")
    capacity = ("unbounded" if spec.server_capacity is None
                else str(spec.server_capacity))
    lines.append(f"  Poisson arrivals {spec.arrival_rate:g}/s, "
                 f"{spec.pages_per_user} pages/user, mean think "
                 f"{spec.think_time:g} s, server capacity {capacity} "
                 f"concurrent, {spec.rounds} fixed-point round(s)")
    lines.append("")
    lines.append("Page-load time (s), nearest-rank percentiles:")
    lines.append(f"  {'mode':34s} {'pages':>6s} {'p50':>8s} "
                 f"{'p95':>8s} {'p99':>8s} {'mean':>8s}")

    def _row(label: str, times: List[float]) -> str:
        mean = sum(times) / len(times) if times else float("nan")
        return (f"  {label:34s} {len(times):6d} "
                f"{nearest_rank(times, 50):8.3f} "
                f"{nearest_rank(times, 95):8.3f} "
                f"{nearest_rank(times, 99):8.3f} {mean:8.3f}")

    lines.append(_row("ALL", result.page_times))
    for mode_name, times in result.per_mode_page_times().items():
        lines.append(_row(mode_name, times))
    lines.append("")
    lines.append(f"Fairness (Jain's index over per-session mean PLT): "
                 f"{result.fairness_index:.4f}")
    errors = result.errors
    lines.append(f"Sessions simulated: {result.users_simulated} "
                 f"({errors} page error(s))")
    waits = result.queue_waits
    accepted = sum(cohort.connections_accepted
                   for cohort in result.cohorts if cohort is not None)
    if waits:
        lines.append(
            f"Server queueing: {len(waits)}/{accepted} connections "
            f"parked; wait mean {sum(waits) / len(waits):.3f} s, "
            f"p95 {nearest_rank(waits, 95):.3f} s, "
            f"max {max(waits):.3f} s")
    else:
        lines.append(f"Server queueing: 0/{accepted} connections "
                     f"parked (capacity never filled)")
    lines.append(f"Server CPU busy: {result.server_cpu_seconds:.2f} s "
                 f"simulated")
    if result.failures:
        lines.append(f"Quarantined cohort units: "
                     f"{len(result.failures)} (excluded from all "
                     f"statistics above)")
    return "\n".join(lines)


def generate_experiments_report(*, runs: int = 5,
                                browser_runs: int = 3,
                                runner: Optional[MatrixRunner] = None
                                ) -> str:
    """Render the full paper-vs-measured report (EXPERIMENTS.md body).

    A shared ``runner`` threads one :class:`MatrixRunner` (its worker
    pool, cache and statistics) through every section.
    """
    run = _runner(runner)
    sections: List[str] = []
    _, table3 = reproduce_table3(runs=runs, runner=run)
    sections.append(table3)
    for server_name in ("Jigsaw", "Apache"):
        for environment_name in ("LAN", "WAN", "PPP"):
            _, text = reproduce_protocol_table(server_name,
                                               environment_name,
                                               runs=runs, runner=run)
            sections.append(text)
    for server_name in ("Jigsaw", "Apache"):
        _, text = reproduce_browser_table(server_name,
                                          runs=browser_runs, runner=run)
        sections.append(text)
    _, modem = reproduce_modem_experiment(runs=runs, runner=run)
    sections.append(modem)
    _, content = reproduce_content_experiments()
    sections.append(content)
    _, future = reproduce_future_work(runner=run)
    sections.append(future)
    _, robustness = reproduce_robustness(runner=run)
    sections.append(robustness)
    _, modern = reproduce_modern_modes(runs=min(runs, 3), runner=run)
    sections.append(modern)
    return "\n\n".join(sections)
