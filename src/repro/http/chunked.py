"""Chunked transfer coding (RFC 2068 §3.6).

HTTP/1.1 introduced chunked transfer so dynamically generated responses
can use persistent connections without knowing their length in advance.
The encoder and incremental decoder here are used by the servers for
dynamic content and by the message parsers.
"""

from __future__ import annotations

from typing import Iterable, Optional

__all__ = ["encode_chunked", "iter_chunks", "ChunkedDecoder"]


def iter_chunks(body: bytes, chunk_size: int = 4096) -> Iterable[bytes]:
    """Split ``body`` into encoded chunks plus the final 0-chunk."""
    for offset in range(0, len(body), chunk_size):
        piece = body[offset:offset + chunk_size]
        yield f"{len(piece):x}\r\n".encode("ascii") + piece + b"\r\n"
    yield b"0\r\n\r\n"


def encode_chunked(body: bytes, chunk_size: int = 4096) -> bytes:
    """Encode ``body`` with the chunked transfer coding."""
    return b"".join(iter_chunks(body, chunk_size))


class ChunkedDecoder:
    """Incremental decoder for a chunked message body.

    Feed it the connection buffer via :meth:`feed_buffer`; it consumes
    exactly the bytes belonging to the chunked body (leaving pipelined
    data for the next message untouched) and reports completion.
    """

    def __init__(self) -> None:
        self._payload = bytearray()
        self._state = "size"          # size | data | data_crlf | trailer
        self._remaining = 0
        self._done = False

    def feed_buffer(self, buffer: bytearray) -> bool:
        """Consume body bytes from ``buffer``; True once the body is done."""
        while not self._done:
            if self._state == "size":
                line = self._take_line(buffer)
                if line is None:
                    return False
                size_text = line.split(b";", 1)[0].strip()
                if not size_text:
                    raise ValueError("empty chunk-size line")
                self._remaining = int(size_text, 16)
                self._state = "trailer" if self._remaining == 0 else "data"
            elif self._state == "data":
                take = min(self._remaining, len(buffer))
                self._payload.extend(buffer[:take])
                del buffer[:take]
                self._remaining -= take
                if self._remaining:
                    return False
                self._state = "data_crlf"
            elif self._state == "data_crlf":
                line = self._take_line(buffer)
                if line is None:
                    return False
                if line:
                    raise ValueError("missing CRLF after chunk data")
                self._state = "size"
            elif self._state == "trailer":
                line = self._take_line(buffer)
                if line is None:
                    return False
                if not line:
                    self._done = True
                # Non-empty trailer header lines are consumed and ignored.
        return True

    def payload(self) -> bytes:
        """The decoded body (valid once :meth:`feed_buffer` returned True)."""
        return bytes(self._payload)

    @staticmethod
    def _take_line(buffer: bytearray) -> Optional[bytes]:
        index = buffer.find(b"\n")
        if index == -1:
            return None
        line = bytes(buffer[:index])
        del buffer[:index + 1]
        return line.rstrip(b"\r")
