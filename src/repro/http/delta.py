"""Delta encoding of changed resources (paper reference [26]).

The paper cites Mogul, Douglis, Feldmann & Krishnamurthy, "Potential
benefits of delta-encoding and data compression for HTTP" (SIGCOMM
'97), as the companion direction to its transport-compression work:
when a cached page *changed*, don't send the new version — send the
difference against the version the client already holds.

This module implements the idiom end to end (the mechanism later
standardized as RFC 3229):

* the client revalidates with ``If-None-Match`` plus ``A-IM:
  repro-delta``, naming the instance it holds;
* an unchanged resource still yields 304;
* a changed resource whose old instance the server retains yields
  **226 IM Used** with ``IM: repro-delta`` and ``Delta-Base`` naming
  the base entity tag, carrying a copy/insert delta
  (:mod:`repro.http.compact`'s opcode stream) instead of the body;
* anything else falls back to a full 200.

:func:`encode_delta` / :func:`apply_delta` are the codec;
server-side negotiation lives in :mod:`repro.server.static` and the
client-side helper is :func:`apply_delta_response`.
"""

from __future__ import annotations

from typing import Optional

from .cache import CacheEntry
from .compact import DeltaStreamDecoder, DeltaStreamEncoder
from .messages import Response

__all__ = ["DELTA_IM_TOKEN", "encode_delta", "apply_delta",
           "wants_delta", "apply_delta_response"]

#: The instance-manipulation token this implementation negotiates.
DELTA_IM_TOKEN = "repro-delta"


def encode_delta(old: bytes, new: bytes) -> bytes:
    """Encode ``new`` as a delta against ``old``."""
    encoder = DeltaStreamEncoder()
    encoder._previous = old
    return encoder.encode(new)


def apply_delta(old: bytes, delta: bytes) -> bytes:
    """Reconstruct the new instance from ``old`` plus ``delta``."""
    decoder = DeltaStreamDecoder()
    decoder._previous = old
    messages = decoder.feed(delta)
    if len(messages) != 1:
        raise ValueError("delta did not decode to exactly one instance")
    return messages[0]


def wants_delta(headers) -> bool:
    """Did the request advertise delta support (``A-IM`` header)?"""
    return any(DELTA_IM_TOKEN in value
               for value in headers.get_all("A-IM"))


def apply_delta_response(entry: Optional[CacheEntry],
                         response: Response) -> bytes:
    """Client side: turn a 226 (or plain) response into entity bytes.

    ``entry`` is the cached instance the conditional request was made
    with; for a 226 its body is the delta base.
    """
    if response.status != 226:
        return response.body
    if entry is None:
        raise ValueError("226 received without a cached base instance")
    base_tag = response.headers.get("Delta-Base")
    if base_tag is not None and entry.etag is not None \
            and base_tag != entry.etag:
        raise ValueError(
            f"delta base {base_tag} does not match cached {entry.etag}")
    if response.headers.get("IM") != DELTA_IM_TOKEN:
        raise ValueError("226 with an unsupported instance manipulation")
    return apply_delta(entry.body, response.body)
