"""HTTP request and response message objects.

Both HTTP/1.0 (RFC 1945) and HTTP/1.1 (RFC 2068) messages are modelled.
Serialization is byte-exact — the paper's Bytes column and its
observation that the libwww robot's requests average ~190 bytes both
depend on real wire sizes, so nothing here is approximated.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from .headers import Headers

__all__ = ["Request", "Response", "HTTP10", "HTTP11", "version_string",
           "STATUS_REASONS"]

#: Protocol version constants.
HTTP10: Tuple[int, int] = (1, 0)
HTTP11: Tuple[int, int] = (1, 1)

#: Reason phrases for the status codes this reproduction uses.
STATUS_REASONS = {
    200: "OK",
    204: "No Content",
    206: "Partial Content",
    226: "IM Used",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    412: "Precondition Failed",
    416: "Requested Range Not Satisfiable",
    500: "Internal Server Error",
    505: "HTTP Version Not Supported",
}


def version_string(version: Tuple[int, int]) -> str:
    """Format a version tuple as e.g. ``HTTP/1.1``."""
    return f"HTTP/{version[0]}.{version[1]}"


def parse_version(text: str) -> Tuple[int, int]:
    """Parse ``HTTP/x.y`` into a version tuple."""
    if not text.startswith("HTTP/"):
        raise ValueError(f"bad HTTP version: {text!r}")
    major, sep, minor = text[5:].partition(".")
    if not sep:
        raise ValueError(f"bad HTTP version: {text!r}")
    return int(major), int(minor)


@dataclasses.dataclass
class Request:
    """An HTTP request.

    ``target`` is the request-URI path (this study always talks to a
    single origin server, so absolute URIs are not needed).
    """

    method: str
    target: str
    version: Tuple[int, int] = HTTP11
    headers: Headers = dataclasses.field(default_factory=Headers)
    body: bytes = b""

    def to_bytes(self) -> bytes:
        """Exact wire serialization."""
        request_line = (f"{self.method} {self.target} "
                        f"{version_string(self.version)}\r\n")
        return (request_line.encode("latin-1") + self.headers.to_bytes()
                + b"\r\n" + self.body)

    @property
    def wire_length(self) -> int:
        """Number of bytes this request occupies on the wire."""
        return len(self.to_bytes())

    def wants_keep_alive(self) -> bool:
        """Whether the client asked for / defaults to a persistent connection."""
        if self.version >= HTTP11:
            return not self.headers.contains_token("Connection", "close")
        return self.headers.contains_token("Connection", "keep-alive")

    def is_conditional(self) -> bool:
        """True for cache-validation requests."""
        return ("If-None-Match" in self.headers
                or "If-Modified-Since" in self.headers)


@dataclasses.dataclass
class Response:
    """An HTTP response.

    ``request_method`` records the method of the request being answered,
    which determines whether the response carries a body on the wire
    (HEAD and 304/204 responses never do).
    """

    status: int
    version: Tuple[int, int] = HTTP11
    headers: Headers = dataclasses.field(default_factory=Headers)
    body: bytes = b""
    reason: Optional[str] = None
    request_method: str = "GET"

    @property
    def reason_phrase(self) -> str:
        """The reason phrase, defaulting from the status code."""
        if self.reason is not None:
            return self.reason
        return STATUS_REASONS.get(self.status, "Unknown")

    def body_on_wire(self) -> bytes:
        """The entity bytes actually transmitted."""
        if self.request_method == "HEAD" or self.status in (204, 304):
            return b""
        return self.body

    def to_bytes(self) -> bytes:
        """Exact wire serialization."""
        status_line = (f"{version_string(self.version)} {self.status} "
                       f"{self.reason_phrase}\r\n")
        return (status_line.encode("latin-1") + self.headers.to_bytes()
                + b"\r\n" + self.body_on_wire())

    @property
    def wire_length(self) -> int:
        """Number of bytes this response occupies on the wire."""
        return len(self.to_bytes())

    def allows_keep_alive(self) -> bool:
        """Whether the connection may carry further requests."""
        if self.version >= HTTP11:
            return not self.headers.contains_token("Connection", "close")
        return self.headers.contains_token("Connection", "keep-alive")
