"""A compact wire representation for HTTP messages (paper future work).

The paper observes: "HTTP requests are usually highly redundant and the
actual number of bytes that changes between requests can be as small as
10%.  Therefore, a more compact wire representation for HTTP could
increase pipelining's benefit for cache revalidation further up to an
additional factor of five or ten, from back of the envelope
calculations based on the number of bytes changing from one request to
the next."  (Sixteen years later this became HPACK; here is the 1997
back-of-the-envelope, made runnable.)

The scheme is deliberately simple — exactly the redundancy the paper
points at, nothing more:

* each message on a stream is encoded **relative to the previous
  one** as a sequence of *copy* (offset+length into the previous
  message) and *insert* (literal bytes) operations — only the URL and
  the entity tag of a pipelined revalidation request are novel, so only
  they travel as literals,
* lengths are varints and frames are self-delimiting,
* the first message is (almost) verbatim: one big insert.

Both directions round-trip losslessly and the decoder is incremental
(frames may arrive split across arbitrary TCP segments), so the codec
could sit under a pipelined connection unchanged.
"""

from __future__ import annotations

import difflib
from typing import List, Optional, Tuple

__all__ = ["encode_varint", "decode_varint", "DeltaStreamEncoder",
           "DeltaStreamDecoder", "compact_ratio"]

#: Frame opcodes.
OP_END = 0x00
OP_COPY = 0x01
OP_INSERT = 0x02
#: Copies shorter than this cost more than they save.
MIN_COPY = 6
#: Messages larger than this use the O(n) block matcher instead of
#: difflib's precise (but quadratic) matcher.
DIFFLIB_LIMIT = 4096
#: Anchor size for the block matcher.
BLOCK = 32


def encode_varint(value: int) -> bytes:
    """LEB128 unsigned varint."""
    if value < 0:
        raise ValueError("varints are unsigned")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, pos: int = 0) -> Tuple[Optional[int], int]:
    """Decode a varint at ``pos``; returns (value, new_pos).

    Returns ``(None, pos)`` when the buffer ends mid-varint.
    """
    value = 0
    shift = 0
    index = pos
    while index < len(data):
        byte = data[index]
        index += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, index
        shift += 7
        if shift > 63:
            raise ValueError("varint too long")
    return None, pos


def _matching_blocks(previous: bytes, message: bytes):
    """Monotone (a_start, b_start, size) matches of message vs previous.

    Small inputs use difflib's precise matcher; large ones (a changed
    43 KB page, say) use an O(n) rsync-style anchor matcher: index
    ``previous`` at every offset by its 32-byte block, then greedily
    extend hits both ways.
    """
    if len(previous) + len(message) <= DIFFLIB_LIMIT:
        matcher = difflib.SequenceMatcher(None, previous, message,
                                          autojunk=False)
        return [tuple(block) for block in matcher.get_matching_blocks()]
    index = {}
    for offset in range(0, max(0, len(previous) - BLOCK) + 1):
        index.setdefault(previous[offset:offset + BLOCK], offset)
    matches = []
    position = 0
    limit = len(message) - BLOCK
    while position <= limit:
        anchor = index.get(message[position:position + BLOCK])
        if anchor is None:
            position += 1
            continue
        start_a, start_b = anchor, position
        # Extend backwards over any unclaimed insert bytes (copies may
        # reference any absolute offset, so only b must stay monotone).
        last_b = matches[-1][1] + matches[-1][2] if matches else 0
        while start_a > 0 and start_b > last_b \
                and previous[start_a - 1] == message[start_b - 1]:
            start_a -= 1
            start_b -= 1
        # Extend forwards.
        size = 0
        while start_a + size < len(previous) \
                and start_b + size < len(message) \
                and previous[start_a + size] == message[start_b + size]:
            size += 1
        matches.append((start_a, start_b, size))
        position = start_b + size
    matches.append((len(previous), len(message), 0))
    return matches


class DeltaStreamEncoder:
    """Encode a stream of messages as deltas against their predecessor."""

    def __init__(self) -> None:
        self._previous = b""
        #: Raw and encoded byte totals, for the savings arithmetic.
        self.raw_bytes = 0
        self.encoded_bytes = 0

    def encode(self, message: bytes) -> bytes:
        """One message → one self-delimiting frame of copy/insert ops."""
        frame = bytearray()
        pending_insert = bytearray()

        def flush_insert() -> None:
            if pending_insert:
                frame.append(OP_INSERT)
                frame.extend(encode_varint(len(pending_insert)))
                frame.extend(pending_insert)
                pending_insert.clear()

        position = 0
        for a_start, b_start, size in _matching_blocks(self._previous,
                                                       message):
            if size == 0:
                continue
            if b_start > position:
                pending_insert.extend(message[position:b_start])
                position = b_start
            if size >= MIN_COPY:
                flush_insert()
                frame.append(OP_COPY)
                frame.extend(encode_varint(a_start))
                frame.extend(encode_varint(size))
            else:
                pending_insert.extend(message[b_start:b_start + size])
            position = b_start + size
        if position < len(message):
            pending_insert.extend(message[position:])
        flush_insert()
        frame.append(OP_END)
        self._previous = message
        self.raw_bytes += len(message)
        self.encoded_bytes += len(frame)
        return bytes(frame)

    @property
    def ratio(self) -> float:
        """raw / encoded — the paper's 'factor of five or ten'."""
        if not self.encoded_bytes:
            return 1.0
        return self.raw_bytes / self.encoded_bytes


class DeltaStreamDecoder:
    """Incrementally decode :class:`DeltaStreamEncoder` output."""

    def __init__(self) -> None:
        self._previous = b""
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[bytes]:
        """Feed frame bytes (any slicing); return completed messages."""
        self._buffer.extend(data)
        out: List[bytes] = []
        while True:
            message = self._try_decode_one()
            if message is None:
                return out
            out.append(message)

    def _try_decode_one(self) -> Optional[bytes]:
        view = bytes(self._buffer)
        message = bytearray()
        pos = 0
        while True:
            if pos >= len(view):
                return None                      # frame incomplete
            op = view[pos]
            pos += 1
            if op == OP_END:
                del self._buffer[:pos]
                result = bytes(message)
                self._previous = result
                return result
            if op == OP_COPY:
                offset, pos = decode_varint(view, pos)
                if offset is None:
                    return None
                length, pos = decode_varint(view, pos)
                if length is None:
                    return None
                if offset + length > len(self._previous):
                    raise ValueError(
                        "delta frame references unknown context")
                message.extend(self._previous[offset:offset + length])
            elif op == OP_INSERT:
                length, pos = decode_varint(view, pos)
                if length is None:
                    return None
                if len(view) - pos < length:
                    return None
                message.extend(view[pos:pos + length])
                pos += length
            else:
                raise ValueError(f"unknown delta opcode {op}")


def compact_ratio(messages: List[bytes]) -> float:
    """Convenience: raw/encoded ratio over a message sequence."""
    encoder = DeltaStreamEncoder()
    for message in messages:
        encoder.encode(message)
    return encoder.ratio
