"""Ordered, case-insensitive HTTP header collection.

HTTP field names are case-insensitive (RFC 2068 §4.2) but the paper's
byte counts depend on exactly what goes on the wire, so :class:`Headers`
preserves the original spelling and ordering for serialization while
matching case-insensitively for lookups.

Lookups are a hot path — every simulated request/response consults a
handful of fields — so the collection maintains a parallel list of
lowercased names, paying ``str.lower`` once per field at insertion
instead of once per field per lookup.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

__all__ = ["Headers"]


class Headers:
    """An ordered multimap of HTTP header fields.

    >>> h = Headers([("Host", "www26.w3.org")])
    >>> h.set("Accept-Encoding", "deflate")
    >>> h.get("accept-encoding")
    'deflate'
    >>> "HOST" in h
    True
    """

    __slots__ = ("_items", "_lower")

    def __init__(self,
                 items: Optional[Iterable[Tuple[str, str]]] = None) -> None:
        self._items: List[Tuple[str, str]] = []
        self._lower: List[str] = []
        if items:
            for name, value in items:
                self.add(name, value)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, name: str, value: str) -> None:
        """Append a field, keeping any existing fields of the same name."""
        self._items.append((name, str(value)))
        self._lower.append(name.lower())

    def set(self, name: str, value: str) -> None:
        """Replace all fields named ``name`` with a single field."""
        self.remove(name)
        self.add(name, value)

    def remove(self, name: str) -> int:
        """Remove all fields named ``name``; returns how many were removed."""
        lowered = name.lower()
        if lowered not in self._lower:
            return 0
        before = len(self._items)
        kept = [(item, low) for item, low in zip(self._items, self._lower)
                if low != lowered]
        self._items = [item for item, _ in kept]
        self._lower = [low for _, low in kept]
        return before - len(self._items)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """First value of field ``name``, or ``default``."""
        lowered = name.lower()
        try:
            return self._items[self._lower.index(lowered)][1]
        except ValueError:
            return default

    def get_all(self, name: str) -> List[str]:
        """All values of field ``name`` in order."""
        lowered = name.lower()
        return [item[1] for item, low in zip(self._items, self._lower)
                if low == lowered]

    def get_int(self, name: str) -> Optional[int]:
        """Integer value of field ``name``, or None if absent/invalid."""
        value = self.get(name)
        if value is None:
            return None
        try:
            return int(value.strip())
        except ValueError:
            return None

    def contains_token(self, name: str, token: str) -> bool:
        """True if a comma-separated field contains ``token`` (case-insensitive).

        Used for e.g. ``Connection: keep-alive`` and
        ``Accept-Encoding: deflate`` checks.
        """
        token = token.lower()
        for value in self.get_all(name):
            for part in value.split(","):
                if part.strip().lower() == token:
                    return True
        return False

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._lower

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        return iter(self._items)

    def items(self) -> List[Tuple[str, str]]:
        """All (name, value) pairs in serialization order."""
        return list(self._items)

    def copy(self) -> "Headers":
        """A shallow copy preserving order and spelling."""
        duplicate = Headers()
        duplicate._items = list(self._items)
        duplicate._lower = list(self._lower)
        return duplicate

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize as ``Name: value\\r\\n`` lines (no terminating blank)."""
        return b"".join(f"{n}: {v}\r\n".encode("latin-1")
                        for n, v in self._items)

    @classmethod
    def from_lines(cls, lines: Iterable[str]) -> "Headers":
        """Parse header lines (without the terminating blank line).

        Handles RFC 2068 continuation lines (leading whitespace folds
        into the previous field).
        """
        headers = cls()
        for line in lines:
            if not line:
                continue
            if line[0] in " \t" and headers._items:
                name, value = headers._items[-1]
                headers._items[-1] = (name, value + " " + line.strip())
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise ValueError(f"malformed header line: {line!r}")
            headers.add(name.strip(), value.strip())
        return headers

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Headers):
            return NotImplemented
        return self._items == other._items

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Headers({self._items!r})"
