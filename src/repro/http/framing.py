"""MUX framing: the multiplexed-streams experiment's wire format.

The paper's pipelining results left an open question the ROADMAP
phrases as "would HTTP/2 have beaten pipelining on the 1997 Microscape
site?".  The ``HTTP/MUX`` modes answer it with an HTTP/2-shaped framing
layer small enough to reason about packet-by-packet:

* a fixed 9-byte frame header (like HTTP/2's): 1-byte type, 4-byte
  stream identifier, 4-byte payload length;
* client-initiated streams carry **odd** identifiers, server-pushed
  streams **even** ones (both strictly increasing);
* ``HEADERS`` payloads are ordinary serialized HTTP/1.1 message heads,
  so the byte-exact parsers in :mod:`repro.http.parser` are reused
  verbatim on both sides;
* ``DATA`` frames are flow-controlled per stream by a credit window
  (:data:`INITIAL_STREAM_WINDOW`), replenished with ``WINDOW_UPDATE``;
* ``PUSH_PROMISE`` announces a speculative response (payload = the
  promised URL), which the client may refuse with ``CANCEL``.

Everything here is pure bytes-in/frames-out with no simulator
dependencies; the MUX client (:mod:`repro.client.mux`) and server
(:mod:`repro.server.base`) own the timing.

This module is on the simulated hot path (one ``FrameReader.feed`` per
TCP delivery): keep classes slotted and allocation-light.
"""

from __future__ import annotations

import struct
from typing import List

__all__ = [
    "F_DATA", "F_HEADERS", "F_CANCEL", "F_END_STREAM", "F_PUSH_PROMISE",
    "F_WINDOW_UPDATE", "FRAME_HEADER_SIZE", "FRAME_TYPE_NAMES",
    "INITIAL_STREAM_WINDOW", "MAX_DATA_PAYLOAD",
    "Frame", "FrameReader", "FramingError",
    "encode_frame", "encode_window_update", "window_increment",
]

#: Frame types.  Values are stable wire constants, not Python enums, so
#: the reader can dispatch on a plain int without attribute lookups.
F_DATA = 0x00            #: response body bytes (flow-controlled)
F_HEADERS = 0x01         #: serialized HTTP request / response head
F_CANCEL = 0x03          #: receiver refuses the rest of this stream
F_END_STREAM = 0x04      #: sender is done with this stream
F_PUSH_PROMISE = 0x05    #: server will push; payload = promised URL
F_WINDOW_UPDATE = 0x08   #: payload = 4-byte credit increment

FRAME_TYPE_NAMES = {
    F_DATA: "DATA", F_HEADERS: "HEADERS", F_CANCEL: "CANCEL",
    F_END_STREAM: "END_STREAM", F_PUSH_PROMISE: "PUSH_PROMISE",
    F_WINDOW_UPDATE: "WINDOW_UPDATE",
}

_HEADER = struct.Struct("!BII")

#: Bytes of framing overhead per frame.
FRAME_HEADER_SIZE = _HEADER.size

#: Initial per-stream flow-control credit, in bytes.  Deliberately
#: smaller than HTTP/2's 65535 default: the Microscape HTML is ~42 KB,
#: so a 16 KB window makes the credit loop actually engage on the WAN
#: instead of being dead code.
INITIAL_STREAM_WINDOW = 16384

#: Largest DATA payload a sender emits in one frame.  Bounding the
#: frame size is what creates interleaving: a 42 KB HTML body becomes
#: eleven DATA frames with room between them for GIF frames.
MAX_DATA_PAYLOAD = 4096

_WINDOW_PAYLOAD = struct.Struct("!I")


class FramingError(Exception):
    """A byte stream that is not a legal sequence of MUX frames."""


class Frame:
    """One decoded frame."""

    __slots__ = ("type", "stream", "payload")

    def __init__(self, type: int, stream: int, payload: bytes) -> None:
        self.type = type
        self.stream = stream
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = FRAME_TYPE_NAMES.get(self.type, hex(self.type))
        return (f"Frame({name}, stream={self.stream}, "
                f"len={len(self.payload)})")

    @property
    def wire_size(self) -> int:
        return FRAME_HEADER_SIZE + len(self.payload)


def encode_frame(type: int, stream: int, payload: bytes = b"") -> bytes:
    """Serialize one frame (header + payload)."""
    return _HEADER.pack(type, stream, len(payload)) + payload


def encode_window_update(stream: int, increment: int) -> bytes:
    """Serialize a WINDOW_UPDATE granting ``increment`` bytes."""
    return encode_frame(F_WINDOW_UPDATE, stream,
                        _WINDOW_PAYLOAD.pack(increment))


def window_increment(frame: Frame) -> int:
    """Decode the credit carried by a WINDOW_UPDATE frame."""
    if len(frame.payload) != _WINDOW_PAYLOAD.size:
        raise FramingError(
            f"WINDOW_UPDATE payload must be {_WINDOW_PAYLOAD.size} "
            f"bytes, got {len(frame.payload)}")
    return _WINDOW_PAYLOAD.unpack(frame.payload)[0]


class FrameReader:
    """Incremental frame decoder.

    TCP delivers arbitrary byte runs; ``feed`` buffers partial frames
    across calls and returns each frame exactly once, in order.
    """

    __slots__ = ("_buffer", "_need")

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._need = FRAME_HEADER_SIZE

    def feed(self, data: bytes) -> List[Frame]:
        self._buffer.extend(data)
        frames: List[Frame] = []
        buffer = self._buffer
        while True:
            if len(buffer) < FRAME_HEADER_SIZE:
                break
            ftype, stream, length = _HEADER.unpack_from(buffer)
            if ftype not in FRAME_TYPE_NAMES:
                raise FramingError(f"unknown frame type 0x{ftype:02x}")
            end = FRAME_HEADER_SIZE + length
            if len(buffer) < end:
                break
            payload = bytes(buffer[FRAME_HEADER_SIZE:end])
            del buffer[:end]
            frames.append(Frame(ftype, stream, payload))
        return frames

    @property
    def buffered(self) -> int:
        """Bytes of a partial frame waiting for the rest."""
        return len(self._buffer)
