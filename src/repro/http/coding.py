"""Content codings: identity, deflate, gzip (RFC 2068 §3.5).

The paper's transport-compression experiment uses the ``deflate``
content coding — the zlib format of RFC 1950 wrapping DEFLATE (RFC 1951),
produced by zlib 1.04 with default settings.  Python's :mod:`zlib` is
the same code base, so the ~3× compression the paper reports on the
Microscape HTML reproduces exactly.

The module also provides content-negotiation helpers: the client sends
``Accept-Encoding: deflate``, the server picks a coding the client
accepts and labels the body with ``Content-Encoding``.
"""

from __future__ import annotations

import gzip as _gzip
import zlib
from typing import Callable, Dict, List, Optional, Tuple

from .headers import Headers

__all__ = [
    "deflate_encode", "deflate_decode", "gzip_encode", "gzip_decode",
    "encode_body", "decode_body", "choose_coding", "accepted_codings",
    "SUPPORTED_CODINGS", "compression_ratio",
]


def deflate_encode(data: bytes, level: int = -1) -> bytes:
    """Compress with the ``deflate`` coding (zlib-wrapped, RFC 1950).

    ``level=-1`` is zlib's default, the setting the paper used ("we used
    the default values for both deflating and inflating").
    """
    return zlib.compress(data, level)


def deflate_decode(data: bytes) -> bytes:
    """Decompress a ``deflate``-coded body.

    Accepts both the correct zlib-wrapped form and the raw-DEFLATE form
    that some 1990s implementations emitted (a famous interoperability
    wart of this coding).
    """
    try:
        return zlib.decompress(data)
    except zlib.error:
        return zlib.decompress(data, -zlib.MAX_WBITS)


def gzip_encode(data: bytes, level: int = 9) -> bytes:
    """Compress with the ``gzip`` coding (RFC 1952)."""
    return _gzip.compress(data, compresslevel=level, mtime=0)


def gzip_decode(data: bytes) -> bytes:
    """Decompress a ``gzip``-coded body."""
    return _gzip.decompress(data)


def _identity(data: bytes) -> bytes:
    return data


#: coding name -> (encode, decode)
SUPPORTED_CODINGS: Dict[str, Tuple[Callable[[bytes], bytes],
                                   Callable[[bytes], bytes]]] = {
    "identity": (_identity, _identity),
    "deflate": (deflate_encode, deflate_decode),
    "gzip": (gzip_encode, gzip_decode),
}


def encode_body(data: bytes, coding: str) -> bytes:
    """Apply a content coding by name."""
    try:
        encoder, _ = SUPPORTED_CODINGS[coding]
    except KeyError:
        raise ValueError(f"unsupported content coding: {coding}") from None
    return encoder(data)


def decode_body(data: bytes, coding: str) -> bytes:
    """Reverse a content coding by name."""
    try:
        _, decoder = SUPPORTED_CODINGS[coding]
    except KeyError:
        raise ValueError(f"unsupported content coding: {coding}") from None
    return decoder(data)


def accepted_codings(headers: Headers) -> List[str]:
    """Codings listed in a request's ``Accept-Encoding`` header, in order."""
    codings: List[str] = []
    for value in headers.get_all("Accept-Encoding"):
        for part in value.split(","):
            token = part.strip().split(";", 1)[0].strip().lower()
            if token:
                codings.append(token)
    return codings


def choose_coding(request_headers: Headers,
                  available: Optional[List[str]] = None) -> str:
    """Server-side negotiation: pick a coding the client accepts.

    Returns the first client-accepted coding the server has available
    (order of client preference), falling back to ``identity``.
    """
    if available is None:
        available = ["deflate"]
    for coding in accepted_codings(request_headers):
        if coding in available and coding in SUPPORTED_CODINGS:
            return coding
    return "identity"


def compression_ratio(data: bytes, coding: str = "deflate") -> float:
    """Compressed size divided by original size (lower is better).

    The paper reports ~0.27 for lowercase-tag HTML and ~0.35 for
    mixed-case HTML.
    """
    if not data:
        return 1.0
    return len(encode_body(data, coding)) / len(data)
