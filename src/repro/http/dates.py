"""HTTP date handling (RFC 1123 format, plus the legacy forms).

Cache validation with ``If-Modified-Since`` / ``Last-Modified`` — the
only validator HTTP/1.0 supports, as the paper notes — needs real date
headers.  Simulated time is seconds since an arbitrary epoch; dates are
rendered in the mandatory RFC 1123 fixed-length format.
"""

from __future__ import annotations

import calendar
import time
from typing import Optional

__all__ = ["format_http_date", "parse_http_date", "PAPER_EPOCH"]

#: An arbitrary but fitting epoch for simulated timestamps:
#: 1997-06-24 00:00:00 UTC, the date of the W3C NOTE.
PAPER_EPOCH = calendar.timegm((1997, 6, 24, 0, 0, 0, 0, 0, 0))

_RFC1123 = "%a, %d %b %Y %H:%M:%S GMT"
_RFC850 = "%A, %d-%b-%y %H:%M:%S GMT"
_ASCTIME = "%a %b %d %H:%M:%S %Y"


def format_http_date(epoch_seconds: float) -> str:
    """Render an epoch timestamp as an RFC 1123 HTTP-date."""
    return time.strftime(_RFC1123, time.gmtime(epoch_seconds))


def parse_http_date(text: str) -> Optional[float]:
    """Parse any of the three HTTP-date forms; None if unparseable."""
    text = text.strip()
    for fmt in (_RFC1123, _RFC850, _ASCTIME):
        try:
            return float(calendar.timegm(time.strptime(text, fmt)))
        except ValueError:
            continue
    return None
