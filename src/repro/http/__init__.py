"""HTTP/1.0 and HTTP/1.1 message layer.

Byte-exact message objects, incremental stream parsers (pipelining
splits messages across TCP segments arbitrarily), header collections,
chunked transfer coding, content codings (deflate/gzip), client caching
with ETag / Last-Modified validators, and byte ranges with ``If-Range``.

Shared by the simulated clients/servers (:mod:`repro.client`,
:mod:`repro.server`) and the real-socket ones (:mod:`repro.realnet`).
"""

from .cache import (CacheEntry, MemoryCache, TwoFileDiskCache,
                    is_not_modified)
from .chunked import ChunkedDecoder, encode_chunked, iter_chunks
from .compact import (DeltaStreamDecoder, DeltaStreamEncoder, compact_ratio,
                      decode_varint, encode_varint)
from .coding import (accepted_codings, choose_coding, compression_ratio,
                     decode_body, deflate_decode, deflate_encode,
                     encode_body, gzip_decode, gzip_encode)
from .dates import PAPER_EPOCH, format_http_date, parse_http_date
from .delta import (DELTA_IM_TOKEN, apply_delta, apply_delta_response,
                    encode_delta, wants_delta)
from .headers import Headers
from .messages import (HTTP10, HTTP11, Request, Response, STATUS_REASONS,
                       version_string)
from .parser import ParseError, RequestParser, ResponseParser
from .ranges import (ByteRange, MULTIPART_BOUNDARY, apply_range,
                     content_range, encode_multipart_byteranges,
                     if_range_matches, parse_multipart_byteranges,
                     parse_range_header)

__all__ = [
    "CacheEntry", "MemoryCache", "TwoFileDiskCache", "is_not_modified",
    "ChunkedDecoder", "encode_chunked", "iter_chunks",
    "DeltaStreamDecoder", "DeltaStreamEncoder", "compact_ratio",
    "decode_varint", "encode_varint",
    "accepted_codings", "choose_coding", "compression_ratio",
    "decode_body", "deflate_decode", "deflate_encode", "encode_body",
    "gzip_decode", "gzip_encode",
    "PAPER_EPOCH", "format_http_date", "parse_http_date",
    "DELTA_IM_TOKEN", "apply_delta", "apply_delta_response",
    "encode_delta", "wants_delta",
    "Headers",
    "HTTP10", "HTTP11", "Request", "Response", "STATUS_REASONS",
    "version_string",
    "ParseError", "RequestParser", "ResponseParser",
    "ByteRange", "MULTIPART_BOUNDARY", "apply_range", "content_range",
    "encode_multipart_byteranges", "if_range_matches",
    "parse_multipart_byteranges", "parse_range_header",
]
