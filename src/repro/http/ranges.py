"""Byte-range requests and ``If-Range`` (RFC 2068 §14.36, §14.27).

The paper argues that HTTP/1.1 clients should combine cache validation
with ranged requests — fetch just the first bytes of each embedded
image (enough for the metadata that page layout needs) over a single
connection, a style it names **"poor man's multiplexing"**.  This module
implements the server and client sides of that idiom; the
``examples/range_multiplexing.py`` script demonstrates it end to end.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from .headers import Headers

__all__ = ["ByteRange", "parse_range_header", "content_range",
           "apply_range", "if_range_matches",
           "encode_multipart_byteranges", "parse_multipart_byteranges",
           "MULTIPART_BOUNDARY"]

#: Fixed multipart boundary (1997 servers used constants like this one).
MULTIPART_BOUNDARY = "THIS_STRING_SEPARATES"


@dataclasses.dataclass(frozen=True)
class ByteRange:
    """A resolved byte range: inclusive ``start``..``end`` offsets."""

    start: int
    end: int

    @property
    def length(self) -> int:
        return self.end - self.start + 1

    def slice(self, body: bytes) -> bytes:
        """Extract the ranged bytes from ``body``."""
        return body[self.start:self.end + 1]


def parse_range_header(value: str, entity_length: int) -> List[ByteRange]:
    """Resolve a ``Range: bytes=...`` header against an entity length.

    Returns the satisfiable ranges in request order; an empty list means
    the whole header is unsatisfiable (⇒ 416).  Raises ``ValueError``
    for syntactically invalid headers (⇒ ignore the header per RFC).
    """
    value = value.strip()
    if not value.lower().startswith("bytes="):
        raise ValueError(f"unsupported range unit: {value!r}")
    ranges: List[ByteRange] = []
    for spec in value[len("bytes="):].split(","):
        spec = spec.strip()
        if not spec:
            continue
        first, dash, last = spec.partition("-")
        if not dash:
            raise ValueError(f"malformed range spec: {spec!r}")
        if first == "":
            # Suffix range: final N bytes.
            suffix = int(last)
            if suffix <= 0:
                continue
            start = max(0, entity_length - suffix)
            end = entity_length - 1
        else:
            start = int(first)
            end = int(last) if last else entity_length - 1
            if end >= entity_length:
                end = entity_length - 1
        if start > end or start >= entity_length:
            continue
        ranges.append(ByteRange(start, end))
    return ranges


def content_range(byte_range: ByteRange, entity_length: int) -> str:
    """Format a ``Content-Range`` header value."""
    return f"bytes {byte_range.start}-{byte_range.end}/{entity_length}"


def apply_range(body: bytes, headers: Headers,
                byte_range: ByteRange) -> bytes:
    """Slice ``body`` and set ``Content-Range``/``Content-Length``."""
    partial = byte_range.slice(body)
    headers.set("Content-Range", content_range(byte_range, len(body)))
    headers.set("Content-Length", str(len(partial)))
    return partial


def encode_multipart_byteranges(body: bytes, ranges: List[ByteRange],
                                content_type: str,
                                boundary: str = MULTIPART_BOUNDARY
                                ) -> bytes:
    """Serialize a multi-range 206 body (RFC 2068 §19.2).

    Each part carries its own ``Content-Type`` and ``Content-Range``;
    the response's outer type must be
    ``multipart/byteranges; boundary=...``.
    """
    out = bytearray()
    for byte_range in ranges:
        out.extend(f"--{boundary}\r\n".encode("ascii"))
        out.extend(f"Content-Type: {content_type}\r\n".encode("latin-1"))
        out.extend(f"Content-Range: "
                   f"{content_range(byte_range, len(body))}\r\n\r\n"
                   .encode("ascii"))
        out.extend(byte_range.slice(body))
        out.extend(b"\r\n")
    out.extend(f"--{boundary}--\r\n".encode("ascii"))
    return bytes(out)


def parse_multipart_byteranges(body: bytes, content_type_header: str
                               ) -> List[Tuple[ByteRange, bytes]]:
    """Parse a multipart/byteranges body into (range, bytes) parts."""
    marker = "boundary="
    index = content_type_header.find(marker)
    if index == -1:
        raise ValueError("multipart content-type without boundary")
    boundary = content_type_header[index + len(marker):].strip().strip('"')
    delimiter = f"--{boundary}".encode("ascii")
    parts: List[Tuple[ByteRange, bytes]] = []
    sections = body.split(delimiter)
    for section in sections[1:]:
        section = section.lstrip(b"\r\n")
        if section.startswith(b"--"):
            break                                   # closing delimiter
        header_block, sep, payload = section.partition(b"\r\n\r\n")
        if not sep:
            raise ValueError("malformed multipart part")
        # Exactly one CRLF separates the payload from the delimiter;
        # binary payloads may themselves end in CR/LF bytes, so strip
        # precisely two characters, never more.
        if payload.endswith(b"\r\n"):
            payload = payload[:-2]
        range_line = next(
            (line for line in header_block.decode("latin-1").split("\r\n")
             if line.lower().startswith("content-range:")), None)
        if range_line is None:
            raise ValueError("part without Content-Range")
        spec = range_line.split(":", 1)[1].strip()
        span = spec.split()[1].split("/")[0]
        start_text, _, end_text = span.partition("-")
        parts.append((ByteRange(int(start_text), int(end_text)), payload))
    return parts


def if_range_matches(if_range_value: Optional[str], etag: Optional[str],
                     last_modified: Optional[str]) -> bool:
    """Evaluate ``If-Range``: may the server honour the Range header?

    ``If-Range`` carries either an entity tag or a date; it matches when
    the client's validator still describes the current entity.  If there
    is no ``If-Range`` header the range is honoured unconditionally.
    """
    if if_range_value is None:
        return True
    value = if_range_value.strip()
    if value.startswith('"') or value.startswith('W/'):
        return etag is not None and value == etag
    return last_modified is not None and value == last_modified
