"""Incremental HTTP message parsers.

Pipelining means messages arrive back-to-back in arbitrary TCP segment
chunks: a segment can end mid-header, a response can start in the middle
of a segment, several small 304 responses can share one segment (that is
the whole point of server-side response buffering).  Both parsers are
therefore fully incremental: :meth:`feed` accepts any byte slicing and
returns every message completed so far.

Body framing follows RFC 2068 §4.4: no body for HEAD / 204 / 304,
``Transfer-Encoding: chunked``, then ``Content-Length``, then (for
responses only) read-until-close, which HTTP/1.0 servers without
keep-alive still use.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .chunked import ChunkedDecoder
from .headers import Headers
from .messages import Request, Response, parse_version

__all__ = ["ParseError", "RequestParser", "ResponseParser"]

#: Upper bound on a header block; longer blocks indicate a framing bug.
MAX_HEADER_BLOCK = 65536


class ParseError(ValueError):
    """Raised on malformed HTTP input."""


def _find_header_end(buffer: bytearray) -> Tuple[int, int]:
    """Locate the end of the header block.

    Returns ``(end_of_headers, start_of_body)`` or ``(-1, -1)`` if the
    block is incomplete.  Accepts both CRLF and bare-LF line endings, as
    real 1997 servers had to.
    """
    crlf = buffer.find(b"\r\n\r\n")
    lf = buffer.find(b"\n\n")
    if crlf == -1 and lf == -1:
        return -1, -1
    if crlf != -1 and (lf == -1 or crlf < lf):
        return crlf, crlf + 4
    return lf, lf + 2


def _split_header_block(block: bytes) -> List[str]:
    """Split a raw header block into decoded lines."""
    text = block.decode("latin-1")
    return text.replace("\r\n", "\n").split("\n")


class _BodyReader:
    """Tracks body framing for the message currently being read."""

    def __init__(self, mode: str, length: int = 0) -> None:
        self.mode = mode                   # none | length | chunked | close
        self.remaining = length
        self.chunks = bytearray()
        self.chunked = ChunkedDecoder() if mode == "chunked" else None
        #: Body bytes consumed by the most recent :meth:`feed` call
        #: (drives streaming observers, e.g. incremental HTML parsing).
        self.last_consumed: bytes = b""

    def feed(self, buffer: bytearray) -> Optional[bytes]:
        """Consume body bytes from ``buffer``.

        Returns the complete body once available, else None.  Consumed
        bytes are removed from ``buffer``.
        """
        if self.mode == "none":
            self.last_consumed = b""
            return bytes(self.chunks)
        if self.mode == "length":
            take = min(self.remaining, len(buffer))
            self.last_consumed = bytes(buffer[:take])
            self.chunks.extend(buffer[:take])
            del buffer[:take]
            self.remaining -= take
            if self.remaining == 0:
                return bytes(self.chunks)
            return None
        if self.mode == "chunked":
            assert self.chunked is not None
            before = len(self.chunked._payload)
            done = self.chunked.feed_buffer(buffer)
            self.last_consumed = bytes(self.chunked._payload[before:])
            if done:
                return self.chunked.payload()
            return None
        # close-delimited: consume everything; finished only at EOF.
        self.last_consumed = bytes(buffer)
        self.chunks.extend(buffer)
        del buffer[:]
        return None


class RequestParser:
    """Incremental parser for a stream of HTTP requests.

    >>> parser = RequestParser()
    >>> parser.feed(b"GET /a HTTP/1.1\\r\\nHost: h\\r\\n\\r\\nGE")
    ... # doctest: +ELLIPSIS
    [Request(method='GET', target='/a', ...)]
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._current: Optional[Request] = None
        self._body: Optional[_BodyReader] = None
        #: Total bytes fed (wire accounting for server statistics).
        self.bytes_fed = 0

    def feed(self, data: bytes) -> List[Request]:
        """Feed bytes; return all requests completed by this chunk."""
        self.bytes_fed += len(data)
        self._buffer.extend(data)
        completed: List[Request] = []
        while True:
            if self._current is None:
                if not self._parse_head():
                    break
            assert self._current is not None and self._body is not None
            body = self._body.feed(self._buffer)
            if body is None:
                break
            self._current.body = body
            completed.append(self._current)
            self._current = None
            self._body = None
        return completed

    def _parse_head(self) -> bool:
        end, body_start = _find_header_end(self._buffer)
        if end == -1:
            if len(self._buffer) > MAX_HEADER_BLOCK:
                raise ParseError("header block too large")
            # Skip stray leading CRLFs between pipelined requests.
            while self._buffer[:2] == b"\r\n":
                del self._buffer[:2]
            return False
        lines = _split_header_block(bytes(self._buffer[:end]))
        del self._buffer[:body_start]
        request_line = lines[0]
        parts = request_line.split()
        if len(parts) == 2:
            # HTTP/0.9 simple request: "GET /path".
            method, target = parts
            version = (0, 9)
        elif len(parts) == 3:
            method, target, version_text = parts
            version = parse_version(version_text)
        else:
            raise ParseError(f"malformed request line: {request_line!r}")
        headers = Headers.from_lines(lines[1:])
        self._current = Request(method=method, target=target,
                                version=version, headers=headers)
        length = headers.get_int("Content-Length")
        if headers.contains_token("Transfer-Encoding", "chunked"):
            self._body = _BodyReader("chunked")
        elif length:
            self._body = _BodyReader("length", length)
        else:
            self._body = _BodyReader("none")
        return True


class ResponseParser:
    """Incremental parser for a stream of HTTP responses.

    A pipelined client must know the request method each response
    answers (a HEAD response has headers describing a body that never
    arrives).  Call :meth:`expect` once per request *in order*; the
    parser pops expectations as responses complete.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._expected_methods: List[str] = []
        self._current: Optional[Response] = None
        self._body: Optional[_BodyReader] = None
        self.bytes_fed = 0
        #: Total responses fully parsed (lets callers map streaming
        #: body callbacks to the right outstanding request even when
        #: several responses complete inside one ``feed`` call).
        self.messages_completed = 0
        #: Optional streaming observer called as ``(response, chunk)``
        #: for every body byte-run as it is consumed — the hook that
        #: lets a client parse HTML incrementally while it downloads.
        self.on_body_chunk = None

    def expect(self, method: str) -> None:
        """Register that the next unanswered request used ``method``."""
        self._expected_methods.append(method)

    @property
    def outstanding(self) -> int:
        """Number of expected responses not yet fully parsed."""
        return len(self._expected_methods) + (
            1 if self._current is not None else 0)

    def feed(self, data: bytes) -> List[Response]:
        """Feed bytes; return all responses completed by this chunk."""
        self.bytes_fed += len(data)
        self._buffer.extend(data)
        completed: List[Response] = []
        while True:
            if self._current is None:
                if not self._parse_head():
                    break
            assert self._current is not None and self._body is not None
            body = self._body.feed(self._buffer)
            if self.on_body_chunk is not None and self._body.last_consumed:
                self.on_body_chunk(self._current, self._body.last_consumed)
            if body is None:
                break
            self._current.body = body
            completed.append(self._current)
            self.messages_completed += 1
            self._current = None
            self._body = None
        return completed

    def eof(self) -> Optional[Response]:
        """Signal connection close; completes a close-delimited response."""
        if self._current is not None and self._body is not None \
                and self._body.mode == "close":
            self._current.body = bytes(self._body.chunks)
            response = self._current
            self._current = None
            self._body = None
            self.messages_completed += 1
            return response
        if self._current is not None:
            raise ParseError("connection closed mid-response")
        return None

    def _parse_head(self) -> bool:
        end, body_start = _find_header_end(self._buffer)
        if end == -1:
            if len(self._buffer) > MAX_HEADER_BLOCK:
                raise ParseError("header block too large")
            return False
        lines = _split_header_block(bytes(self._buffer[:end]))
        del self._buffer[:body_start]
        status_line = lines[0]
        parts = status_line.split(None, 2)
        if len(parts) < 2:
            raise ParseError(f"malformed status line: {status_line!r}")
        version = parse_version(parts[0])
        status = int(parts[1])
        reason = parts[2] if len(parts) > 2 else ""
        headers = Headers.from_lines(lines[1:])
        method = (self._expected_methods.pop(0)
                  if self._expected_methods else "GET")
        self._current = Response(status=status, version=version,
                                 headers=headers, reason=reason,
                                 request_method=method)
        self._body = self._choose_body(method, status, headers)
        return True

    @staticmethod
    def _choose_body(method: str, status: int,
                     headers: Headers) -> _BodyReader:
        if method == "HEAD" or status in (204, 304) or 100 <= status < 200:
            return _BodyReader("none")
        if headers.contains_token("Transfer-Encoding", "chunked"):
            return _BodyReader("chunked")
        length = headers.get_int("Content-Length")
        if length is not None:
            return _BodyReader("length", length)
        return _BodyReader("close")
