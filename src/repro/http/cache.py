"""Client-side HTTP caching with validators.

The revalidation test — the paper's "common operation in the Web,
revisiting a page cached locally" — depends on this machinery:

* HTTP/1.1 supports two validators: **entity tags** (guaranteed-unique
  opaque tags, sent back in ``If-None-Match``) and **date stamps**
  (``Last-Modified`` / ``If-Modified-Since``).  HTTP/1.0 only has dates.
* The HTTP/1.1 robot issues 43 Conditional GETs and receives 304s.
* The paper's libwww persistent cache stored each object as *two files*
  (headers and body), which became a measurable bottleneck; the final
  runs used a memory filesystem.  Both cache backends are provided:
  :class:`MemoryCache` and the deliberately libwww-like
  :class:`TwoFileDiskCache`.
"""

from __future__ import annotations

import os
from typing import Dict, Iterator, List, Optional, Tuple

from .dates import format_http_date, parse_http_date
from .headers import Headers
from .messages import Response

__all__ = ["CacheEntry", "MemoryCache", "TwoFileDiskCache"]


class CacheEntry:
    """One cached object with its validators."""

    def __init__(self, url: str, body: bytes, headers: Headers) -> None:
        self.url = url
        self.body = body
        self.headers = headers

    @property
    def etag(self) -> Optional[str]:
        """The stored entity tag, if the server sent one."""
        return self.headers.get("ETag")

    @property
    def last_modified(self) -> Optional[str]:
        """The stored Last-Modified date, if the server sent one."""
        return self.headers.get("Last-Modified")

    @property
    def content_type(self) -> Optional[str]:
        return self.headers.get("Content-Type")


class MemoryCache:
    """An in-memory client cache keyed by request URL.

    This models the paper's final configuration ("a persistent cache on
    a memory file system").
    """

    def __init__(self) -> None:
        self._entries: Dict[str, CacheEntry] = {}
        #: Counters for test assertions.
        self.hits = 0
        self.validations = 0
        self.updates = 0

    # ------------------------------------------------------------------
    # Store / fetch
    # ------------------------------------------------------------------
    def store(self, url: str, response: Response) -> Optional[CacheEntry]:
        """Cache a successful response; returns the entry (or None)."""
        if response.status != 200:
            return None
        entry = CacheEntry(url, response.body, response.headers.copy())
        self._write(entry)
        self.updates += 1
        return entry

    def get(self, url: str) -> Optional[CacheEntry]:
        """Look up a cached entry."""
        entry = self._read(url)
        if entry is not None:
            self.hits += 1
        return entry

    def __contains__(self, url: str) -> bool:
        return self._read(url) is not None

    def __len__(self) -> int:
        return sum(1 for _ in self.urls())

    def urls(self) -> Iterator[str]:
        """All cached URLs."""
        return iter(list(self._entries))

    def clear(self) -> None:
        """Drop every entry (the 'first visit' precondition)."""
        self._entries.clear()

    # ------------------------------------------------------------------
    # Validation protocol
    # ------------------------------------------------------------------
    def conditional_headers(self, url: str, http11: bool = True,
                            date_fallback: bool = False
                            ) -> List[Tuple[str, str]]:
        """Validator headers for a Conditional GET of ``url``.

        HTTP/1.1 prefers the entity tag (``If-None-Match``); HTTP/1.0
        can only use ``If-Modified-Since``.  ``date_fallback`` uses the
        stored response ``Date`` when no ``Last-Modified`` was sent — a
        heuristic 1990s browsers (Navigator among them) applied so they
        could still validate against servers that omitted file dates.
        """
        entry = self._read(url)
        if entry is None:
            return []
        headers: List[Tuple[str, str]] = []
        if http11 and entry.etag:
            headers.append(("If-None-Match", entry.etag))
        elif entry.last_modified:
            headers.append(("If-Modified-Since", entry.last_modified))
        elif date_fallback:
            date = entry.headers.get("Date")
            if date:
                headers.append(("If-Modified-Since", date))
        return headers

    def handle_response(self, url: str, response: Response) -> bytes:
        """Reconcile a validation response with the cache.

        304 ⇒ the cached body is current (returns it); 200 ⇒ replaces
        the entry.  Other statuses leave the cache untouched.
        """
        if response.status == 304:
            self.validations += 1
            entry = self._read(url)
            if entry is None:
                raise KeyError(f"304 for uncached url {url}")
            return entry.body
        if response.status == 200:
            self.store(url, response)
            return response.body
        return response.body

    # ------------------------------------------------------------------
    # Backend hooks (overridden by the disk cache)
    # ------------------------------------------------------------------
    def _write(self, entry: CacheEntry) -> None:
        self._entries[entry.url] = entry

    def _read(self, url: str) -> Optional[CacheEntry]:
        return self._entries.get(url)


class TwoFileDiskCache(MemoryCache):
    """A libwww-style persistent cache: two files per object.

    The paper: "Each cached object contains two independent files: one
    containing the cacheable message headers and the other containing
    the message body.  ...the overhead in our implementation became a
    performance bottleneck."  This backend reproduces that layout so the
    bottleneck is demonstrable (see the flush-policy ablation tests).
    """

    def __init__(self, root: str) -> None:
        super().__init__()
        self.root = root
        os.makedirs(root, exist_ok=True)
        #: File operations performed, for overhead accounting.
        self.file_operations = 0

    def _paths(self, url: str) -> Tuple[str, str]:
        safe = url.strip("/").replace("/", "_") or "_root"
        return (os.path.join(self.root, safe + ".headers"),
                os.path.join(self.root, safe + ".body"))

    def _write(self, entry: CacheEntry) -> None:
        header_path, body_path = self._paths(entry.url)
        with open(header_path, "wb") as handle:
            handle.write(entry.headers.to_bytes())
        with open(body_path, "wb") as handle:
            handle.write(entry.body)
        self.file_operations += 2

    def _read(self, url: str) -> Optional[CacheEntry]:
        header_path, body_path = self._paths(url)
        if not (os.path.exists(header_path) and os.path.exists(body_path)):
            return None
        with open(header_path, "rb") as handle:
            header_block = handle.read().decode("latin-1")
        with open(body_path, "rb") as handle:
            body = handle.read()
        self.file_operations += 2
        lines = [ln for ln in header_block.split("\r\n") if ln]
        return CacheEntry(url, body, Headers.from_lines(lines))

    def urls(self) -> Iterator[str]:
        for name in sorted(os.listdir(self.root)):
            if name.endswith(".body"):
                yield "/" + name[:-len(".body")].replace("_", "/")

    def clear(self) -> None:
        for name in os.listdir(self.root):
            os.unlink(os.path.join(self.root, name))


def is_not_modified(entry_etag: Optional[str],
                    entry_date: Optional[str],
                    if_none_match: Optional[str],
                    if_modified_since: Optional[str]) -> bool:
    """Server-side validation check (RFC 2068 §14.25 / §14.26).

    Entity tags take precedence over dates when both are present.
    """
    if if_none_match is not None:
        if if_none_match.strip() == "*":
            return True
        candidates = [tag.strip() for tag in if_none_match.split(",")]
        return entry_etag is not None and entry_etag in candidates
    if if_modified_since is not None and entry_date is not None:
        since = parse_http_date(if_modified_since)
        modified = parse_http_date(entry_date)
        if since is not None and modified is not None:
            return modified <= since
    return False


__all__.append("is_not_modified")
__all__.append("format_http_date")
