"""Project-wide symbol table, import graph, and call graph.

The per-file rules in :mod:`repro.lint.rules` can say "this line reads
the wall clock"; they cannot say "this parameter never reaches the
cache key" or "this function is reachable from the worker pool".  This
module builds the whole-program structure the flow-aware passes in
:mod:`repro.lint.deep` need:

* a **module table** — every ``.py`` file under a root directory,
  parsed once, with its package-relative dotted name, top-level symbol
  table, module-level bindings, and inline-pragma lines;
* an **import graph** — each module's local names resolved to the
  project module and symbol they refer to (absolute and relative
  ``from``-imports, module aliases);
* a **call graph** — every call site in every function resolved to the
  project functions it can dispatch to.  Resolution is exact for plain
  names (local or imported) and ``self.method(...)``; for other
  attribute calls it falls back to class-hierarchy-analysis style
  name matching (every project function or method with that name is a
  candidate), which over-approximates — the right bias for the purity
  pass, where a missed edge is a missed bug.

Everything is derived from the ASTs alone: the analyzed tree is never
imported, so the same machinery runs over ``src/repro`` and over the
miniature bad-project corpora in ``tests/lint/fixtures``.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

__all__ = ["CallSite", "FunctionInfo", "ClassInfo", "ModuleInfo",
           "ProjectGraph", "build_graph"]


@dataclasses.dataclass
class CallSite:
    """One call expression inside a function body."""

    __slots__ = ("node", "raw", "targets")

    #: The ``ast.Call`` node itself.
    node: ast.Call
    #: The callee as written (``"TcpConfig"``, ``"mode.client_config"``).
    raw: str
    #: Qualified names of project functions this call can reach
    #: (empty for calls into the standard library / externals).
    targets: Tuple[str, ...]


@dataclasses.dataclass
class FunctionInfo:
    """One function or method, with its resolved call sites."""

    __slots__ = ("qualname", "module", "name", "node", "params",
                 "calls", "global_writes", "module_subscript_writes")

    #: ``module:func`` or ``module:Class.method``.
    qualname: str
    module: str
    name: str
    node: ast.AST
    #: Positional-or-keyword and keyword-only parameter names, in order.
    params: Tuple[str, ...]
    calls: List[CallSite]
    #: ``global NAME`` declarations that the body also assigns.
    global_writes: List[Tuple[str, ast.AST]]
    #: ``NAME[...] = v`` / ``NAME[...] += v`` where NAME is a
    #: module-level binding of this function's module (a memo-dict
    #: write), and NAME is not shadowed by a local.
    module_subscript_writes: List[Tuple[str, ast.AST]]


@dataclasses.dataclass
class ClassInfo:
    """One class: its methods, dataclass fields, and base names."""

    __slots__ = ("qualname", "module", "name", "node", "methods",
                 "fields", "bases", "is_dataclass")

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    #: method name -> function qualname
    methods: Dict[str, str]
    #: Annotated class-body assignments in order (dataclass fields).
    fields: Tuple[str, ...]
    #: Base-class names as written (unresolved).
    bases: Tuple[str, ...]
    is_dataclass: bool


@dataclasses.dataclass
class ModuleInfo:
    """One parsed module of the analyzed tree."""

    __slots__ = ("name", "path", "posix_path", "tree", "imports",
                 "module_aliases", "toplevel", "pragmas")

    #: Package-relative dotted name (``"matrix.spec"``).
    name: str
    path: str
    posix_path: str
    tree: ast.Module
    #: local name -> (project module, symbol) for from-imports of
    #: project modules; symbol is "" for whole-module imports.
    imports: Dict[str, Tuple[str, str]]
    #: local alias -> external dotted origin (``import random`` and
    #: friends), same shape the per-file rules use.
    module_aliases: Dict[str, str]
    #: Names bound at module level (functions, classes, assignments).
    toplevel: Set[str]
    #: line -> set of rule ids waived by an inline pragma.
    pragmas: Dict[int, Set[str]]


def _module_name(path: pathlib.Path, root: pathlib.Path) -> str:
    relative = path.relative_to(root).with_suffix("")
    parts = list(relative.parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _resolve_relative(module: str, level: int,
                      target: Optional[str]) -> Optional[str]:
    """Resolve a ``from ...X import Y`` module reference.

    ``module`` is the importing module's package-relative dotted name;
    the project root is package level zero, so ``level`` dots strip
    ``level`` trailing components from the importing module's package.
    """
    # The package containing `module` (modules live in their package;
    # an __init__ already *is* its package, but we only analyze from
    # plain modules' point of view, which is the common case).
    package_parts = module.split(".")[:-1] if module else []
    strip = level - 1
    if strip > len(package_parts):
        return None
    base = package_parts[:len(package_parts) - strip] if strip else \
        package_parts
    if target:
        base = base + target.split(".")
    return ".".join(base)


class _FunctionScanner(ast.NodeVisitor):
    """Collect calls and global writes inside one function body."""

    def __init__(self, locals_: Set[str]) -> None:
        self.locals = locals_
        self.calls: List[ast.Call] = []
        self.global_names: Set[str] = set()
        self.assigned: Set[str] = set()
        self.subscript_writes: List[Tuple[str, ast.AST]] = []

    def visit_Call(self, node: ast.Call) -> None:
        self.calls.append(node)
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        self.global_names.update(node.names)

    def _record_target(self, target: ast.expr, node: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.assigned.add(target.id)
        elif isinstance(target, ast.Subscript) \
                and isinstance(target.value, ast.Name):
            self.subscript_writes.append((target.value.id, node))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_target(element, node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_target(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_target(node.target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_target(node.target, node)
        self.generic_visit(node)

    # Nested defs and lambdas are folded into the enclosing function:
    # a closure or callback defined here still runs in the dispatched
    # worker, so its calls and writes count against the enclosing
    # scope.  (Over-approximate — a defined-but-never-called closure
    # still contributes — which is the right bias for purity.)


class ProjectGraph:
    """The analyzed project: modules, functions, classes, call edges."""

    def __init__(self, root: pathlib.Path) -> None:
        self.root = root
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: function name -> qualnames (for CHA-style attr resolution).
        self._by_name: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def functions_named(self, name: str) -> List[FunctionInfo]:
        """Every project function/method with this unqualified name."""
        return [self.functions[q] for q in self._by_name.get(name, ())]

    def find_class(self, name: str) -> Optional[ClassInfo]:
        """The unique project class with this name, if unambiguous."""
        matches = [c for c in self.classes.values() if c.name == name]
        return matches[0] if len(matches) == 1 else None

    def module_of(self, qualname: str) -> ModuleInfo:
        return self.modules[qualname.split(":", 1)[0]]

    def waived(self, qualname_or_module: str, rule: str,
               line: int) -> bool:
        """True when an inline pragma waives ``rule`` at this line."""
        module = qualname_or_module.split(":", 1)[0]
        info = self.modules.get(module)
        if info is None:
            return False
        for lineno in (line, line - 1):
            rules = info.pragmas.get(lineno)
            if rules and (rule in rules or "*" in rules):
                return True
        return False

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------
    def reachable(self, roots: Sequence[str]) -> Set[str]:
        """Qualnames of every function reachable from ``roots``.

        Follows resolved call edges, including the CHA-style candidate
        sets of attribute calls — an over-approximation by design.
        """
        seen: Set[str] = set()
        stack = [r for r in roots if r in self.functions]
        while stack:
            qualname = stack.pop()
            if qualname in seen:
                continue
            seen.add(qualname)
            for call in self.functions[qualname].calls:
                for target in call.targets:
                    if target not in seen:
                        stack.append(target)
        return seen

    def callers_of(self, qualname: str
                   ) -> List[Tuple[FunctionInfo, CallSite]]:
        """Every (function, call site) that can dispatch to ``qualname``."""
        found = []
        for fn in self.functions.values():
            for call in fn.calls:
                if qualname in call.targets:
                    found.append((fn, call))
        return found


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------

def _collect_pragmas(source: str) -> Dict[int, Set[str]]:
    from .static import _PRAGMA
    waived: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(text)
        if match is None:
            continue
        waived[lineno] = {part.strip()
                          for part in match.group(1).split(",")
                          if part.strip()}
    return waived


def _scan_imports(tree: ast.Module, module: str,
                  known_prefixes: Set[str]
                  ) -> Tuple[Dict[str, Tuple[str, str]], Dict[str, str]]:
    """Split a module's imports into project refs and external aliases."""
    imports: Dict[str, Tuple[str, str]] = {}
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.split(".")[0]
                if name.name in known_prefixes:
                    imports[local] = (name.name, "")
                else:
                    aliases[local] = name.name if name.asname else local
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                origin = _resolve_relative(module, node.level,
                                           node.module)
            else:
                origin = node.module
            if origin is None:
                continue
            for name in node.names:
                if name.name == "*":
                    continue
                local = name.asname or name.name
                if origin in known_prefixes:
                    imports[local] = (origin, name.name)
                elif f"{origin}.{name.name}" in known_prefixes:
                    # ``from ..content import artifacts``-style
                    # subpackage import: the local name is a module.
                    imports[local] = (f"{origin}.{name.name}", "")
                else:
                    aliases[local] = f"{origin}.{name.name}"
    return imports, aliases


def _function_params(node: Union[ast.FunctionDef,
                                 ast.AsyncFunctionDef]
                     ) -> Tuple[str, ...]:
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args
             + args.kwonlyargs]
    return tuple(names)


def _raw_callee(node: ast.expr) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif isinstance(node, ast.Call):
        parts.append("()")
    else:
        parts.append("?")
    return ".".join(reversed(parts))


def build_graph(root: Union[str, pathlib.Path]) -> ProjectGraph:
    """Parse every ``.py`` under ``root`` and build the project graph."""
    root = pathlib.Path(root)
    graph = ProjectGraph(root)
    sources: Dict[str, Tuple[pathlib.Path, str, ast.Module]] = {}
    for path in sorted(root.rglob("*.py")):
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            continue
        name = _module_name(path, root)
        sources[name] = (path, source, tree)

    known: Set[str] = set(sources)
    # Package names are importable prefixes too (``from ..content
    # import artifacts`` names the package first).
    for name in list(known):
        parts = name.split(".")
        for i in range(1, len(parts)):
            known.add(".".join(parts[:i]))

    # First pass: modules, classes, functions (no call resolution yet).
    pending: List[Tuple[FunctionInfo, ModuleInfo,
                        Optional[ClassInfo], _FunctionScanner]] = []
    for name, (path, source, tree) in sorted(sources.items()):
        imports, aliases = _scan_imports(tree, name, known)
        toplevel: Set[str] = set()
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                toplevel.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        toplevel.add(target.id)
            elif isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name):
                toplevel.add(stmt.target.id)
        info = ModuleInfo(name=name, path=str(path),
                          posix_path=str(path).replace("\\", "/"),
                          tree=tree, imports=imports,
                          module_aliases=aliases, toplevel=toplevel,
                          pragmas=_collect_pragmas(source))
        graph.modules[name] = info

        def register_function(node, class_info: Optional[ClassInfo]):
            if class_info is not None:
                qualname = f"{name}:{class_info.name}.{node.name}"
            else:
                qualname = f"{name}:{node.name}"
            params = _function_params(node)
            scanner = _FunctionScanner(set(params))
            for stmt in node.body:
                scanner.visit(stmt)
            fn = FunctionInfo(
                qualname=qualname, module=name, name=node.name,
                node=node, params=params, calls=[],
                global_writes=[
                    (g, node) for g in sorted(scanner.global_names
                                              & scanner.assigned)],
                module_subscript_writes=[])
            # Subscript writes to module-level names (not shadowed by
            # params or locals assigned as plain names).
            shadowed = set(params) | scanner.assigned
            for target_name, write_node in scanner.subscript_writes:
                if target_name in toplevel and target_name not in shadowed:
                    fn.module_subscript_writes.append(
                        (target_name, write_node))
            graph.functions[qualname] = fn
            graph._by_name.setdefault(node.name, []).append(qualname)
            if class_info is not None:
                class_info.methods[node.name] = qualname
            pending.append((fn, info, class_info, scanner))

        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
                register_function(stmt, None)
            elif isinstance(stmt, ast.ClassDef):
                fields = tuple(
                    s.target.id for s in stmt.body
                    if isinstance(s, ast.AnnAssign)
                    and isinstance(s.target, ast.Name)
                    and s.target.id != "__slots__")
                bases = tuple(
                    b.attr if isinstance(b, ast.Attribute)
                    else b.id if isinstance(b, ast.Name) else "?"
                    for b in stmt.bases)
                is_dc = any(
                    (d.func.attr if isinstance(d, ast.Call)
                     and isinstance(d.func, ast.Attribute) else
                     d.func.id if isinstance(d, ast.Call)
                     and isinstance(d.func, ast.Name) else
                     d.attr if isinstance(d, ast.Attribute) else
                     d.id if isinstance(d, ast.Name) else "")
                    == "dataclass" for d in stmt.decorator_list)
                class_info = ClassInfo(
                    qualname=f"{name}:{stmt.name}", module=name,
                    name=stmt.name, node=stmt, methods={},
                    fields=fields, bases=bases, is_dataclass=is_dc)
                graph.classes[class_info.qualname] = class_info
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                        register_function(sub, class_info)

    # Second pass: resolve call sites now every symbol is known.
    for fn, module, class_info, scanner in pending:
        for call in scanner.calls:
            raw = _raw_callee(call.func)
            targets = _resolve_call(graph, module, class_info,
                                    call.func)
            fn.calls.append(CallSite(node=call, raw=raw,
                                     targets=tuple(targets)))
    return graph


def _resolve_call(graph: ProjectGraph, module: ModuleInfo,
                  class_info: Optional[ClassInfo],
                  func: ast.expr) -> List[str]:
    """Resolve a callee expression to project function qualnames."""
    # Plain name: local symbol, or from-import of a project symbol.
    if isinstance(func, ast.Name):
        name = func.id
        local = f"{module.name}:{name}"
        if local in graph.functions:
            return [local]
        if local in graph.classes:
            # Constructing a project class dispatches its __init__.
            init = graph.classes[local].methods.get("__init__")
            return [init] if init else []
        ref = module.imports.get(name)
        if ref is not None:
            target_module, symbol = ref
            if symbol:
                qual = f"{target_module}:{symbol}"
                if qual in graph.functions:
                    return [qual]
                if qual in graph.classes:
                    init = graph.classes[qual].methods.get("__init__")
                    return [init] if init else []
        return []
    if not isinstance(func, ast.Attribute):
        return []
    attr = func.attr
    base = func.value
    # self.method(...) -> the enclosing class (plus project bases).
    if isinstance(base, ast.Name) and base.id == "self" \
            and class_info is not None:
        targets: List[str] = []
        stack = [class_info]
        seen: Set[str] = set()
        while stack:
            cls = stack.pop()
            if cls.qualname in seen:
                continue
            seen.add(cls.qualname)
            if attr in cls.methods:
                targets.append(cls.methods[attr])
            for base_name in cls.bases:
                parent = graph.find_class(base_name)
                if parent is not None:
                    stack.append(parent)
        if targets:
            return targets
        # Fall through to CHA if the hierarchy has no such method
        # (mixins resolved at runtime).
    # module_alias.func(...) for project module imports.
    if isinstance(base, ast.Name):
        ref = module.imports.get(base.id)
        if ref is not None and not ref[1]:
            qual = f"{ref[0]}:{attr}"
            if qual in graph.functions:
                return [qual]
            if qual in graph.classes:
                init = graph.classes[qual].methods.get("__init__")
                return [init] if init else []
            return []
    # Anything else: class-hierarchy-analysis style name matching.
    return list(graph._by_name.get(attr, ()))
