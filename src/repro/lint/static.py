"""The static lint pass: file walking, pragmas, allowlist filtering.

The public entry points are :func:`lint_source` (one module from a
string), :func:`lint_file` and :func:`lint_paths` (files and directory
trees).  All of them return sorted :class:`~repro.lint.findings.Finding`
lists, already filtered through the configuration's per-module
allowlists and any ``# repro-lint: allow(rule)`` inline pragmas.
"""

from __future__ import annotations

import ast
import pathlib
import re
from typing import Dict, Iterable, List, Sequence, Set, Union

from .config import DEFAULT_CONFIG, LintConfig
from .findings import Finding
from .rules import scan_module

__all__ = ["lint_source", "lint_file", "lint_paths", "LintError"]

#: ``# repro-lint: allow(rule-a, rule-b)`` — waives the named rules (or
#: every rule, with ``*``) on the pragma's line and the line below it.
_PRAGMA = re.compile(r"#\s*repro-lint:\s*allow\(([^)]*)\)")


class LintError(RuntimeError):
    """Raised for unreadable or syntactically invalid input files."""


def _pragma_lines(source: str) -> Dict[int, Set[str]]:
    """Map line numbers to the set of rule ids waived on that line."""
    waived: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(text)
        if match is None:
            continue
        rules = {part.strip() for part in match.group(1).split(",")
                 if part.strip()}
        waived[lineno] = rules
    return waived


def _suppressed(finding: Finding,
                waived: Dict[int, Set[str]]) -> bool:
    for lineno in (finding.line, finding.line - 1):
        rules = waived.get(lineno)
        if rules and (finding.rule in rules or "*" in rules):
            return True
    return False


def lint_source(source: str, path: str = "<string>",
                config: LintConfig = DEFAULT_CONFIG) -> List[Finding]:
    """Lint one module given as source text."""
    posix_path = path.replace("\\", "/")
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintError(f"{path}: {exc}") from exc
    waived = _pragma_lines(source)
    findings = [
        f for f in scan_module(tree, path, posix_path, config)
        if not config.rule_allowed(f.rule, posix_path)
        and not _suppressed(f, waived)
    ]
    return sorted(findings, key=lambda f: (f.line, f.col, f.rule))


def lint_file(path: Union[str, pathlib.Path],
              config: LintConfig = DEFAULT_CONFIG) -> List[Finding]:
    """Lint one ``.py`` file."""
    path = pathlib.Path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"cannot read {path}: {exc}") from exc
    return lint_source(source, str(path), config)


def _iter_python_files(
        paths: Iterable[Union[str, pathlib.Path]]) -> List[pathlib.Path]:
    files: List[pathlib.Path] = []
    for entry in paths:
        entry = pathlib.Path(entry)
        if entry.is_dir():
            files.extend(sorted(entry.rglob("*.py")))
        elif entry.suffix == ".py" or entry.is_file():
            files.append(entry)
        else:
            raise LintError(f"no such file or directory: {entry}")
    return files


def lint_paths(paths: Sequence[Union[str, pathlib.Path]],
               config: LintConfig = DEFAULT_CONFIG) -> List[Finding]:
    """Lint files and directory trees; directories are walked for .py."""
    findings: List[Finding] = []
    for file in _iter_python_files(paths):
        findings.extend(lint_file(file, config))
    return sorted(findings,
                  key=lambda f: (f.path, f.line, f.col, f.rule))
