"""Structured lint findings and their text / JSON renderings.

A :class:`Finding` is one rule violation at one source location.  The
linter's contract with ``scripts/check.sh`` is exit-code based, but the
records themselves are structured so tooling (editors, CI annotators)
can consume ``--json`` output without scraping text.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, Optional, Sequence

__all__ = ["Finding", "format_text", "format_json", "finding_sort_key"]


def finding_sort_key(finding: "Finding"):
    """The one canonical ordering: ``(path, line, col, rule)``.

    Every rendering (text, JSON, baselines) sorts with this key so
    output order is deterministic and diffs stay minimal.
    """
    return (finding.path, finding.line, finding.col, finding.rule)


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    path:
        File the finding is in (as given to the linter).
    line / col:
        1-based line and 0-based column of the offending node.
    rule:
        Stable kebab-case rule identifier (e.g. ``wall-clock``).
    message:
        What is wrong, concretely ("call to time.time()").
    hint:
        How to fix it ("inject a clock, or take the simulator's
        ``sim.now``").
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    hint: str

    @property
    def finding_id(self) -> str:
        """Stable 12-hex-digit identity for baselines.

        Hashes ``path|rule|message`` only — *not* the line number — so
        a finding keeps its id when unrelated edits shift the file and
        committed baselines diff cleanly.
        """
        posix = self.path.replace("\\", "/")
        if posix.startswith("./"):
            posix = posix[2:]
        digest = hashlib.sha256(
            f"{posix}|{self.rule}|{self.message}".encode("utf-8"))
        return digest.hexdigest()[:12]

    def to_dict(self) -> Dict[str, Any]:
        """The finding as a JSON-serializable dict (id included)."""
        payload = dataclasses.asdict(self)
        payload["id"] = self.finding_id
        return payload

    def format(self) -> str:
        """One ``path:line:col: [rule] message`` text line."""
        return (f"{self.path}:{self.line}:{self.col}: [{self.rule}] "
                f"{self.message} (fix: {self.hint})")


def format_text(findings: Sequence[Finding]) -> str:
    """Render findings as one text line each, sorted by location."""
    ordered = sorted(findings, key=finding_sort_key)
    return "\n".join(f.format() for f in ordered)


def format_json(findings: Sequence[Finding],
                extra: Optional[Dict[str, Any]] = None) -> str:
    """Render findings (plus optional ``extra`` payload) as JSON."""
    ordered = sorted(findings, key=finding_sort_key)
    payload: Dict[str, Any] = {
        "findings": [f.to_dict() for f in ordered],
        "count": len(ordered),
        "clean": not ordered,
    }
    if extra:
        payload.update(extra)
    return json.dumps(payload, indent=2, sort_keys=True)
