"""Flow-aware whole-program passes over the project graph.

Three invariants keep the reproduction's numbers trustworthy, and none
of them is visible one file at a time:

* **Cache-key completeness** — every run-affecting parameter must be
  represented in :class:`ExperimentSpec`'s canonical cache key, or a
  stale cached result will silently stand in for a different
  experiment.  The pass reads the spec module's declared
  ``CACHE_KEY_FIELDS``, checks every spec dataclass field against it,
  and taint-traces ``run_experiment``'s parameters to the configuration
  sinks (``TcpConfig``, the transports, fault plans, the fast-forward
  toggle) to catch run-affecting parameters that never pass through a
  keyed spec field at all.
* **RNG-stream discipline** — every ``random.Random(...)`` must be
  seeded from the experiment seed (possibly offset, like the fault
  injector's ``seed + 7919`` private stream), and no single RNG object
  may be shared between components whose draw sequences must stay
  independent.
* **Pool purity** — code reachable from ``MatrixRunner``'s chunk
  dispatch runs inside worker processes; writes to module-global state
  there diverge between the serial and parallel paths unless the state
  is covered by ``ArtifactStore.store_state`` / ``_pool_initializer``.

Findings reuse the :class:`~repro.lint.findings.Finding` model and the
inline-pragma mechanism.  A JSON **baseline** file makes the passes
adoptable incrementally: baselined findings are suppressed, and a
baseline entry that no longer fires becomes a ``stale-baseline``
finding so the file cannot rot.
"""

from __future__ import annotations

import ast
import dataclasses
import json
import pathlib
from typing import (Dict, List, Mapping, Optional, Sequence, Set,
                    Tuple, Union)

from .findings import Finding
from .graph import FunctionInfo, ProjectGraph, build_graph

__all__ = ["DEEP_RULES", "DeepConfig", "DEFAULT_DEEP_CONFIG",
           "DeepError", "run_deep", "load_baseline", "apply_baseline",
           "write_baseline"]

#: Every deep rule, with a one-line description (the static per-file
#: rules live in :data:`repro.lint.config.ALL_RULES`).
DEEP_RULES: Dict[str, str] = {
    "cache-key-missing": "ExperimentSpec field absent from the "
                         "canonical cache key (CACHE_KEY_FIELDS)",
    "cache-key-stale": "CACHE_KEY_FIELDS entry that matches no spec "
                       "field",
    "cache-key-unkeyed-param": "run-affecting run_experiment parameter "
                               "not forwarded from a cache-keyed spec "
                               "field",
    "rng-seed-origin": "random.Random(...) whose seed is not derived "
                       "from an experiment seed",
    "rng-shared-stream": "one RNG object passed to several components "
                         "that need independent streams",
    "pool-global-write": "module-global write in code reachable from "
                         "the worker-pool dispatch",
    "stale-baseline": "baseline entry that no longer fires",
}


class DeepError(RuntimeError):
    """Raised for unusable inputs (bad root, malformed baseline)."""


@dataclasses.dataclass(frozen=True)
class DeepConfig:
    """Anchors and waivers for the whole-program passes.

    The defaults describe this repository; the corpus tests point the
    same passes at miniature projects with the same shapes.  Waivers
    are *explicit*: every intentionally key-free knob or sanctioned
    piece of worker-global state is named here with a reason, so the
    exemption list is itself reviewable.
    """

    #: The spec class whose dataclass fields define an experiment.
    spec_class: str = "ExperimentSpec"
    #: Module-level constant in the spec's module naming the cache-key
    #: fields (exported by ``repro.matrix.spec`` for exactly this use).
    cache_key_const: str = "CACHE_KEY_FIELDS"
    #: Additional (spec class, key constant) pairs whose field-level
    #: completeness/staleness is checked the same way.  Subsystems with
    #: their own cacheable unit specs register here; the
    #: parameter-level pass stays tied to :attr:`run_function`.
    extra_spec_classes: Tuple[Tuple[str, str], ...] = (
        ("FleetSpec", "FLEET_CACHE_KEY_FIELDS"),)
    #: The function whose keyword surface is the experiment's identity.
    run_function: str = "run_experiment"
    #: The worker-side function forwarding spec fields into
    #: :attr:`run_function`.
    forward_function: str = "run_unit"
    #: Parameters of :attr:`forward_function` that key the cache at the
    #: work-unit level rather than through a spec field.
    unit_key_params: Tuple[str, ...] = ("seed",)
    #: Entry points of the worker-pool dispatch (purity roots).
    dispatch_entries: Tuple[str, ...] = ("_pool_chunk_entry",
                                        "_run_chunk_supervised",
                                        "_pool_initializer",
                                        "run_unit")
    #: Constructors that consume run configuration (plain-name calls).
    sink_names: Tuple[str, ...] = ("TcpConfig", "TwoHostNetwork",
                                  "FaultInjector", "resolve_fault_plan",
                                  "ModeTuning")
    #: Method names that consume run configuration (attribute calls).
    sink_methods: Tuple[str, ...] = ("client_config", "start_servers",
                                    "create_client", "from_site")
    #: Spec fields that are intentionally not part of the cell key,
    #: mapped to the reason (shown in no finding — documentation).
    spec_field_waivers: Mapping[str, str] = dataclasses.field(
        default_factory=lambda: {
            "seeds": "seeds select work units; the cache keys each "
                     "(cell, seed) unit separately",
        })
    #: Run-function parameters that may stay outside the cache key,
    #: with the reason each is safe.
    param_waivers: Mapping[str, str] = dataclasses.field(
        default_factory=lambda: {
            "site": "custom sites bypass the matrix cache; the default "
                    "site is content-addressed by construction",
            "store": "derived from site; same waiver",
            "flush_timeout": "superseded by client_config, which "
                             "run_unit always passes from the spec's "
                             "keyed client_overrides",
            "explicit_flush": "superseded by client_config (same as "
                              "flush_timeout)",
        })
    #: Identifier fragments that mark a value as seed-derived.
    seed_fragments: Tuple[str, ...] = ("seed",)
    #: Path fragments whose module-global state is sanctioned (the
    #: artifact store propagates it via store_state/_pool_initializer).
    purity_path_waivers: Tuple[str, ...] = ("content/artifacts.py",)
    #: Individual sanctioned globals (covered by the pool warm-up).
    purity_global_waivers: Tuple[str, ...] = ("_DEFAULT_SITE_AND_STORE",)


DEFAULT_DEEP_CONFIG = DeepConfig()


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------

def _names_in(node: ast.AST) -> Set[str]:
    """Every plain identifier referenced in an expression.

    Attribute chains contribute their *base* name (``spec.seed`` →
    ``spec``) so taint on a variable covers uses of its attributes.
    """
    names: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
    return names


def _identifier_components(node: ast.AST) -> Set[str]:
    """Every identifier component (names and attribute parts)."""
    parts: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            parts.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            parts.add(sub.attr)
        elif isinstance(sub, ast.arg):
            parts.add(sub.arg)
    return parts


def _is_seedish(node: ast.AST, config: DeepConfig) -> bool:
    lowered = {part.lower() for part in _identifier_components(node)}
    return any(fragment in part
               for part in lowered
               for fragment in config.seed_fragments)


def _dotted(node: ast.expr, aliases: Mapping[str, str]) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = aliases.get(node.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


def _finding(graph: ProjectGraph, module: str, node: ast.AST,
             rule: str, message: str, hint: str,
             out: List[Finding]) -> None:
    info = graph.modules[module]
    line = getattr(node, "lineno", 1)
    if graph.waived(module, rule, line):
        return
    out.append(Finding(path=info.path, line=line,
                       col=getattr(node, "col_offset", 0),
                       rule=rule, message=message, hint=hint))


# ----------------------------------------------------------------------
# Pass 1: cache-key completeness
# ----------------------------------------------------------------------

def _literal_string_tuple(tree: ast.Module,
                          const: str) -> Optional[Tuple[Tuple[str, ast.AST],
                                                        ...]]:
    """Read ``CONST = ("a", "b", ...)`` from a module body."""
    for stmt in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == const:
                if isinstance(value, (ast.Tuple, ast.List)):
                    entries = []
                    for element in value.elts:
                        if isinstance(element, ast.Constant) \
                                and isinstance(element.value, str):
                            entries.append((element.value, element))
                    return tuple(entries)
                return ()
    return None


def _forwarding_map(fwd: FunctionInfo, run: FunctionInfo,
                    config: DeepConfig) -> Dict[str, str]:
    """How ``run``'s parameters are fed inside ``fwd``'s call to it.

    Maps each forwarded parameter name to:

    * ``"field:X"`` — a plain ``spec.X`` attribute read;
    * ``"spec-derived"`` — any other expression involving the spec
      parameter (e.g. ``spec.client_config()``);
    * ``"unit-key"`` — one of :attr:`DeepConfig.unit_key_params`;
    * ``"opaque"`` — anything else.
    """
    spec_params = set(fwd.params[:1])  # first param is the spec
    mapping: Dict[str, str] = {}
    for call in fwd.calls:
        if run.qualname not in call.targets \
                and call.raw.split(".")[-1] != run.name:
            continue
        node = call.node

        def classify(value: ast.expr) -> str:
            if isinstance(value, ast.Attribute) \
                    and isinstance(value.value, ast.Name) \
                    and value.value.id in spec_params:
                return f"field:{value.attr}"
            names = _names_in(value)
            if names & spec_params:
                return "spec-derived"
            if names & set(config.unit_key_params):
                return "unit-key"
            return "opaque"

        for position, arg in enumerate(node.args):
            if position < len(run.params):
                mapping[run.params[position]] = classify(arg)
        for keyword in node.keywords:
            if keyword.arg is not None:
                mapping[keyword.arg] = classify(keyword.value)
    return mapping


def _run_affecting_params(run: FunctionInfo,
                          config: DeepConfig
                          ) -> Dict[str, Tuple[str, ast.AST]]:
    """Parameters of ``run`` that flow into a configuration sink.

    A two-round taint propagation over the body's assignments (enough
    for the reassignment chains the runner actually uses), then every
    call whose callee matches the sink lists marks the tainted origins
    found anywhere in the call expression.
    """
    taint: Dict[str, Set[str]] = {p: {p} for p in run.params
                                  if p != "self"}
    assigns = [n for n in ast.walk(run.node)
               if isinstance(n, (ast.Assign, ast.AnnAssign,
                                 ast.AugAssign))]
    assigns.sort(key=lambda n: n.lineno)
    for _ in range(2):
        for node in assigns:
            value = getattr(node, "value", None)
            if value is None:
                continue
            origins: Set[str] = set()
            for name in _names_in(value):
                origins |= taint.get(name, set())
            if not origins:
                continue
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    taint.setdefault(target.id, set()).update(origins)

    affecting: Dict[str, Tuple[str, ast.AST]] = {}
    sink_names = set(config.sink_names)
    sink_methods = set(config.sink_methods)
    for call in run.calls:
        last = call.raw.split(".")[-1]
        plain = "." not in call.raw
        is_sink = (last in sink_names if plain
                   else last in sink_names or last in sink_methods)
        if not is_sink:
            continue
        for name in _names_in(call.node):
            for origin in taint.get(name, ()):
                affecting.setdefault(origin, (call.raw, call.node))
    return affecting


def _spec_fields_pass(graph: ProjectGraph, spec_class: str,
                      cache_key_const: str,
                      waivers: Mapping[str, str],
                      findings: List[Finding]) -> Optional[Set[str]]:
    """Field completeness + staleness for one spec/key-const pair.

    Returns the declared key-field names (for callers that run further
    passes against them), or None when the class or constant is absent.
    """
    spec_cls = graph.find_class(spec_class)
    if spec_cls is None:
        return None
    spec_module = graph.modules[spec_cls.module]
    declared = _literal_string_tuple(spec_module.tree, cache_key_const)
    if declared is None:
        _finding(graph, spec_cls.module, spec_cls.node,
                 "cache-key-missing",
                 f"spec module defines no {cache_key_const}; "
                 "the analyzer cannot verify cache-key completeness",
                 f"export {cache_key_const} as a literal tuple "
                 "of the canonical cache-key field names", findings)
        return None
    key_fields = {name for name, _ in declared}

    # Field-level completeness: every spec field keyed or waived.
    for stmt in spec_cls.node.body:
        if not (isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)):
            continue
        field = stmt.target.id
        if field == "__slots__" or field in key_fields \
                or field in waivers:
            continue
        _finding(graph, spec_cls.module, stmt, "cache-key-missing",
                 f"spec field '{field}' is not in "
                 f"{cache_key_const}: two specs differing only "
                 f"in '{field}' would collide in the result cache",
                 f"add '{field}' to {cache_key_const} (and "
                 "canonical_dict), or waive it in the deep config with "
                 "a reason", findings)

    # Staleness: every key entry a real field.
    spec_fields = set(spec_cls.fields)
    for name, node in declared:
        if name not in spec_fields:
            _finding(graph, spec_cls.module, node, "cache-key-stale",
                     f"{cache_key_const} names '{name}', which "
                     f"is not a field of {spec_class}",
                     "remove the stale entry (renamed or deleted "
                     "field?)", findings)
    return key_fields


def _cache_key_pass(graph: ProjectGraph,
                    config: DeepConfig) -> List[Finding]:
    findings: List[Finding] = []
    # Secondary spec classes (fleet populations, future subsystems) get
    # the field-level checks; the parameter-level pass below is tied to
    # run_experiment's surface and stays primary-only.
    for spec_class, cache_key_const in config.extra_spec_classes:
        _spec_fields_pass(graph, spec_class, cache_key_const, {},
                          findings)
    key_fields = _spec_fields_pass(graph, config.spec_class,
                                   config.cache_key_const,
                                   config.spec_field_waivers, findings)
    if key_fields is None:
        return findings

    # Parameter-level completeness: run-affecting run_experiment
    # parameters must arrive through a keyed spec field.
    run_candidates = [f for f in graph.functions_named(
        config.run_function) if "." not in f.qualname.split(":")[1]]
    fwd_candidates = [f for f in graph.functions_named(
        config.forward_function) if "." not in f.qualname.split(":")[1]]
    if not run_candidates or not fwd_candidates:
        return findings
    run = run_candidates[0]
    forwarded: Dict[str, str] = {}
    for fwd in fwd_candidates:
        forwarded.update(_forwarding_map(fwd, run, config))
    for param, (sink_raw, _node) in sorted(
            _run_affecting_params(run, config).items()):
        if param in config.param_waivers:
            continue
        origin = forwarded.get(param)
        if origin in ("spec-derived", "unit-key"):
            continue
        if origin is not None and origin.startswith("field:"):
            field = origin.split(":", 1)[1]
            if field in key_fields \
                    or field in config.spec_field_waivers:
                continue
            message = (f"parameter '{param}' of {run.name}() is "
                       f"forwarded from spec field '{field}', which is "
                       f"not in {config.cache_key_const}")
        elif origin is None:
            message = (f"run-affecting parameter '{param}' of "
                       f"{run.name}() (flows into {sink_raw}) is never "
                       f"forwarded by {config.forward_function}() and "
                       "is not waived")
        else:
            message = (f"parameter '{param}' of {run.name}() is "
                       f"forwarded from an expression the analyzer "
                       f"cannot tie to the spec or the unit seed")
        _finding(graph, run.module, run.node, "cache-key-unkeyed-param",
                 message,
                 "forward it from a cache-keyed spec field, or add a "
                 "waiver with a reason to the deep config", findings)
    return findings


# ----------------------------------------------------------------------
# Pass 2: RNG-stream discipline
# ----------------------------------------------------------------------

def _rng_constructions(fn: FunctionInfo,
                       aliases: Mapping[str, str]) -> List[ast.Call]:
    return [call.node for call in fn.calls
            if _dotted(call.node.func, aliases) == "random.Random"]


def _caller_seed_exprs(graph: ProjectGraph, fn: FunctionInfo,
                       param: str) -> List[ast.expr]:
    """Expressions callers pass for ``param`` of ``fn``."""
    position = fn.params.index(param)
    is_method = "." in fn.qualname.split(":", 1)[1]
    exprs: List[ast.expr] = []
    for _caller, call in graph.callers_of(fn.qualname):
        node = call.node
        matched = False
        for keyword in node.keywords:
            if keyword.arg == param:
                exprs.append(keyword.value)
                matched = True
        if matched:
            continue
        # Positional: when the callee is a method reached through an
        # attribute (or a constructor), `self` is not in the call's
        # argument list.
        candidates = {position}
        if is_method and position > 0:
            candidates.add(position - 1)
        for index in sorted(candidates):
            if index < len(node.args):
                exprs.append(node.args[index])
    return exprs


def _rng_pass(graph: ProjectGraph, config: DeepConfig) -> List[Finding]:
    findings: List[Finding] = []
    for qualname in sorted(graph.functions):
        fn = graph.functions[qualname]
        module = graph.modules[fn.module]
        aliases = module.module_aliases
        constructions = _rng_constructions(fn, aliases)

        # -- seed origin ------------------------------------------------
        for node in constructions:
            if not node.args:
                continue    # the per-file unseeded-random rule owns this
            seed_arg = node.args[0]
            if _is_seedish(seed_arg, config):
                continue
            if isinstance(seed_arg, ast.Constant):
                _finding(graph, fn.module, node, "rng-seed-origin",
                         f"random.Random in {fn.name}() is seeded with "
                         "a constant — every experiment draws the same "
                         "stream regardless of its seed",
                         "derive the seed from the experiment seed "
                         "(possibly offset, like the fault injector's "
                         "seed + 7919)", findings)
                continue
            # Interprocedural: a parameter may carry the seed under
            # another name; accept it if every caller passes a
            # seed-derived expression.
            param_names = _names_in(seed_arg) & set(fn.params)
            resolved = False
            if param_names:
                exprs: List[ast.expr] = []
                for param in sorted(param_names):
                    exprs.extend(_caller_seed_exprs(graph, fn, param))
                if exprs and all(_is_seedish(e, config)
                                 for e in exprs):
                    resolved = True
            if not resolved:
                _finding(graph, fn.module, node, "rng-seed-origin",
                         f"random.Random in {fn.name}() has a seed the "
                         "analyzer cannot trace to an experiment seed",
                         "thread the experiment seed through (name it "
                         "*seed*, or make every caller pass a "
                         "seed-derived value)", findings)

        # -- shared streams ---------------------------------------------
        rng_vars: Set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) \
                    and isinstance(node.value, ast.Call) \
                    and _dotted(node.value.func,
                                aliases) == "random.Random":
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        rng_vars.add(target.id)
                    elif isinstance(target, ast.Attribute) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id == "self":
                        rng_vars.add(f"self.{target.attr}")
        if not rng_vars:
            continue

        def rng_args_of(call: ast.Call) -> Set[str]:
            used: Set[str] = set()
            for value in list(call.args) + [k.value
                                            for k in call.keywords]:
                for sub in ast.walk(value):
                    if isinstance(sub, ast.Name) and sub.id in rng_vars:
                        used.add(sub.id)
                    elif isinstance(sub, ast.Attribute) \
                            and isinstance(sub.value, ast.Name) \
                            and sub.value.id == "self" \
                            and f"self.{sub.attr}" in rng_vars:
                        used.add(f"self.{sub.attr}")
            return used

        consumers: Dict[str, List[ast.Call]] = {}
        for call in fn.calls:
            for var in rng_args_of(call.node):
                consumers.setdefault(var, []).append(call.node)
        for var in sorted(consumers):
            calls = consumers[var]
            if len(calls) < 2:
                continue
            _finding(graph, fn.module, calls[1], "rng-shared-stream",
                     f"RNG '{var}' in {fn.name}() is handed to "
                     f"{len(calls)} components — their draw sequences "
                     "interleave instead of staying independent",
                     "give each component a private stream "
                     "(random.Random(seed + offset) per consumer)",
                     findings)
    return findings


# ----------------------------------------------------------------------
# Pass 3: pool purity
# ----------------------------------------------------------------------

def _purity_pass(graph: ProjectGraph,
                 config: DeepConfig) -> List[Finding]:
    findings: List[Finding] = []
    roots: List[str] = []
    for name in config.dispatch_entries:
        roots.extend(fn.qualname for fn in graph.functions_named(name))
    if not roots:
        return findings
    waived_globals = set(config.purity_global_waivers)
    for qualname in sorted(graph.reachable(roots)):
        fn = graph.functions[qualname]
        module = graph.modules[fn.module]
        if any(fragment in module.posix_path
               for fragment in config.purity_path_waivers):
            continue
        for name, node in fn.global_writes:
            if name in waived_globals:
                continue
            _finding(graph, fn.module, node, "pool-global-write",
                     f"{fn.name}() is reachable from the pool dispatch "
                     f"and assigns module-global '{name}' — worker "
                     "state will diverge from the serial path",
                     "move the state into ArtifactStore.store_state / "
                     "_pool_initializer, or pass it explicitly",
                     findings)
        for name, node in fn.module_subscript_writes:
            if name in waived_globals:
                continue
            _finding(graph, fn.module, node, "pool-global-write",
                     f"{fn.name}() is reachable from the pool dispatch "
                     f"and mutates module-level '{name}[...]' — a "
                     "worker-local memo invisible to the parent and "
                     "the serial path",
                     "key the memo through the artifact store, or "
                     "waive it if the memo is pure (same key, same "
                     "value)", findings)
    return findings


# ----------------------------------------------------------------------
# Entry point and baseline plumbing
# ----------------------------------------------------------------------

def run_deep(root: Union[str, pathlib.Path],
             config: DeepConfig = DEFAULT_DEEP_CONFIG) -> List[Finding]:
    """Run all whole-program passes over the tree rooted at ``root``."""
    root = pathlib.Path(root)
    if not root.is_dir():
        raise DeepError(f"deep analysis needs a package directory, "
                        f"got: {root}")
    graph = build_graph(root)
    findings: List[Finding] = []
    findings.extend(_cache_key_pass(graph, config))
    findings.extend(_rng_pass(graph, config))
    findings.extend(_purity_pass(graph, config))
    return sorted(findings,
                  key=lambda f: (f.path, f.line, f.col, f.rule))


def load_baseline(path: Union[str, pathlib.Path]
                  ) -> Dict[str, Dict[str, str]]:
    """Read a baseline file: finding_id -> recorded entry."""
    path = pathlib.Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise DeepError(f"cannot read baseline {path}: {exc}") from exc
    except ValueError as exc:
        raise DeepError(f"baseline {path} is not valid JSON: "
                        f"{exc}") from exc
    entries = payload.get("findings") if isinstance(payload, dict) \
        else None
    if not isinstance(entries, list):
        raise DeepError(f"baseline {path} must be an object with a "
                        "'findings' list")
    baseline: Dict[str, Dict[str, str]] = {}
    for entry in entries:
        if not isinstance(entry, dict) or "id" not in entry:
            raise DeepError(f"baseline {path}: every finding needs an "
                            "'id'")
        baseline[str(entry["id"])] = entry
    return baseline


def apply_baseline(findings: Sequence[Finding],
                   baseline: Mapping[str, Mapping[str, str]],
                   baseline_path: Union[str, pathlib.Path]
                   ) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into (kept, stale-baseline findings).

    Findings whose :attr:`~repro.lint.findings.Finding.finding_id`
    appears in the baseline are suppressed.  Baseline ids that match
    nothing are reported as ``stale-baseline`` findings — a rotted
    baseline would otherwise quietly grow blind spots.
    """
    fired = {f.finding_id for f in findings}
    kept = [f for f in findings if f.finding_id not in baseline]
    stale: List[Finding] = []
    for finding_id in sorted(set(baseline) - fired):
        entry = baseline[finding_id]
        where = entry.get("path", "?")
        rule = entry.get("rule", "?")
        stale.append(Finding(
            path=str(baseline_path), line=1, col=0,
            rule="stale-baseline",
            message=f"baseline entry {finding_id} ({rule} at {where}) "
                    "no longer fires",
            hint="refresh the baseline: python -m repro lint --deep "
                 f"--write-baseline {baseline_path}"))
    return kept, stale


def write_baseline(findings: Sequence[Finding],
                   path: Union[str, pathlib.Path]) -> None:
    """Write the current deep findings as a baseline file."""
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.col,
                                              f.rule))
    payload = {
        "version": 1,
        "comment": "Accepted whole-program lint findings.  Entries "
                   "are matched by id (hash of path|rule|message, "
                   "line-independent); remove entries as the findings "
                   "are fixed — stale entries fail the lint.",
        "findings": [
            {"id": f.finding_id, "rule": f.rule, "path": f.path,
             "line": f.line, "message": f.message}
            for f in ordered
        ],
    }
    pathlib.Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
