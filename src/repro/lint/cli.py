"""The ``python -m repro lint`` verb.

Layer 1 (always): statically lint the given paths (default:
``src/repro``) with the per-file determinism rules.  Layer 2 (opt-in
via ``--deep``): build the whole-program graph and run the flow-aware
passes of :mod:`repro.lint.deep` (cache-key completeness, RNG-stream
discipline, pool purity), optionally filtered through a committed
``--baseline`` file.  Layer 3 (opt-in via ``--sanitize-traces``):
replay captured trace files through the TCP protocol sanitizer; with
no file arguments the golden fixtures under ``tests/simnet/fixtures/``
are validated.

Exit codes: 0 clean, 1 findings or invariant violations, 2 usage or
configuration error (bad path, unparsable trace, malformed baseline).
``--json`` emits one machine-readable document combining all layers;
findings are always sorted by ``(path, line, col, rule)`` and carry a
stable ``id`` so baselines diff cleanly.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import sys
from typing import Dict, List

from .config import ALL_RULES, DEFAULT_CONFIG
from .deep import (DEEP_RULES, DEFAULT_DEEP_CONFIG, DeepError,
                   apply_baseline, load_baseline, run_deep,
                   write_baseline)
from .findings import Finding, finding_sort_key, format_text
from .sanitizer import (ModeTraceRules, SanitizerConfig, Violation,
                        validate_trace_text)
from .static import LintError, lint_paths

__all__ = ["add_lint_parser", "run_lint", "DEFAULT_LINT_PATH",
           "GOLDEN_TRACE_DIR"]

#: What ``python -m repro lint`` lints when no paths are given.
DEFAULT_LINT_PATH = "src/repro"

#: Where the golden WAN fixtures live, relative to the repo root.
GOLDEN_TRACE_DIR = "tests/simnet/fixtures"


def add_lint_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``lint`` subcommand on the CLI's subparsers."""
    rules = ", ".join(sorted(ALL_RULES))
    deep_rules = ", ".join(sorted(DEEP_RULES))
    lint = sub.add_parser(
        "lint",
        help="determinism linter + whole-program analyzer + TCP trace "
             "sanitizer",
        description=f"Static determinism rules ({rules}), the "
                    f"whole-program deep passes ({deep_rules}), and "
                    "the runtime TCP protocol sanitizer over captured "
                    "traces.")
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help=f"files/directories to lint (default: "
                           f"{DEFAULT_LINT_PATH})")
    lint.add_argument("--json", action="store_true",
                      help="emit findings and violations as JSON")
    lint.add_argument("--deep", action="store_true",
                      help="also run the whole-program passes "
                           "(cache-key completeness, RNG-stream "
                           "discipline, pool purity) over the first "
                           "lint path")
    lint.add_argument("--baseline", metavar="PATH", default=None,
                      help="JSON baseline of accepted deep findings; "
                           "baselined ids are suppressed, entries that "
                           "no longer fire are reported as "
                           "stale-baseline findings")
    lint.add_argument("--write-baseline", metavar="PATH", default=None,
                      help="write the current deep findings to PATH "
                           "as a fresh baseline and exit 0")
    lint.add_argument("--sanitize-traces", nargs="*", metavar="TRACE",
                      default=None,
                      help="also validate trace files against the TCP "
                           "invariants (default: the golden WAN "
                           f"fixtures under {GOLDEN_TRACE_DIR}/)")
    lint.add_argument("--hot-path", action="append", default=[],
                      metavar="FRAGMENT",
                      help="additional path fragment treated as a "
                           "__slots__ hot-path module")
    lint.set_defaults(fn=run_lint)


def _trace_files(args: argparse.Namespace) -> List[pathlib.Path]:
    if args.sanitize_traces:
        return [pathlib.Path(p) for p in args.sanitize_traces]
    fixture_dir = pathlib.Path(GOLDEN_TRACE_DIR)
    traces = sorted(fixture_dir.glob("*.trace"))
    if not traces:
        raise LintError(f"no *.trace files under {fixture_dir} "
                        "(run from the repository root, or pass "
                        "trace paths explicitly)")
    return traces


def _config_for_fixture(name: str) -> SanitizerConfig:
    """Pick the sanitizer config a committed fixture validates under.

    ``lossy_*`` fixtures were captured under fault injection: RSTs and
    retransmissions are legitimate there, so they validate under the
    relaxed config (the sequence/handshake/Nagle invariants still
    apply).  Fixtures of the MUX and sharded modes additionally enforce
    those modes' connection-shape rules — mirroring what their
    :class:`~repro.core.transport.Transport` strategies declare.
    """
    if name.startswith("lossy_"):
        return SanitizerConfig.for_faulty_run()
    if "sharded" in name:
        # Eight parallel connections share the bottleneck: derive the
        # transit bound the runner would use for this cell, then pin
        # the sharded transport's port/handshake contract.
        from ..simnet.link import ENVIRONMENTS
        config = SanitizerConfig.for_run(
            environment=ENVIRONMENTS["WAN"], client_nodelay=True,
            server_nodelay=True, client_delack=0.200,
            server_delack=0.050, max_parallel=8)
        return dataclasses.replace(config, mode_rules=ModeTraceRules(
            required_ports=(80, 81, 82, 83),
            max_handshakes_per_port=2))
    if "mux" in name:
        return SanitizerConfig(mode_rules=ModeTraceRules(
            min_connections=1, max_connections=1))
    return SanitizerConfig()


def run_lint(args: argparse.Namespace) -> int:
    config = DEFAULT_CONFIG
    if args.hot_path:
        config = config.with_hot_paths(args.hot_path)
    paths = args.paths or [DEFAULT_LINT_PATH]
    try:
        findings = lint_paths(paths, config)
    except LintError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2

    deep_wanted = (args.deep or args.baseline is not None
                   or args.write_baseline is not None)
    if deep_wanted:
        try:
            deep_findings = run_deep(paths[0], DEFAULT_DEEP_CONFIG)
            if args.write_baseline is not None:
                write_baseline(deep_findings, args.write_baseline)
                print(f"lint: wrote {len(deep_findings)} deep "
                      f"finding(s) to {args.write_baseline}",
                      file=sys.stderr)
                return 0
            if args.baseline is not None:
                baseline = load_baseline(args.baseline)
                deep_findings, stale = apply_baseline(
                    deep_findings, baseline, args.baseline)
                deep_findings.extend(stale)
        except DeepError as exc:
            print(f"lint: {exc}", file=sys.stderr)
            return 2
        findings = sorted(findings + deep_findings,
                          key=finding_sort_key)

    trace_violations: Dict[str, List[Violation]] = {}
    if args.sanitize_traces is not None:
        try:
            trace_files = _trace_files(args)
            for trace in trace_files:
                text = trace.read_text(encoding="utf-8")
                trace_violations[str(trace)] = validate_trace_text(
                    text, _config_for_fixture(trace.name))
        except (OSError, ValueError, LintError) as exc:
            print(f"lint: {exc}", file=sys.stderr)
            return 2

    violation_count = sum(len(v) for v in trace_violations.values())
    dirty = bool(findings) or violation_count > 0

    if args.json:
        payload = {
            "findings": [f.to_dict() for f in findings],
            "traces": {
                path: [v.to_dict() for v in violations]
                for path, violations in sorted(trace_violations.items())
            },
            "finding_count": len(findings),
            "violation_count": violation_count,
            "clean": not dirty,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 1 if dirty else 0

    if findings:
        print(format_text(findings))
    for path, violations in sorted(trace_violations.items()):
        status = "clean" if not violations else \
            f"{len(violations)} violation(s)"
        print(f"trace {path}: {status}")
        for violation in violations:
            print(f"  {violation.format()}")
    summary = (f"lint: {len(findings)} finding(s), "
               f"{violation_count} trace violation(s)")
    print(summary if dirty else
          f"{summary} — clean", file=sys.stderr)
    return 1 if dirty else 0
