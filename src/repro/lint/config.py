"""Linter configuration: rule selection, allowlists, hot-path modules.

Two suppression mechanisms exist, deliberately narrow:

* **per-module allowlists** — a rule id mapped to path fragments; any
  file whose (posix-normalized) path contains one of the fragments is
  exempt from that rule.  This is for *designed* exemptions: the perf
  harness and matrix runner read the real clock because measuring wall
  time is their job.
* **inline pragmas** — ``# repro-lint: allow(rule-id)`` on the offending
  line (or the line directly above) waives named rules for that line
  only, for the rare spot where the construct is deliberate.

The ``slots-hot-path`` rule inverts the pattern: it applies *only* to
designated hot-path modules (the per-packet / per-event object code in
``simnet``), listed in :attr:`LintConfig.hot_path_modules`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Mapping, Sequence, Tuple

__all__ = ["LintConfig", "DEFAULT_CONFIG", "ALL_RULES"]

#: Every rule the linter knows, with a one-line description.
ALL_RULES: Dict[str, str] = {
    "wall-clock": "wall-clock read (time.time / datetime.now / ...) in "
                  "simulation code",
    "unseeded-random": "module-level random.* call or unseeded "
                       "random.Random()",
    "entropy-source": "OS entropy source (os.urandom / uuid4 / secrets)",
    "set-iteration": "iteration over a set (or dict.keys()) whose order "
                     "feeds deterministic output",
    "float-clock-compare": "float == / != comparison on a simulated-"
                           "clock value",
    "mutable-default": "mutable default argument",
    "slots-hot-path": "class without __slots__ in a designated hot-path "
                      "module",
    "pool-outside-matrix": "multiprocessing.Pool constructed outside "
                           "repro.matrix (worker pools must go through "
                           "MatrixRunner's managed, warmed pool)",
}


@dataclasses.dataclass(frozen=True)
class LintConfig:
    """Configuration for one lint run."""

    #: Rule ids to run (default: all known rules).
    rules: FrozenSet[str] = frozenset(ALL_RULES)
    #: rule id -> path fragments exempt from that rule.
    allowlist: Mapping[str, Tuple[str, ...]] = dataclasses.field(
        default_factory=dict)
    #: Path fragments naming modules where ``slots-hot-path`` applies.
    hot_path_modules: Tuple[str, ...] = ()

    def with_hot_paths(self, extra: Sequence[str]) -> "LintConfig":
        """A copy with additional hot-path module fragments."""
        return dataclasses.replace(
            self, hot_path_modules=self.hot_path_modules + tuple(extra))

    def rule_allowed(self, rule: str, posix_path: str) -> bool:
        """True when ``posix_path`` is allowlisted for ``rule``."""
        return any(fragment in posix_path
                   for fragment in self.allowlist.get(rule, ()))

    def is_hot_path(self, posix_path: str) -> bool:
        """True when the ``slots-hot-path`` rule applies to this file."""
        return any(fragment in posix_path
                   for fragment in self.hot_path_modules)


#: The repository's own configuration: the perf harness and the matrix
#: runner measure wall time by design; the per-packet/per-event object
#: modules of the simulator are the designated ``__slots__`` hot path.
DEFAULT_CONFIG = LintConfig(
    allowlist={
        # Wall-clock reads are these modules' purpose: they time real
        # work (benchmark repetitions, per-cell wall time).  Everything
        # else — including repro.realnet since its clock became
        # injectable — must go through an injected clock or sim.now.
        "wall-clock": ("repro/perf.py", "repro/matrix/runner.py",
                       # The supervisor's whole job is wall-clock
                       # deadlines on real worker processes.
                       "repro/matrix/supervisor.py"),
        # The one sanctioned pool: MatrixRunner's persistent, warmed,
        # chunk-dispatching pool.  Ad-hoc pools elsewhere would skip
        # the artifact-store propagation and site warm-up that keep
        # parallel runs fast and bit-identical.
        "pool-outside-matrix": ("repro/matrix/runner.py",),
    },
    hot_path_modules=(
        "simnet/engine.py",
        # The fast-forward driver replays the per-segment arithmetic
        # for whole bulk-transfer windows per call.
        "simnet/fastforward.py",
        "simnet/packet.py",
        "simnet/tcp.py",
        "simnet/trace.py",
        # The MUX frame codec runs once per TCP delivery in MUX modes.
        "http/framing.py",
        # The fault injector runs once per delivered segment.
        "faults/injector.py",
        # The artifact store sits on every encode path; the runner's
        # pool machinery is touched once per dispatch chunk.
        "content/artifacts.py",
        "matrix/runner.py",
        # The supervisor polls in-flight chunks at 20 Hz; the journal
        # is written once per resolved unit.
        "matrix/supervisor.py",
        "matrix/journal.py",
        # The MUX client's per-stream/per-connection state is allocated
        # on every stream open and touched on every frame delivery.
        "client/mux.py",
        # The real-socket pair runs per-connection threads; __slots__
        # is the same typo firewall there (a misspelled stats-counter
        # write must raise, not silently create fresh state).
        "realnet/client.py",
        "realnet/server.py",
        # The fleet engine's per-session state is allocated once per
        # user and touched on every page completion; spec compilation
        # and share aggregation run once per cohort unit.
        "fleet/spec.py",
        "fleet/engine.py",
        "fleet/runner.py",
    ),
)
