"""AST rules for the determinism linter.

Each rule targets a construct that can silently break the simulator's
bit-identical-reproducibility guarantee (the property the golden-trace
tests and PR 2's speedup validation rest on):

``wall-clock``
    ``time.time()`` and friends leak the host's clock into simulated
    behaviour.  Simulation code must use ``sim.now`` or an injected
    clock.
``unseeded-random``
    Module-level ``random.*`` draws from interpreter-global state that
    any import can perturb; ``random.Random()`` without a seed draws
    from the OS.  Experiments must thread a seeded ``random.Random``.
``entropy-source``
    ``os.urandom`` / ``uuid.uuid4`` / ``secrets`` are nondeterministic
    by definition.
``set-iteration``
    Iterating a set (hash order is salted per process for strings)
    feeds nondeterministic order into schedulers or trace output;
    ``dict.keys()`` is insertion-ordered but still signals
    order-sensitive code better written as ``sorted(...)`` or direct
    dict iteration.
``float-clock-compare``
    ``==`` / ``!=`` on simulated-clock floats (``sim.now``, timer
    deadlines) is exact-representation roulette; compare with
    inequalities or an epsilon.
``mutable-default``
    The classic shared-state bug: one list/dict/set born at def time,
    mutated across every call.
``slots-hot-path``
    Classes in designated per-packet / per-event modules must declare
    ``__slots__`` — both a memory/speed guarantee (PR 2) and a typo
    firewall: a misspelled attribute write raises instead of silently
    creating fresh state.
``pool-outside-matrix``
    ``multiprocessing.Pool`` constructed anywhere but
    ``repro.matrix.runner``.  MatrixRunner's pool is persistent, warmed
    (site prebuilt, artifact-store state propagated) and chunked; an
    ad-hoc pool silently loses all three and re-pays site synthesis in
    every worker.

Rules are heuristic where full type inference would be needed; each one
is precise enough that the repository itself lints clean without blanket
suppressions (see ``tests/lint/test_static.py::test_src_lints_clean``).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from .config import LintConfig
from .findings import Finding

__all__ = ["scan_module"]

#: Dotted call targets that read the host's wall clock.
_WALL_CLOCK_CALLS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

#: Dotted call targets that draw OS entropy.
_ENTROPY_CALLS = {
    "os.urandom", "uuid.uuid4", "random.SystemRandom",
    "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
    "secrets.randbelow", "secrets.choice", "secrets.randbits",
}

#: Worker-pool constructors that bypass MatrixRunner's managed pool.
_POOL_CALLS = {"multiprocessing.Pool", "multiprocessing.pool.Pool"}

#: Module-level ``random`` functions (global, import-order-fragile RNG).
_MODULE_RANDOM_CALLS = {
    "random.random", "random.randint", "random.randrange",
    "random.choice", "random.choices", "random.sample", "random.shuffle",
    "random.uniform", "random.gauss", "random.normalvariate",
    "random.expovariate", "random.betavariate", "random.seed",
    "random.getrandbits", "random.triangular", "random.vonmisesvariate",
}

#: Attribute / name spellings treated as simulated-clock values.
_CLOCK_ATTRS = {"now", "deadline", "delivered_at"}
_CLOCK_NAMES = {"now", "deadline"}

#: Base classes that exempt a class from the ``__slots__`` rule.
_SLOTS_EXEMPT_BASES = {
    "Protocol", "NamedTuple", "TypedDict", "Enum", "IntEnum", "IntFlag",
    "ABC",
}


def _collect_import_aliases(tree: ast.AST) -> Dict[str, str]:
    """Map local names to the dotted import origin they refer to.

    ``import time``           -> {"time": "time"}
    ``import datetime as dt`` -> {"dt": "datetime"}
    ``from time import time`` -> {"time": "time.time"}
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.split(".")[0]
                aliases[local] = name.name if name.asname else local
        elif isinstance(node, ast.ImportFrom) and node.module \
                and node.level == 0:
            for name in node.names:
                if name.name == "*":
                    continue
                local = name.asname or name.name
                aliases[local] = f"{node.module}.{name.name}"
    return aliases


def _dotted_name(node: ast.expr,
                 aliases: Dict[str, str]) -> Optional[str]:
    """Resolve an expression to its imported dotted name, if any."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = aliases.get(node.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


def _is_exception_base(base: ast.expr) -> bool:
    name = base.attr if isinstance(base, ast.Attribute) else (
        base.id if isinstance(base, ast.Name) else "")
    return (name.endswith("Error") or name.endswith("Exception")
            or name in ("BaseException", "Warning"))


def _has_slots(body: List[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) \
                        and target.id == "__slots__":
                    return True
        elif isinstance(stmt, ast.AnnAssign) \
                and isinstance(stmt.target, ast.Name) \
                and stmt.target.id == "__slots__":
            return True
    return False


def _decorator_name(node: ast.expr) -> str:
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


class _DeterminismVisitor(ast.NodeVisitor):
    """One pass over a module AST, emitting raw findings."""

    def __init__(self, path: str, posix_path: str,
                 config: LintConfig,
                 aliases: Dict[str, str]) -> None:
        self.path = path
        self.posix_path = posix_path
        self.config = config
        self.aliases = aliases
        self.findings: List[Finding] = []

    # -- plumbing ------------------------------------------------------
    def _emit(self, node: ast.AST, rule: str, message: str,
              hint: str) -> None:
        if rule not in self.config.rules:
            return
        self.findings.append(Finding(
            path=self.path, line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0), rule=rule,
            message=message, hint=hint))

    # -- calls: clocks, entropy, global random -------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = _dotted_name(node.func, self.aliases)
        if name is not None:
            if name in _WALL_CLOCK_CALLS:
                self._emit(node, "wall-clock",
                           f"call to {name}() reads the host clock",
                           "use sim.now, or accept an injectable clock "
                           "callable")
            elif name in _ENTROPY_CALLS:
                self._emit(node, "entropy-source",
                           f"call to {name}() draws OS entropy",
                           "derive values from the experiment seed via "
                           "random.Random(seed)")
            elif name in _MODULE_RANDOM_CALLS:
                self._emit(node, "unseeded-random",
                           f"module-level {name}() uses the global RNG",
                           "thread a seeded random.Random instance "
                           "through instead")
            elif name == "random.Random" and not node.args \
                    and not node.keywords:
                self._emit(node, "unseeded-random",
                           "random.Random() without a seed draws from "
                           "the OS",
                           "pass an explicit seed: random.Random(seed)")
            elif name in _POOL_CALLS:
                self._emit(node, "pool-outside-matrix",
                           f"{name}() constructed outside repro.matrix",
                           "use repro.matrix.MatrixRunner(jobs=N) — its "
                           "pool is persistent, site-warmed and "
                           "artifact-store-aware")
        elif isinstance(node.func, ast.Attribute) \
                and node.func.attr == "Pool" \
                and isinstance(node.func.value, ast.Call) \
                and _dotted_name(node.func.value.func, self.aliases) \
                == "multiprocessing.get_context":
            self._emit(node, "pool-outside-matrix",
                       "multiprocessing.get_context(...).Pool() "
                       "constructed outside repro.matrix",
                       "use repro.matrix.MatrixRunner(jobs=N) — its "
                       "pool is persistent, site-warmed and "
                       "artifact-store-aware")
        self.generic_visit(node)

    # -- iteration order -----------------------------------------------
    def _check_iter(self, iter_node: ast.expr) -> None:
        if isinstance(iter_node, ast.Set):
            self._emit(iter_node, "set-iteration",
                       "iteration over a set literal has salted hash "
                       "order",
                       "iterate a tuple/list, or wrap in sorted(...)")
        elif isinstance(iter_node, ast.Call):
            func = iter_node.func
            if isinstance(func, ast.Name) \
                    and func.id in ("set", "frozenset"):
                self._emit(iter_node, "set-iteration",
                           f"iteration over {func.id}(...) has salted "
                           "hash order",
                           "wrap in sorted(...) before iterating")
            elif isinstance(func, ast.Attribute) and func.attr == "keys" \
                    and not iter_node.args:
                self._emit(iter_node, "set-iteration",
                           "iteration over .keys() — order-sensitive "
                           "code should say so",
                           "iterate the dict directly, or wrap in "
                           "sorted(...)")

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    # -- float clock comparisons ---------------------------------------
    @staticmethod
    def _is_clock_operand(node: ast.expr) -> bool:
        if isinstance(node, ast.Attribute):
            return node.attr in _CLOCK_ATTRS
        if isinstance(node, ast.Name):
            return node.id in _CLOCK_NAMES
        return False

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if isinstance(op, (ast.Eq, ast.NotEq)) \
                    and (self._is_clock_operand(left)
                         or self._is_clock_operand(right)):
                self._emit(node, "float-clock-compare",
                           "== / != on a simulated-clock float",
                           "compare with <= / >= or an explicit epsilon")
                break
        self.generic_visit(node)

    # -- mutable defaults ----------------------------------------------
    def _check_defaults(self, node: ast.arguments) -> None:
        for default in list(node.defaults) + [d for d in node.kw_defaults
                                              if d is not None]:
            bad = isinstance(default, (ast.List, ast.Dict, ast.Set,
                                       ast.ListComp, ast.DictComp,
                                       ast.SetComp))
            if not bad and isinstance(default, ast.Call) \
                    and isinstance(default.func, ast.Name) \
                    and default.func.id in ("list", "dict", "set",
                                            "bytearray"):
                bad = True
            if bad:
                self._emit(default, "mutable-default",
                           "mutable default argument is shared across "
                           "calls",
                           "default to None and create the object in "
                           "the body")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node.args)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self,
                               node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node.args)
        self.generic_visit(node)

    # -- __slots__ in hot-path modules ---------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self.config.is_hot_path(self.posix_path) \
                and not _has_slots(node.body) \
                and not any(_decorator_name(d) == "dataclass"
                            for d in node.decorator_list) \
                and not any(_is_exception_base(b) for b in node.bases) \
                and not any(
                    (b.attr if isinstance(b, ast.Attribute) else
                     b.id if isinstance(b, ast.Name) else "")
                    in _SLOTS_EXEMPT_BASES for b in node.bases):
            self._emit(node, "slots-hot-path",
                       f"class {node.name} in a hot-path module has no "
                       "__slots__",
                       "declare __slots__ (instances are allocated per "
                       "packet/event)")
        self.generic_visit(node)


def scan_module(tree: ast.AST, path: str, posix_path: str,
                config: LintConfig) -> List[Finding]:
    """Run every enabled rule over a parsed module."""
    visitor = _DeterminismVisitor(path, posix_path, config,
                                  _collect_import_aliases(tree))
    visitor.visit(tree)
    return visitor.findings
