"""Runtime TCP protocol sanitizer: trace replay and online checking.

The paper's hardest-won results are *implementation invariants* — the
three-way handshake paid per HTTP/1.0 connection, Nagle's interaction
with small writes, the 200 ms / 50 ms delayed-ACK heartbeats, and the
independent half-close that keeps a pipelined exchange from ending in a
RST.  The simulator implements all of them, but nothing *enforced* them:
a TCP regression would only surface if it happened to perturb a golden
WAN trace.  :class:`TraceValidator` closes that gap by replaying any
captured trace (a :class:`~repro.simnet.trace.PacketRecord` list, raw
``format_trace`` text, or live segments) through a per-flow state
machine asserting:

* **handshake ordering** — a flow starts SYN, SYN+ACK (acking exactly
  the SYN), and carries no payload before the handshake completes;
* **sequence monotonicity** — a direction never sends sequence space it
  has not reached (retransmissions of old data are legal, gaps are not);
* **no ACK of unsent data** — an acknowledgement never exceeds the
  peer's highest transmitted sequence number;
* **no payload after FIN** — once a direction's FIN is on the wire, no
  new sequence space follows it;
* **Nagle compliance** — on a Nagle-enabled direction, never two
  outstanding (unacknowledged) sub-MSS segments;
* **delayed-ACK deadlines** — data is acknowledged within the
  configured heartbeat (200 ms client / 50 ms server) plus a transit
  bound;
* **independent half-close** — every established direction closes with
  an acknowledged FIN, and no RST appears in a clean trace.

The same state machine runs **online** via :class:`LiveSanitizer`, a
link tap enabled with ``run_experiment(..., sanitize=True)`` — the
engine's opt-in sanitizer mode — which raises
:class:`InvariantViolationError` the moment a violating segment is
emitted, with the simulated time and flow in the message.

This module deliberately imports nothing from :mod:`repro.simnet`: it
duck-types segments and links, so trace files can be validated without
constructing a simulator.
"""

from __future__ import annotations

import dataclasses
import math
import re
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..http.framing import (F_CANCEL, F_DATA, F_END_STREAM, F_HEADERS,
                            F_PUSH_PROMISE, F_WINDOW_UPDATE,
                            FRAME_TYPE_NAMES, FramingError, Frame,
                            INITIAL_STREAM_WINDOW, window_increment)

__all__ = ["SanitizerConfig", "ModeTraceRules", "Violation",
           "InvariantViolationError", "TraceValidator",
           "FrameStreamValidator", "LiveSanitizer", "parse_trace_text",
           "validate_trace_text", "validate_records"]


class InvariantViolationError(AssertionError):
    """A TCP protocol invariant was violated (online sanitizer mode)."""


@dataclasses.dataclass(frozen=True)
class Violation:
    """One invariant violation, locatable in the trace."""

    time: float
    flow: str
    rule: str
    message: str

    def format(self) -> str:
        return f"t={self.time:.6f} {self.flow}: [{self.rule}] {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class ModeTraceRules:
    """Per-protocol-mode shape constraints on a clean trace.

    Each :class:`~repro.core.transport.Transport` strategy may describe
    what its traffic must look like at the TCP layer — how many
    connections a clean run opens, which server ports must appear, and
    how many handshakes any one port may absorb.  The rules run in
    :meth:`TraceValidator.finalize`, alongside the teardown checks.
    """

    #: Fewest connections a clean run may open (0 = no floor).
    min_connections: int = 0
    #: Most connections a clean run may open (None = no ceiling).
    max_connections: Optional[int] = None
    #: Server ports that must each receive at least one connection.
    required_ports: Tuple[int, ...] = ()
    #: Ceiling on handshakes any single server port absorbs.
    max_handshakes_per_port: Optional[int] = None


@dataclasses.dataclass(frozen=True)
class SanitizerConfig:
    """Invariant parameters for one validation run.

    The defaults describe the repository's standard WAN cell — the one
    the golden fixtures were captured from: BSD-style 200 ms client and
    Solaris-style 50 ms server delayed-ACK heartbeats, ``TCP_NODELAY``
    on both ends (the paper's recommendation, so the Nagle check is off
    unless a direction is declared Nagle-enabled), and a transit bound
    covering a full receive window queued behind a 1 Mbit/s bottleneck.
    """

    mss: int = 1460
    #: Delayed-ACK heartbeat period of the flow initiator (client).
    client_delack: float = 0.200
    #: Delayed-ACK heartbeat period of the flow responder (server).
    server_delack: float = 0.050
    #: Check the Nagle invariant on client->server traffic.
    nagle_client: bool = False
    #: Check the Nagle invariant on server->client traffic.
    nagle_server: bool = False
    #: Upper bound on send->arrival transit (propagation + worst-case
    #: serialization queueing) used by the delayed-ACK deadline check.
    transit_bound: float = 0.75
    #: Slack for float timestamps.
    epsilon: float = 1e-6
    #: Require every established direction to finish with an acked FIN.
    require_teardown: bool = True
    #: Treat any RST as a violation (clean-trace mode).
    allow_rst: bool = False
    #: Protocol-mode shape constraints (connection/port counts); None
    #: disables them.
    mode_rules: Optional[ModeTraceRules] = None

    @classmethod
    def for_run(cls, *, environment: Any, client_nodelay: bool,
                server_nodelay: bool, client_delack: float,
                server_delack: float,
                max_parallel: int = 1) -> "SanitizerConfig":
        """Derive a config from a live experiment's parameters.

        ``environment`` is a
        :class:`~repro.simnet.link.NetworkEnvironment` (duck-typed).
        The transit bound allows a full 64 KB receive window per
        parallel connection to queue at the bottleneck ahead of a
        segment, so shared-link queueing never trips the delayed-ACK
        deadline check.
        """
        wire_time = (environment.mss + 40) * environment.bits_per_byte \
            / environment.bandwidth_bps
        window_segments = math.ceil(65535 / environment.mss) + 2
        transit = (environment.one_way_delay
                   + window_segments * max(1, max_parallel) * wire_time)
        return cls(mss=environment.mss,
                   client_delack=client_delack,
                   server_delack=server_delack,
                   nagle_client=not client_nodelay,
                   nagle_server=not server_nodelay,
                   transit_bound=1.10 * transit + 0.01)

    @classmethod
    def for_faulty_run(cls, base: Optional["SanitizerConfig"] = None
                       ) -> "SanitizerConfig":
        """Relax ``base`` for traces captured under fault injection.

        Lossy runs legitimately contain RSTs (server aborts, watchdog
        kills), connections torn down without a clean FIN exchange, and
        extra queueing from bursts and bounded reordering; the sequence,
        handshake and Nagle invariants still hold and stay enforced.
        """
        base = base or cls()
        return dataclasses.replace(base, allow_rst=True,
                                   require_teardown=False,
                                   transit_bound=base.transit_bound + 1.0,
                                   mode_rules=None)


class _Direction:
    """Sender-side state for one direction of one flow."""

    __slots__ = ("snd_nxt", "snd_una", "syn_end", "fin_end", "fin_acked",
                 "small_ends", "unacked", "sent_payload")

    def __init__(self) -> None:
        self.snd_nxt = 0          # highest sequence space transmitted
        self.snd_una = 0          # highest ack received from the peer
        self.syn_end: Optional[int] = None
        self.fin_end: Optional[int] = None
        self.fin_acked = False
        #: End-sequences of transmitted sub-MSS payload segments.
        self.small_ends: List[int] = []
        #: (end_seq, send_time) of payload awaiting acknowledgement.
        self.unacked: List[Tuple[int, float]] = []
        self.sent_payload = False


class _Flow:
    """One bidirectional connection, keyed by its endpoint pair."""

    __slots__ = ("initiator", "handshake", "directions", "aborted",
                 "label")

    def __init__(self, label: str) -> None:
        #: (host, port) of the side that sent the first SYN.
        self.initiator: Optional[Tuple[str, int]] = None
        #: 0 = nothing, 1 = SYN seen, 2 = SYN+ACK seen (established).
        self.handshake = 0
        self.directions: Dict[Tuple[str, int], _Direction] = {}
        self.aborted = False
        self.label = label

    def direction(self, endpoint: Tuple[str, int]) -> _Direction:
        state = self.directions.get(endpoint)
        if state is None:
            state = self.directions[endpoint] = _Direction()
        return state


class TraceValidator:
    """Replays segments through the paper's TCP invariants.

    Feed segments in capture order through :meth:`observe` (or the
    :meth:`observe_segment` adapter for live
    :class:`~repro.simnet.packet.Segment` objects), then call
    :meth:`finalize` for the end-of-trace teardown checks.  Violations
    accumulate in :attr:`violations`.
    """

    def __init__(self,
                 config: Optional[SanitizerConfig] = None) -> None:
        self.config = config or SanitizerConfig()
        self.violations: List[Violation] = []
        self._flows: Dict[Tuple[Tuple[str, int], Tuple[str, int]],
                          _Flow] = {}
        self._finalized = False

    # ------------------------------------------------------------------
    def _flow_for(self, src: Tuple[str, int],
                  dst: Tuple[str, int]) -> _Flow:
        key = (src, dst) if src <= dst else (dst, src)
        flow = self._flows.get(key)
        if flow is None:
            label = (f"{key[0][0]}:{key[0][1]}<->"
                     f"{key[1][0]}:{key[1][1]}")
            flow = self._flows[key] = _Flow(label)
        return flow

    def _report(self, time: float, flow: _Flow, rule: str,
                message: str) -> None:
        self.violations.append(Violation(time=time, flow=flow.label,
                                         rule=rule, message=message))

    def _delack_period(self, flow: _Flow,
                       acker: Tuple[str, int]) -> float:
        if flow.initiator is not None and acker == flow.initiator:
            return self.config.client_delack
        return self.config.server_delack

    def _nagle_enabled(self, flow: _Flow,
                       sender: Tuple[str, int]) -> bool:
        if flow.initiator is None:
            return False
        if sender == flow.initiator:
            return self.config.nagle_client
        return self.config.nagle_server

    # ------------------------------------------------------------------
    def observe(self, time: float, src: str, sport: int, dst: str,
                dport: int, *, syn: bool, fin: bool, rst: bool,
                ack_flag: bool, seq: int, ack: int,
                payload_len: int) -> List[Violation]:
        """Process one captured segment; returns new violations."""
        before = len(self.violations)
        sender = (src, sport)
        receiver = (dst, dport)
        flow = self._flow_for(sender, receiver)
        if flow.aborted:
            return []
        d = flow.direction(sender)
        r = flow.direction(receiver)

        if rst:
            if not self.config.allow_rst:
                self._report(time, flow, "rst",
                             "RST in a clean trace (naive close or "
                             "reset connection)")
            flow.aborted = True
            return self.violations[before:]

        # -- handshake ordering ----------------------------------------
        if flow.handshake == 0:
            if syn and not ack_flag:
                flow.initiator = sender
                flow.handshake = 1
            else:
                self._report(time, flow, "handshake-order",
                             "flow does not start with a bare SYN")
                flow.handshake = 2      # avoid cascading reports
        elif flow.handshake == 1:
            if sender == flow.initiator:
                if not (syn and not ack_flag and seq == 0):
                    self._report(time, flow, "handshake-order",
                                 "initiator sent non-SYN before the "
                                 "SYN+ACK")
            elif syn and ack_flag:
                expected = flow.direction(flow.initiator).syn_end or 1
                if ack != expected:
                    self._report(time, flow, "handshake-order",
                                 f"SYN+ACK acknowledges {ack}, "
                                 f"expected {expected}")
                flow.handshake = 2
            else:
                self._report(time, flow, "handshake-order",
                             "responder sent non-SYN+ACK before the "
                             "handshake completed")
                flow.handshake = 2
        if payload_len and flow.handshake < 2:
            self._report(time, flow, "handshake-order",
                         "payload before the handshake completed")

        # -- sequence space --------------------------------------------
        end = seq + payload_len + (1 if syn else 0) + (1 if fin else 0)
        if seq > d.snd_nxt:
            self._report(time, flow, "seq-monotonic",
                         f"sequence gap: seq={seq} beyond snd_nxt="
                         f"{d.snd_nxt}")
        is_retransmission = end <= d.snd_nxt and (payload_len or syn
                                                  or fin)
        if syn and d.syn_end is None:
            d.syn_end = end

        # -- payload / FIN discipline ----------------------------------
        if d.fin_end is not None and end > d.fin_end:
            self._report(time, flow, "payload-after-fin",
                         f"sequence space {end} beyond the FIN at "
                         f"{d.fin_end}")
        if fin:
            if d.fin_end is None:
                d.fin_end = end
            elif end != d.fin_end:
                self._report(time, flow, "payload-after-fin",
                             f"FIN moved from {d.fin_end} to {end}")

        # -- Nagle: never two outstanding small segments ----------------
        if payload_len and not is_retransmission \
                and self._nagle_enabled(flow, sender):
            outstanding = [e for e in d.small_ends if e > d.snd_una]
            if payload_len < self.config.mss:
                # Full-sized segments may always go; a second sub-MSS
                # segment while one is unacknowledged is the violation.
                if outstanding:
                    self._report(
                        time, flow, "nagle",
                        f"small segment (len={payload_len}) sent while "
                        f"a small segment is outstanding (Nagle "
                        f"violation)")
                outstanding.append(end)
            d.small_ends = outstanding

        # -- bookkeeping for the delayed-ACK deadline check -------------
        if payload_len and end > d.snd_nxt:
            d.unacked.append((end, time))
            d.sent_payload = True
        elif is_retransmission and payload_len and d.unacked:
            # A retransmission implies the original (or the ACK coming
            # back, or data blocking reassembly ahead of it) was lost in
            # flight: the peer could not have acknowledged anything
            # sooner, so every outstanding delayed-ACK deadline restarts
            # at the retransmit.  Strictly more permissive — a clean
            # trace carries no retransmissions and is unaffected.
            d.unacked = [(end_seq, time) for end_seq, _ in d.unacked]
        d.snd_nxt = max(d.snd_nxt, end)

        # -- acknowledgement checks ------------------------------------
        if ack_flag:
            if ack > r.snd_nxt:
                self._report(time, flow, "ack-unsent",
                             f"ack={ack} acknowledges unsent data "
                             f"(peer snd_nxt={r.snd_nxt})")
            if ack > r.snd_una:
                r.snd_una = ack
                budget = (self.config.transit_bound
                          + self._delack_period(flow, sender)
                          + self.config.epsilon)
                remaining = []
                for end_seq, sent_at in r.unacked:
                    if end_seq <= ack:
                        if time - sent_at > budget:
                            self._report(
                                time, flow, "delayed-ack",
                                f"data sent at t={sent_at:.6f} acked "
                                f"after {time - sent_at:.3f}s (budget "
                                f"{budget:.3f}s)")
                    else:
                        remaining.append((end_seq, sent_at))
                r.unacked = remaining
                if r.fin_end is not None and ack >= r.fin_end:
                    r.fin_acked = True
        return self.violations[before:]

    def observe_segment(self, segment: Any,
                        now: float) -> List[Violation]:
        """Adapter for live :class:`~repro.simnet.packet.Segment`
        objects (the :class:`~repro.simnet.link.Link` tap signature)."""
        return self.observe(
            now, segment.src, segment.sport, segment.dst, segment.dport,
            syn=segment.flag_syn, fin=segment.flag_fin,
            rst=segment.flag_rst, ack_flag=segment.flag_ack,
            seq=segment.seq, ack=segment.ack,
            payload_len=segment.payload_len)

    def observe_record(self, record: Any) -> List[Violation]:
        """Adapter for :class:`~repro.simnet.trace.PacketRecord`-style
        objects (``flags`` is the tcpdump string, e.g. ``'PA'``)."""
        flags = record.flags
        return self.observe(
            record.time, record.src, record.sport, record.dst,
            record.dport, syn="S" in flags, fin="F" in flags,
            rst="R" in flags, ack_flag="A" in flags, seq=record.seq,
            ack=record.ack, payload_len=record.payload_len)

    # ------------------------------------------------------------------
    def finalize(self, at_time: Optional[float] = None) -> List[Violation]:
        """End-of-trace checks; returns the new violations."""
        if self._finalized:
            return []
        self._finalized = True
        before = len(self.violations)
        end_time = at_time if at_time is not None else 0.0
        for flow in self._flows.values():
            if flow.aborted:
                continue
            if flow.handshake < 2:
                if any(d.sent_payload
                       for d in flow.directions.values()):
                    self._report(end_time, flow, "handshake-order",
                                 "payload on a flow whose handshake "
                                 "never completed")
                continue
            for endpoint, d in sorted(flow.directions.items()):
                if d.unacked:
                    end_seq, sent_at = d.unacked[0]
                    self._report(end_time, flow, "delayed-ack",
                                 f"data sent at t={sent_at:.6f} "
                                 "(end_seq="
                                 f"{end_seq}) was never acknowledged")
                if not self.config.require_teardown:
                    continue
                who = f"{endpoint[0]}:{endpoint[1]}"
                if d.fin_end is None:
                    self._report(end_time, flow, "half-close",
                                 f"{who} never closed its send side "
                                 "(no FIN)")
                elif not d.fin_acked:
                    self._report(end_time, flow, "half-close",
                                 f"{who}'s FIN was never acknowledged")
        self._check_mode_rules(end_time)
        return self.violations[before:]

    def _check_mode_rules(self, end_time: float) -> None:
        """Trace-level connection-shape checks (mode rules)."""
        rules = self.config.mode_rules
        if rules is None:
            return

        def report(message: str) -> None:
            self.violations.append(Violation(
                time=end_time, flow="<trace>", rule="mode-rules",
                message=message))

        per_port: Dict[int, int] = {}
        total = 0
        for key, flow in self._flows.items():
            if flow.initiator is None:
                continue
            total += 1
            responder = key[1] if key[0] == flow.initiator else key[0]
            per_port[responder[1]] = per_port.get(responder[1], 0) + 1
        if total < rules.min_connections:
            report(f"trace opened {total} connections, mode requires "
                   f"at least {rules.min_connections}")
        if rules.max_connections is not None \
                and total > rules.max_connections:
            report(f"trace opened {total} connections, mode allows "
                   f"at most {rules.max_connections}")
        for port in rules.required_ports:
            if port not in per_port:
                report(f"no connection to required server port {port}")
        if rules.max_handshakes_per_port is not None:
            for port in sorted(per_port):
                if per_port[port] > rules.max_handshakes_per_port:
                    report(f"server port {port} absorbed "
                           f"{per_port[port]} handshakes, mode allows "
                           f"at most {rules.max_handshakes_per_port}")


class FrameStreamValidator:
    """Validates the frame event stream of a MUX-mode run.

    The MUX client and server expose a ``frame_tap`` hook called at
    frame *send* time — ``tap(now, direction, frame_type, stream_id,
    payload)`` with ``direction`` ``"c>s"`` or ``"s>c"``.  A credit
    grant is tapped before the server receives it, and any DATA that
    grant enables is tapped after, so one validator observing both taps
    in global time order sees grants before the spends they permit.

    Enforced rules:

    * client request streams carry odd, strictly increasing ids;
      pushed streams even, strictly increasing ids;
    * ``PUSH_PROMISE`` flows only server→client, only when the mode
      allows pushing, and never before the first client request
      (the push-before-request ordering rule);
    * the server frames only open streams — an odd stream needs a
      prior client ``HEADERS``, an even one a prior ``PUSH_PROMISE`` —
      and nothing follows ``END_STREAM``;
    * ``DATA`` never exceeds the granted flow-control window;
    * every stream opened is ended or cancelled by trace end.

    Server frames on a *cancelled* stream are tolerated: a CANCEL
    legitimately crosses in-flight frames on the wire.
    """

    def __init__(self, *, push_allowed: bool = False) -> None:
        self.push_allowed = push_allowed
        self.violations: List[Violation] = []
        #: Stream id → server send credit remaining.
        self._windows: Dict[int, int] = {}
        #: Stream id → True when opened by PUSH_PROMISE.
        self._open: Dict[int, bool] = {}
        self._ended: Set[int] = set()
        self._cancelled: Set[int] = set()
        self._last_client = -1
        self._last_push = 0
        self._requests = 0

    def _report(self, time: float, rule: str, message: str) -> None:
        self.violations.append(Violation(time=time, flow="<frames>",
                                         rule=rule, message=message))

    # ------------------------------------------------------------------
    def observe(self, now: float, direction: str, ftype: int, sid: int,
                payload: bytes = b"") -> List[Violation]:
        """Process one tapped frame event; returns new violations."""
        before = len(self.violations)
        name = FRAME_TYPE_NAMES.get(ftype, hex(ftype))
        if direction == "c>s":
            self._observe_client(now, ftype, sid, payload, name)
        else:
            self._observe_server(now, ftype, sid, payload, name)
        return self.violations[before:]

    def _observe_client(self, now: float, ftype: int, sid: int,
                        payload: bytes, name: str) -> None:
        if ftype == F_HEADERS:
            if sid % 2 == 0 or sid <= self._last_client:
                self._report(now, "stream-id",
                             f"client HEADERS on stream {sid} (want an "
                             f"odd id above {self._last_client})")
            else:
                self._last_client = sid
            self._open[sid] = False
            self._windows[sid] = INITIAL_STREAM_WINDOW
            self._requests += 1
        elif ftype == F_WINDOW_UPDATE:
            if sid not in self._open:
                self._report(now, "frame-unopened",
                             f"WINDOW_UPDATE for unopened stream {sid}")
                return
            try:
                increment = window_increment(Frame(ftype, sid, payload))
            except FramingError as exc:
                self._report(now, "frame-malformed", str(exc))
                return
            self._windows[sid] = self._windows.get(sid, 0) + increment
        elif ftype == F_CANCEL:
            if sid not in self._open:
                self._report(now, "frame-unopened",
                             f"CANCEL for unopened stream {sid}")
            self._cancelled.add(sid)
        else:
            self._report(now, "frame-direction",
                         f"{name} is not a client frame")

    def _observe_server(self, now: float, ftype: int, sid: int,
                        payload: bytes, name: str) -> None:
        if ftype == F_PUSH_PROMISE:
            if not self.push_allowed:
                self._report(now, "push-not-allowed",
                             f"PUSH_PROMISE for stream {sid} in a mode "
                             "without server push")
            if self._requests == 0:
                self._report(now, "push-before-request",
                             f"PUSH_PROMISE for stream {sid} before any "
                             "client request")
            if sid % 2 or sid <= self._last_push:
                self._report(now, "stream-id",
                             f"PUSH_PROMISE on stream {sid} (want an "
                             f"even id above {self._last_push})")
            else:
                self._last_push = sid
            self._open[sid] = True
            self._windows.setdefault(sid, INITIAL_STREAM_WINDOW)
            return
        if sid in self._cancelled:
            return      # crossed a CANCEL on the wire; tolerated
        if sid not in self._open:
            self._report(now, "frame-unopened",
                         f"server {name} on unopened stream {sid}")
            return
        if sid in self._ended:
            self._report(now, "frame-after-end",
                         f"server {name} on stream {sid} after its "
                         "END_STREAM")
            return
        if ftype == F_DATA:
            credit = self._windows.get(sid, 0) - len(payload)
            self._windows[sid] = credit
            if credit < 0:
                self._report(now, "flow-window",
                             f"DATA overruns stream {sid}'s window by "
                             f"{-credit} bytes")
        elif ftype == F_END_STREAM:
            self._ended.add(sid)
        elif ftype != F_HEADERS:
            self._report(now, "frame-direction",
                         f"{name} is not a server frame")

    # ------------------------------------------------------------------
    def finish(self, at_time: float = 0.0) -> List[Violation]:
        """End-of-trace check: no stream may be left dangling."""
        before = len(self.violations)
        for sid in sorted(self._open):
            if sid in self._ended or sid in self._cancelled:
                continue
            self._report(at_time, "stream-unfinished",
                         f"stream {sid} was never ended or cancelled")
        return self.violations[before:]


class LiveSanitizer:
    """Online sanitizer mode: validate segments as they are emitted.

    Installs a tap on a :class:`~repro.simnet.link.Link` (duck-typed:
    anything with a ``taps`` list called as ``tap(segment, now)``).
    With ``raise_immediately`` (the default) the first violating
    segment raises :class:`InvariantViolationError` from inside the
    simulation, so the failure points at the exact simulated moment;
    otherwise violations accumulate for inspection.

    Call :meth:`finish` after the simulation quiesces to run the
    teardown checks.
    """

    def __init__(self, link: Any,
                 config: Optional[SanitizerConfig] = None, *,
                 raise_immediately: bool = True) -> None:
        self.validator = TraceValidator(config)
        self.raise_immediately = raise_immediately
        self._last_time = 0.0
        link.taps.append(self._tap)

    @property
    def violations(self) -> List[Violation]:
        return self.validator.violations

    def _tap(self, segment: Any, now: float) -> None:
        self._last_time = now
        fresh = self.validator.observe_segment(segment, now)
        if fresh and self.raise_immediately:
            raise InvariantViolationError(fresh[0].format())

    def finish(self,
               at_time: Optional[float] = None) -> List[Violation]:
        """Run teardown checks; raises when violations were found.

        ``at_time`` overrides the timestamp of the last observed
        segment as the end-of-run clock (pass ``sim.now`` after the
        event loop drains).
        """
        end = at_time if at_time is not None else self._last_time
        self.validator.finalize(at_time=end)
        if self.violations and self.raise_immediately:
            raise InvariantViolationError(
                "; ".join(v.format() for v in self.violations[:5]))
        return self.violations


# ----------------------------------------------------------------------
# Offline trace parsing (the ``format_trace`` / golden-fixture format)
# ----------------------------------------------------------------------

#: One line of ``TraceCollector.format_trace`` output, e.g.::
#:
#:     0.090648 zorch.w3.org:32768 > www26.w3.org:80 [PA] seq=1 ack=1 len=97
_TRACE_LINE = re.compile(
    r"^\s*(?P<time>[0-9.]+)\s+"
    r"(?P<src>\S+):(?P<sport>\d+)\s+>\s+"
    r"(?P<dst>\S+):(?P<dport>\d+)\s+"
    r"\[(?P<flags>[SFRPA.]+)\]\s+"
    r"seq=(?P<seq>\d+)\s+ack=(?P<ack>\d+)\s+len=(?P<len>\d+)\s*$")


@dataclasses.dataclass(frozen=True)
class _ParsedRecord:
    time: float
    src: str
    sport: int
    dst: str
    dport: int
    flags: str
    seq: int
    ack: int
    payload_len: int


def parse_trace_text(text: str) -> List[_ParsedRecord]:
    """Parse ``format_trace`` output / golden fixture text."""
    records = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        match = _TRACE_LINE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: not a trace line: "
                             f"{line!r}")
        records.append(_ParsedRecord(
            time=float(match.group("time")),
            src=match.group("src"), sport=int(match.group("sport")),
            dst=match.group("dst"), dport=int(match.group("dport")),
            flags=match.group("flags"),
            seq=int(match.group("seq")), ack=int(match.group("ack")),
            payload_len=int(match.group("len"))))
    return records


def validate_records(records: Iterable[Any],
                     config: Optional[SanitizerConfig] = None
                     ) -> List[Violation]:
    """Validate a sequence of packet records (parsed or collected)."""
    validator = TraceValidator(config)
    last_time = 0.0
    for record in records:
        validator.observe_record(record)
        last_time = record.time
    validator.finalize(at_time=last_time)
    return validator.violations


def validate_trace_text(text: str,
                        config: Optional[SanitizerConfig] = None
                        ) -> List[Violation]:
    """Validate raw trace text (a golden fixture file's contents)."""
    return validate_records(parse_trace_text(text), config)
