"""repro.lint — determinism linter and TCP protocol sanitizer.

Two layers of correctness checking for the reproduction:

* **Static** (:mod:`repro.lint.static`, :mod:`repro.lint.rules`): an
  AST pass over the source tree that flags constructs which silently
  break bit-identical reproducibility — wall-clock reads, global RNG
  use, OS entropy, salted-hash iteration order, exact float comparison
  on simulated clocks, mutable default arguments, and missing
  ``__slots__`` in per-packet hot-path modules.
* **Whole-program** (:mod:`repro.lint.graph`, :mod:`repro.lint.deep`):
  a project-wide symbol table, import graph and call graph feeding
  three flow-aware passes — cache-key completeness (every
  run-affecting parameter represented in ``ExperimentSpec``'s
  canonical cache key), RNG-stream discipline (every
  ``random.Random`` seeded from the experiment seed, no stream shared
  between components), and pool purity (no module-global writes in
  code reachable from ``MatrixRunner``'s chunk dispatch).  Surfaced as
  ``python -m repro lint --deep [--baseline PATH]``.
* **Runtime** (:mod:`repro.lint.sanitizer`): a TCP invariant checker
  that replays captured traces (or observes a live simulation through a
  link tap) and asserts the protocol behaviours the paper's results
  depend on — handshake ordering, sequence monotonicity, no ACK of
  unsent data, no payload after FIN, Nagle compliance, delayed-ACK
  deadlines, and independent half-close teardown.

Both layers surface through ``python -m repro lint``.
"""

from .config import ALL_RULES, DEFAULT_CONFIG, LintConfig
from .deep import (DEEP_RULES, DEFAULT_DEEP_CONFIG, DeepConfig,
                   DeepError, apply_baseline, load_baseline, run_deep,
                   write_baseline)
from .findings import (Finding, finding_sort_key, format_json,
                       format_text)
from .graph import ProjectGraph, build_graph
from .sanitizer import (
    FrameStreamValidator,
    InvariantViolationError,
    LiveSanitizer,
    ModeTraceRules,
    SanitizerConfig,
    TraceValidator,
    Violation,
    parse_trace_text,
    validate_records,
    validate_trace_text,
)
from .static import LintError, lint_file, lint_paths, lint_source

__all__ = [
    "ALL_RULES",
    "DEFAULT_CONFIG",
    "LintConfig",
    "DEEP_RULES",
    "DEFAULT_DEEP_CONFIG",
    "DeepConfig",
    "DeepError",
    "apply_baseline",
    "load_baseline",
    "run_deep",
    "write_baseline",
    "ProjectGraph",
    "build_graph",
    "Finding",
    "finding_sort_key",
    "format_json",
    "format_text",
    "LintError",
    "lint_file",
    "lint_paths",
    "lint_source",
    "FrameStreamValidator",
    "InvariantViolationError",
    "LiveSanitizer",
    "ModeTraceRules",
    "SanitizerConfig",
    "TraceValidator",
    "Violation",
    "parse_trace_text",
    "validate_records",
    "validate_trace_text",
]
