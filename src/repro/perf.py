"""Performance counters and the ``python -m repro bench`` harness.

The simulator core is the dominant cost of reproducing the paper's
tables: every cell is thousands of discrete events, and the experiment
matrix multiplies that by mode × scenario × environment × server × seed.
This module gives the repo a perf trajectory:

* :class:`PerfCounters` — cheap monotonic counters maintained by the
  engine (:class:`~repro.simnet.engine.Simulator`) and the TCP layer,
  surfaced through :class:`~repro.simnet.trace.TraceSummary` and
  :class:`~repro.core.runner.AveragedResult` so any experiment can
  report how much simulation work it cost.
* :func:`run_benchmark` — times one representative first-time cell per
  (mode, environment) pair and writes ``BENCH_simnet.json``.  The file
  keeps a **baseline** section (recorded before the PR-2 hot-path
  optimization and preserved on rewrite) next to the **current**
  numbers, so ``speedup_vs_baseline`` tracks the perf trajectory
  across PRs instead of being a single throwaway measurement.

Counter semantics
-----------------
``events_processed``
    Callbacks actually fired by :meth:`Simulator.run`.
``events_cancelled``
    Cancelled heap entries discarded (lazily at pop time or by a purge).
``heap_peak``
    High-water mark of the event heap, cancelled entries included.
``heap_purges``
    Opportunistic rebuilds that evicted dead entries in bulk.
``segments``
    TCP segments handed to a link by any endpoint.
``cancels_avoided``
    Timer (re)arms the deadline-based lazy timers absorbed without
    touching the heap — each one was a schedule+cancel pair before the
    optimization.
``fastforward_spans``
    Analytic bulk-transfer spans executed by
    :class:`~repro.simnet.fastforward.FastForward` (zero when the fast
    path is disabled or never eligible).
``segments_synthesized``
    Segments emitted *inside* those spans — traced and delivered
    without individual heap events.  Always ≤ ``segments``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import shutil
import sys
import time
from typing import Callable, Dict, List, Optional

__all__ = ["PerfCounters", "BenchCell", "BENCH_SCHEMA_VERSION",
           "representative_cells", "run_benchmark",
           "run_matrix_benchmark", "run_fastpath_benchmark",
           "run_fleet_benchmark",
           "check_bench_regression", "validate_bench_payload"]

#: Bumped whenever the shape of ``BENCH_simnet.json`` changes.
BENCH_SCHEMA_VERSION = 1

#: Fields every per-cell entry in ``BENCH_simnet.json`` must carry.
_CELL_REQUIRED_KEYS = ("wall_time", "runs", "events_processed",
                       "heap_peak", "segments", "cancels_avoided")

#: Fields every cell of the optional ``fastpath`` section must carry.
_FASTPATH_REQUIRED_KEYS = ("wall_time", "wall_time_nofastpath",
                           "speedup_fastpath", "fastforward_spans",
                           "segments_synthesized", "bytes", "runs")

#: Fields the optional ``fleet`` section must carry.
_FLEET_REQUIRED_KEYS = ("users", "cohorts", "rounds", "environment",
                        "jobs", "wall_time", "users_per_minute",
                        "pages_completed", "errors", "p50", "p95",
                        "p99", "fairness")

#: Fields the optional ``matrix`` section must carry.
_MATRIX_REQUIRED_KEYS = ("cells", "units", "jobs", "cold_wall_time",
                         "warm_wall_time", "speedup_warm_vs_cold",
                         "artifact_hits", "artifact_misses",
                         "ipc_batches", "bytes_pickled")

#: Throwaway artifact directory the cold matrix benchmark phase uses
#: (cleared before timing so "cold" really re-encodes everything).
_MATRIX_BENCH_ARTIFACTS = os.path.join(".repro-cache",
                                       "bench-matrix-artifacts")


@dataclasses.dataclass
class PerfCounters:
    """Monotonic work counters for one :class:`Simulator` lifetime."""

    events_processed: int = 0
    events_cancelled: int = 0
    heap_peak: int = 0
    heap_purges: int = 0
    segments: int = 0
    cancels_avoided: int = 0
    fastforward_spans: int = 0
    segments_synthesized: int = 0

    def snapshot(self) -> "PerfCounters":
        """An immutable-by-convention copy (for embedding in summaries)."""
        return dataclasses.replace(self)

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


# ----------------------------------------------------------------------
# Benchmark harness
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class BenchCell:
    """One timed cell of the benchmark matrix."""

    mode: str
    environment: str

    @property
    def key(self) -> str:
        return f"{self.mode}|{self.environment}"


def representative_cells() -> List[BenchCell]:
    """One first-time cell per registered (mode, environment) pair.

    Registry-driven via
    :func:`repro.core.registry.modes_for_environment`, so the suite
    covers every registered mode — the paper's four rows *and* the
    post-paper modes (HTTP/MUX, HTTP/MUX Push, HTTP/1.1 Sharded x4) —
    on each environment the mode is registered for.  Modes added later
    through :func:`~repro.core.registry.register_mode` join the bench
    automatically.
    """
    from .core.registry import modes_for_environment
    cells = []
    for environment in ("LAN", "WAN", "PPP"):
        for mode in modes_for_environment(environment, paper_only=False):
            cells.append(BenchCell(mode.name, environment))
    return cells


def _time_cell(cell: BenchCell, repeats: int) -> Dict[str, object]:
    """Run one cell ``repeats`` times; report best wall time + counters."""
    from .core.runner import run_experiment
    times = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run_experiment(cell.mode, "first-time",
                                environment=cell.environment,
                                profile="Apache", seed=0)
        times.append(time.perf_counter() - start)
    perf = result.trace.perf or PerfCounters()
    return {
        "wall_time": min(times),
        "wall_time_mean": sum(times) / len(times),
        "runs": repeats,
        "packets": result.packets,
        "events_processed": perf.events_processed,
        "events_cancelled": perf.events_cancelled,
        "heap_peak": perf.heap_peak,
        "heap_purges": perf.heap_purges,
        "segments": perf.segments,
        "cancels_avoided": perf.cancels_avoided,
    }


def run_benchmark(output_path: str = "BENCH_simnet.json", *,
                  quick: bool = False, repeats: Optional[int] = None,
                  log: Callable[[str], None] = lambda line: print(
                      line, file=sys.stderr)) -> Dict[str, object]:
    """Time the representative cells and (re)write ``output_path``.

    An existing file's ``baseline`` section is preserved verbatim; when
    the file has none (or does not exist), the freshly measured numbers
    *become* the baseline for future runs.  ``quick`` does a single
    repetition per cell (the CI smoke mode); the default is three,
    keeping the best wall time as real benchmark harnesses do.
    """
    from .core.runner import run_experiment
    repeats = repeats if repeats is not None else (1 if quick else 3)
    # Warm the memoized site/store so cell timings measure simulation.
    run_experiment("pipelined", "first-time", environment="LAN",
                   profile="Apache", seed=0)
    previous: Dict[str, object] = {}
    try:
        with open(output_path) as fh:
            previous = json.load(fh)
    except (OSError, ValueError):
        previous = {}
    current_cells: Dict[str, Dict[str, object]] = {}
    for cell in representative_cells():
        measured = _time_cell(cell, repeats)
        current_cells[cell.key] = measured
        log(f"  bench {cell.key:45s} {measured['wall_time'] * 1000:8.2f} ms"
            f"  ({measured['events_processed']} events)")
    baseline = previous.get("baseline")
    if not isinstance(baseline, dict) or "cells" not in baseline:
        baseline = {
            "note": "first recorded run; baseline for future sessions",
            "cells": {key: {"wall_time": entry["wall_time"],
                            "wall_time_mean": entry["wall_time_mean"]}
                      for key, entry in current_cells.items()},
        }
    else:
        # Cells measured for the first time (a new mode joining the
        # suite) are re-baselined from this run so the regression gate
        # covers them next time; existing baseline entries stay
        # verbatim, anchoring the long-running speedup trajectory.
        # Individual *fields* a baseline cell predates (wall_time_mean
        # was only recorded per-cell from PR 10 on) are backfilled the
        # same way, so every baseline cell carries the full schema.
        for key, entry in current_cells.items():
            cell = baseline["cells"].setdefault(key, {})
            cell.setdefault("wall_time", entry["wall_time"])
            cell.setdefault("wall_time_mean", entry["wall_time_mean"])
    for key, entry in current_cells.items():
        base = baseline["cells"].get(key, {}).get("wall_time")
        if base and entry["wall_time"] > 0:
            entry["speedup_vs_baseline"] = round(
                base / entry["wall_time"], 3)
    payload = {
        "schema": BENCH_SCHEMA_VERSION,
        "quick": quick,
        "baseline": baseline,
        "current": {"cells": current_cells},
    }
    # Sections owned by the other harnesses (``bench --matrix``,
    # ``bench --fastpath``) ride along verbatim.
    for section in ("matrix", "fastpath", "fleet"):
        if section in previous:
            payload[section] = previous[section]
    with open(output_path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return payload


def run_matrix_benchmark(output_path: str = "BENCH_simnet.json", *,
                         jobs: Optional[int] = None,
                         warm_repeats: int = 3,
                         log: Callable[[str], None] = lambda line: print(
                             line, file=sys.stderr)) -> Dict[str, object]:
    """Time a 24-cell grid cold vs. warm; record under ``matrix``.

    The grid is the paper's shape — 4 protocol modes × {first-fetch,
    revalidate} × {LAN, WAN, PPP} on Apache, one seed per cell.  The
    **cold** phase measures the true end-to-end cost of the first sweep
    in a fresh environment: a cleared artifact store, no worker pool —
    so the timing includes pool spawn, per-worker site synthesis and
    every calibration encode.  The **warm** phase re-runs the same grid
    on the same (now warm) runner: persistent pool, warm artifact
    store, warm per-process site memos.  Cold is inherently a single
    sample; warm is re-run ``warm_repeats`` times with the best kept,
    the same noise defence the per-cell benchmark uses.  No
    :class:`ResultCache` is attached — both phases simulate every unit,
    so the ratio isolates the fixed-cost amortization rather than
    result caching.

    The measured section is merged into ``output_path`` (baseline and
    per-cell ``current`` numbers are preserved verbatim).
    """
    from .content import artifacts
    from .matrix import ExperimentMatrix, MatrixRunner

    grid = ExperimentMatrix(servers=("Apache",), seeds=(0,))
    specs = grid.expand()
    previous_store = artifacts.get_store()
    shutil.rmtree(_MATRIX_BENCH_ARTIFACTS, ignore_errors=True)
    artifacts.set_store(artifacts.ArtifactStore(_MATRIX_BENCH_ARTIFACTS))
    # A fresh site memo in this process, so the cold phase's parent-side
    # warm-up pays the real synthesis cost exactly once, like a fresh
    # `python -m repro` invocation would.
    from .core.runner import reset_default_site
    reset_default_site()
    runner = MatrixRunner(jobs=jobs)
    try:
        start = time.perf_counter()
        runner.run_many(specs)
        cold = time.perf_counter() - start
        log(f"  matrix cold ({len(specs)} cells, jobs={runner.jobs}): "
            f"{cold * 1000:8.2f} ms")
        warm = None
        for _ in range(max(1, warm_repeats)):
            start = time.perf_counter()
            runner.run_many(specs)
            elapsed = time.perf_counter() - start
            warm = elapsed if warm is None else min(warm, elapsed)
        log(f"  matrix warm ({len(specs)} cells, jobs={runner.jobs}, "
            f"best of {max(1, warm_repeats)}): {warm * 1000:8.2f} ms")
        stats = runner.stats
        measured = {
            "cells": len(specs),
            "units": stats.units,
            "jobs": runner.jobs,
            "cold_wall_time": cold,
            "warm_wall_time": warm,
            "speedup_warm_vs_cold": round(cold / warm, 3) if warm > 0
            else 0.0,
            "artifact_hits": stats.artifact_hits,
            "artifact_misses": stats.artifact_misses,
            "ipc_batches": stats.ipc_batches,
            "bytes_pickled": stats.bytes_pickled,
        }
    finally:
        runner.close()
        artifacts.set_store(previous_store)
        shutil.rmtree(_MATRIX_BENCH_ARTIFACTS, ignore_errors=True)
    try:
        with open(output_path) as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        payload = {"schema": BENCH_SCHEMA_VERSION, "quick": False,
                   "baseline": {"cells": {}}, "current": {"cells": {}}}
    payload["matrix"] = measured
    with open(output_path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return payload


def _run_bulk_transfer(environment: str, size: int, *, fastpath: bool,
                       modem_compression: Optional[bool], seed: int = 0):
    """One raw steady bulk transfer: server streams ``size`` bytes.

    Drives the TCP/link kernel directly (no HTTP layer) so the timing
    isolates exactly what the fast-forward driver optimizes.  Returns
    the finished :class:`~repro.simnet.network.TwoHostNetwork`.
    """
    from .simnet.link import ENVIRONMENTS
    from .simnet.network import SERVER_HOST, TwoHostNetwork
    net = TwoHostNetwork(ENVIRONMENTS[environment], seed=seed,
                         jitter=0.02, fastpath=fastpath,
                         modem_compression=modem_compression)
    body = (bytes(range(256)) * (size // 256 + 1))[:size]

    def on_accept(conn) -> None:
        conn.on_connect = lambda c: c.send(body, close=True)

    net.server.listen(80, on_accept)
    received = [0]

    def on_data(_conn, data: bytes) -> None:
        received[0] += len(data)

    client = net.client.connect(SERVER_HOST, 80)
    client.on_data = on_data
    net.run()
    if received[0] != size:
        raise RuntimeError(
            f"bulk transfer truncated: {received[0]} of {size} bytes")
    return net


#: (key, environment, bytes, modem_compression) rows of the fast-path
#: benchmark.  The PPP cells disable V.42bis: with compression on, the
#: LZW encoder — not the event kernel — dominates wall time, which is a
#: (valid) compression benchmark rather than a kernel one.
_FASTPATH_CELLS = (
    ("bulk-8MB|LAN", "LAN", 8 * 1024 * 1024, None),
    ("bulk-4MB|WAN", "WAN", 4 * 1024 * 1024, None),
    ("bulk-1MB-nomodem|PPP", "PPP", 1024 * 1024, False),
    ("bulk-2MB-nomodem|PPP", "PPP", 2 * 1024 * 1024, False),
)


def run_fastpath_benchmark(output_path: str = "BENCH_simnet.json", *,
                           repeats: int = 3,
                           log: Callable[[str], None] = lambda line: print(
                               line, file=sys.stderr)) -> Dict[str, object]:
    """Time steady bulk transfers with the fast path on vs. off.

    For every cell the two paths are first checked **byte-identical**
    (same :class:`~repro.simnet.trace.PacketRecord` sequence) and the
    fast path is required to actually engage (``fastforward_spans >
    0``) — a silent fallback would otherwise report an honest-looking
    1.0× forever.  Wall times are best-of-``repeats``; the section is
    merged into ``output_path`` under ``"fastpath"``, preserving every
    other section verbatim.
    """
    from .simnet.link import ENVIRONMENTS
    cells: Dict[str, Dict[str, object]] = {}
    for key, environment, size, modem in _FASTPATH_CELLS:
        fast = _run_bulk_transfer(environment, size, fastpath=True,
                                  modem_compression=modem)
        slow = _run_bulk_transfer(environment, size, fastpath=False,
                                  modem_compression=modem)
        if fast.trace.records != slow.trace.records:
            raise RuntimeError(
                f"fast path diverged from per-segment execution on "
                f"{key!r}")
        perf_fast = fast.sim.perf
        perf_slow = slow.sim.perf
        if perf_fast.fastforward_spans == 0:
            raise RuntimeError(
                f"fast path never engaged on {key!r}")
        best = {True: None, False: None}
        for enabled in (True, False):
            for _ in range(repeats):
                start = time.perf_counter()
                _run_bulk_transfer(environment, size, fastpath=enabled,
                                   modem_compression=modem)
                elapsed = time.perf_counter() - start
                if best[enabled] is None or elapsed < best[enabled]:
                    best[enabled] = elapsed
        cells[key] = {
            "environment": environment,
            "bytes": size,
            "modem_compression": (
                ENVIRONMENTS[environment].modem_compression
                if modem is None else modem),
            "runs": repeats,
            "wall_time": best[True],
            "wall_time_nofastpath": best[False],
            "speedup_fastpath": round(best[False] / best[True], 3)
            if best[True] > 0 else 0.0,
            "packets": len(fast.trace),
            "events_processed": perf_fast.events_processed,
            "events_processed_nofastpath": perf_slow.events_processed,
            "segments": perf_fast.segments,
            "fastforward_spans": perf_fast.fastforward_spans,
            "segments_synthesized": perf_fast.segments_synthesized,
        }
        log(f"  fastpath {key:22s} {best[True] * 1000:8.2f} ms vs "
            f"{best[False] * 1000:8.2f} ms off "
            f"({cells[key]['speedup_fastpath']}x, "
            f"{perf_fast.fastforward_spans} spans)")
    try:
        with open(output_path) as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        payload = {"schema": BENCH_SCHEMA_VERSION, "quick": False,
                   "baseline": {"cells": {}}, "current": {"cells": {}}}
    payload["fastpath"] = {"cells": cells}
    with open(output_path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return payload


def run_fleet_benchmark(output_path: str = "BENCH_simnet.json", *,
                        users: int = 1000, cohorts: int = 16,
                        jobs: Optional[int] = None,
                        log: Callable[[str], None] = lambda line: print(
                            line, file=sys.stderr)) -> Dict[str, object]:
    """Time a population-scale WAN run; record under ``fleet``.

    The workload is the fleet engine's headline configuration: a
    1000-user population arriving at 10 users/s, sharded into cohorts
    behind a 45 Mbit/s shared backbone, one page per user, one
    fixed-point round — the ≥1000-users/minute claim the fleet
    subsystem commits to.  Wall time covers the whole
    :func:`~repro.fleet.runner.run_fleet` call (population
    compilation, dispatch, aggregation), so ``users_per_minute`` is an
    honest end-to-end throughput.  The section merges into
    ``output_path``, preserving every other section verbatim.
    """
    from .fleet import FleetSpec, run_fleet
    from .matrix import MatrixRunner
    spec = FleetSpec(users=users, cohorts=min(cohorts, users),
                     environment="WAN", arrival_rate=10.0,
                     think_time=0.0, pages_per_user=1, rounds=1,
                     max_sim_time=300.0, backbone_bps=45e6)
    runner = MatrixRunner(jobs=jobs)
    try:
        start = time.perf_counter()
        result = run_fleet(spec, runner=runner)
        wall = time.perf_counter() - start
    finally:
        runner.close()
    measured = {
        "users": spec.users,
        "cohorts": spec.cohorts,
        "rounds": spec.rounds,
        "environment": spec.environment,
        "backbone_bps": spec.backbone_bps,
        "jobs": runner.jobs,
        "wall_time": wall,
        "users_per_minute": round(spec.users / wall * 60.0, 1)
        if wall > 0 else 0.0,
        "pages_completed": len(result.page_times),
        "errors": result.errors,
        "p50": result.percentile(50),
        "p95": result.percentile(95),
        "p99": result.percentile(99),
        "fairness": round(result.fairness_index, 4),
        "queued_connections": len(result.queue_waits),
    }
    log(f"  fleet {spec.users} users x{spec.cohorts} cohorts "
        f"(jobs={runner.jobs}): {wall:6.1f} s "
        f"({measured['users_per_minute']:.0f} users/min, "
        f"p99 {measured['p99']:.2f} s)")
    try:
        with open(output_path) as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        payload = {"schema": BENCH_SCHEMA_VERSION, "quick": False,
                   "baseline": {"cells": {}}, "current": {"cells": {}}}
    payload["fleet"] = measured
    with open(output_path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return payload


def check_bench_regression(current_cells: Dict[str, Dict[str, object]],
                           reference_cells: Dict[str, Dict[str, object]],
                           *, threshold: float = 0.25) -> List[str]:
    """Wall-time regression gate; returns problem strings.

    Compares each freshly measured cell against the same key in
    ``reference_cells`` (normally the committed ``BENCH_simnet.json``
    baseline section) and reports every cell more than ``threshold``
    (fraction, default 25%) slower.  Cells present on only one side are
    ignored — adding or retiring a mode must not break the gate.
    """
    problems = []
    for key in sorted(set(current_cells) & set(reference_cells)):
        current = current_cells[key].get("wall_time")
        reference = reference_cells[key].get("wall_time")
        if not isinstance(current, (int, float)) \
                or not isinstance(reference, (int, float)) \
                or reference <= 0:
            continue
        if current > reference * (1.0 + threshold):
            problems.append(
                f"cell {key!r} regressed: {current * 1000:.2f} ms vs "
                f"reference {reference * 1000:.2f} ms "
                f"(+{(current / reference - 1.0) * 100:.0f}%, "
                f"threshold {threshold * 100:.0f}%)")
    return problems


def validate_bench_payload(payload: Dict[str, object]) -> List[str]:
    """Schema check for ``BENCH_simnet.json``; returns problem strings.

    Used by ``scripts/check.sh`` so a malformed benchmark artifact
    fails CI instead of silently rotting.
    """
    problems = []
    if payload.get("schema") != BENCH_SCHEMA_VERSION:
        problems.append(f"schema must be {BENCH_SCHEMA_VERSION}")
    baseline = payload.get("baseline")
    if not isinstance(baseline, dict) \
            or not isinstance(baseline.get("cells"), dict):
        problems.append("missing baseline.cells")
    current = payload.get("current")
    if not isinstance(current, dict) \
            or not isinstance(current.get("cells"), dict):
        problems.append("missing current.cells")
        return problems
    for key, entry in current["cells"].items():
        for field in _CELL_REQUIRED_KEYS:
            if field not in entry:
                problems.append(f"cell {key!r} missing {field!r}")
        wall = entry.get("wall_time")
        if not isinstance(wall, (int, float)) or wall <= 0:
            problems.append(f"cell {key!r} wall_time not positive")
    fastpath = payload.get("fastpath")
    if fastpath is not None:
        if not isinstance(fastpath, dict) \
                or not isinstance(fastpath.get("cells"), dict):
            problems.append("fastpath section must carry a cells object")
        else:
            for key, entry in fastpath["cells"].items():
                for field in _FASTPATH_REQUIRED_KEYS:
                    if field not in entry:
                        problems.append(
                            f"fastpath cell {key!r} missing {field!r}")
                for field in ("wall_time", "wall_time_nofastpath"):
                    wall = entry.get(field)
                    if field in entry and (
                            not isinstance(wall, (int, float))
                            or wall <= 0):
                        problems.append(
                            f"fastpath cell {key!r} {field} not positive")
                spans = entry.get("fastforward_spans")
                if isinstance(spans, int) and spans <= 0:
                    problems.append(
                        f"fastpath cell {key!r} never engaged the fast "
                        f"path")
    fleet = payload.get("fleet")
    if fleet is not None:
        if not isinstance(fleet, dict):
            problems.append("fleet section must be an object")
        else:
            for field in _FLEET_REQUIRED_KEYS:
                if field not in fleet:
                    problems.append(f"fleet missing {field!r}")
            for field in ("wall_time", "users_per_minute"):
                value = fleet.get(field)
                if field in fleet and (
                        not isinstance(value, (int, float))
                        or value <= 0):
                    problems.append(f"fleet {field} not positive")
            pages = fleet.get("pages_completed")
            if isinstance(pages, int) and pages <= 0:
                problems.append("fleet completed zero pages")
    matrix = payload.get("matrix")
    if matrix is not None:
        if not isinstance(matrix, dict):
            problems.append("matrix section must be an object")
        else:
            for field in _MATRIX_REQUIRED_KEYS:
                if field not in matrix:
                    problems.append(f"matrix missing {field!r}")
            for field in ("cold_wall_time", "warm_wall_time"):
                wall = matrix.get(field)
                if field in matrix and (
                        not isinstance(wall, (int, float)) or wall <= 0):
                    problems.append(f"matrix {field} not positive")
    return problems
