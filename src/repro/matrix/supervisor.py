"""Supervised pool execution: deadlines, respawn, retries, quarantine.

The bare ``Pool.imap_unordered`` drain this module replaces had two
failure modes fatal to long grids: a worker killed mid-chunk (OOM
killer, segfault) wedges the iterator forever, and a single raising
unit aborts the whole batch.  :class:`Supervisor` owns the in-flight
chunks instead:

* every chunk carries a **wall-clock deadline** (per-unit budget —
  an explicit ``unit_deadline`` or :data:`DEADLINE_GRACE` × the
  spec's ``max_sim_time`` — summed over the chunk's units);
* a **liveness watch** on the pool's worker processes notices a dead
  worker within one poll interval, without waiting for the deadline;
* on either signal the pool is **terminated and respawned** and every
  lost chunk is re-dispatched under a capped retry budget;
* failures walk the same **downgrade ladder** as the PR-4 robot:
  parallel retry → serial in-parent retry → quarantine.  Only
  exception failures reach the serial rung — a unit that hangs or
  kills its worker would do the same to the parent — deadline and
  lost-worker failures quarantine once the parallel budget is spent;
* a quarantined unit becomes a structured
  :class:`~repro.core.runner.UnitFailure` yielded in-band, so sibling
  units (and sibling cells) complete normally.

Determinism is preserved: a unit's computation does not depend on
where or how often it ran, so a grid that survives a worker kill
produces numbers byte-identical to an undisturbed serial run.

Harness fault plans (:mod:`repro.faults.harness`) ship inside each
chunk payload — no worker-global state — so the chaos tests can
SIGKILL, hang, or poison scripted units deterministically.
"""

from __future__ import annotations

import dataclasses
import pickle
import time
from typing import Iterator, List, Optional, Sequence, Tuple

from ..content import artifacts
from ..core.runner import RunResult, UnitFailure
from ..faults.harness import HarnessFaultPlan
from .spec import ExperimentSpec

__all__ = ["DEFAULT_RETRY_BUDGET", "DEADLINE_GRACE", "Supervisor"]

#: Parallel re-dispatches allowed per unit after its first failure
#: (the serial in-parent rung comes after these, for exception
#: failures only).
DEFAULT_RETRY_BUDGET = 2

#: Without an explicit ``unit_deadline``, a unit's wall-clock budget is
#: this fraction of its spec's ``max_sim_time``.  Simulated seconds run
#: orders of magnitude faster than wall seconds, so the default (300 s
#: of wall time for the default 1200 s simulation horizon) is a hang
#: backstop, not a performance target.
DEADLINE_GRACE = 0.25

#: Supervisor poll cadence while chunks are in flight.
_POLL_INTERVAL = 0.05

#: A unit in a supervised dispatch: (slot index, spec, seed, attempt).
_SupUnit = Tuple[int, ExperimentSpec, int, int]

#: What execute() yields per resolved unit: the outcome is either a
#: stripped RunResult or a UnitFailure.
_Outcome = Tuple[int, object, float]


@dataclasses.dataclass(frozen=True)
class _WorkerFailure:
    """Picklable per-unit failure shipped from a worker to the parent."""

    kind: str
    error: str
    traceback_digest: str


def _worker_failure(exc: BaseException) -> _WorkerFailure:
    import hashlib
    import traceback
    text = "".join(traceback.format_exception(
        type(exc), exc, exc.__traceback__))
    return _WorkerFailure(
        kind="exception",
        error=f"{type(exc).__name__}: {exc}",
        traceback_digest=hashlib.sha256(
            text.encode("utf-8")).hexdigest()[:12])


def _run_chunk_supervised(
        payload: Tuple[Sequence[_SupUnit], Optional[HarnessFaultPlan]]
) -> Tuple[List[_Outcome], Tuple[int, int]]:
    """Worker entry: run a chunk, capturing failures per unit.

    One IPC round-trip per chunk, like the unsupervised entry it
    replaces, plus the artifact-store (hits, misses) delta.  A raising
    unit becomes a :class:`_WorkerFailure` in the results instead of
    propagating (which would abort the pool drain for every unit in
    the batch); the parent's retry ladder decides what happens next.
    """
    units, plan = payload
    from .runner import run_unit    # runner imports this module
    stats = artifacts.get_store().stats
    hits, misses = stats.hits, stats.misses
    results: List[_Outcome] = []
    for index, spec, seed, attempt in units:
        start = time.perf_counter()
        try:
            if plan is not None:
                plan.apply(index, seed, attempt)
            result, wall = run_unit(spec, seed)
        except Exception as exc:
            results.append((index, _worker_failure(exc),
                            time.perf_counter() - start))
        else:
            results.append((index, result, wall))
    return results, (stats.hits - hits, stats.misses - misses)


class _Chunk:
    """One dispatched chunk: its units, async handle, and deadline."""

    __slots__ = ("units", "handle", "deadline")

    def __init__(self, units: List[_SupUnit], handle,
                 deadline: float) -> None:
        self.units = units
        self.handle = handle
        self.deadline = deadline


class Supervisor:
    """Drives one supervised parallel batch for a MatrixRunner.

    Created per ``run_many`` parallel dispatch; uses the runner's
    persistent pool (respawning it through the runner so later calls
    reuse the healthy replacement) and reports retries, respawns and
    IPC totals into the runner's :class:`MatrixStats`.
    """

    __slots__ = ("runner", "retry_budget", "unit_deadline", "plan",
                 "_inflight", "_procs")

    def __init__(self, runner, *, retry_budget: int = DEFAULT_RETRY_BUDGET,
                 unit_deadline: Optional[float] = None,
                 plan: Optional[HarnessFaultPlan] = None) -> None:
        self.runner = runner
        self.retry_budget = max(0, int(retry_budget))
        self.unit_deadline = unit_deadline
        self.plan = plan
        self._inflight: List[_Chunk] = []
        self._procs: List[object] = []

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def execute(self, payload: Sequence[Tuple[int, ExperimentSpec, int]]
                ) -> Iterator[List[_Outcome]]:
        """Yield batches of (index, outcome, wall) covering ``payload``.

        Outcomes are stripped :class:`RunResult` objects for units that
        completed and :class:`UnitFailure` records for units the retry
        ladder quarantined.  Every index in ``payload`` is yielded
        exactly once.
        """
        units: List[_SupUnit] = [(index, spec, seed, 1)
                                 for index, spec, seed in payload]
        pool = self.runner._ensure_pool()
        self._watch(pool)
        for chunk_units in self.runner._chunked(units):
            self._dispatch(pool, list(chunk_units))
        while self._inflight:
            ready = [c for c in self._inflight if c.handle.ready()]
            if ready:
                for chunk in ready:
                    self._inflight.remove(chunk)
                    batch = self._collect(chunk)
                    if batch:
                        yield batch
                continue
            batch = self._supervise()
            if batch:
                yield batch

    # ------------------------------------------------------------------
    # Dispatch and collection
    # ------------------------------------------------------------------
    def _dispatch(self, pool, units: List[_SupUnit]) -> None:
        payload = (tuple(units), self.plan)
        stats = self.runner.stats
        stats.ipc_batches += 1
        stats.bytes_pickled += len(
            pickle.dumps(payload, pickle.HIGHEST_PROTOCOL))
        deadline = time.monotonic() + sum(
            self._deadline_for(spec) for _, spec, _, _ in units)
        self._inflight.append(_Chunk(
            units, pool.apply_async(_run_chunk_supervised, (payload,)),
            deadline))

    def _deadline_for(self, spec: ExperimentSpec) -> float:
        if self.unit_deadline is not None:
            return float(self.unit_deadline)
        return DEADLINE_GRACE * spec.max_sim_time

    def _watch(self, pool) -> None:
        """Snapshot the pool's worker processes for liveness checks.

        The snapshot keeps references to the worker Process objects, so
        a worker that dies stays visible (exitcode set) even after the
        pool's maintenance thread replaces it in its own bookkeeping.
        """
        self._procs = list(getattr(pool, "_pool", None) or [])

    def _collect(self, chunk: _Chunk) -> List[_Outcome]:
        try:
            results, (hits, misses) = chunk.handle.get()
        except Exception as exc:
            # The chunk computed but its reply could not be retrieved
            # (e.g. an unpicklable result): same treatment as a lost
            # worker, minus the pool respawn (the pool is healthy).
            return self._retry_or_quarantine(
                chunk.units, "worker-lost",
                f"chunk result unavailable: {exc}",
                self.runner._ensure_pool())
        stats = self.runner.stats
        stats.artifact_hits += hits
        stats.artifact_misses += misses
        info = {index: (spec, seed, attempt)
                for index, spec, seed, attempt in chunk.units}
        batch: List[_Outcome] = []
        for index, outcome, wall in results:
            spec, seed, attempt = info[index]
            if isinstance(outcome, _WorkerFailure):
                resolved = self._unit_failed(index, spec, seed, attempt,
                                             outcome)
                if resolved is not None:
                    batch.append(resolved)
            else:
                batch.append((index, outcome, wall))
        return batch

    # ------------------------------------------------------------------
    # Failure handling: the downgrade ladder
    # ------------------------------------------------------------------
    def _unit_failed(self, index: int, spec: ExperimentSpec, seed: int,
                     attempt: int, failure: _WorkerFailure
                     ) -> Optional[_Outcome]:
        """One unit raised in a worker: retry, downgrade, or quarantine.

        Returns the resolved outcome, or None when the unit was
        re-dispatched and will resolve in a later batch.
        """
        if attempt <= self.retry_budget:
            self.runner._emit_retry(spec, seed, attempt + 1)
            self._dispatch(self.runner._ensure_pool(),
                           [(index, spec, seed, attempt + 1)])
            return None
        # Parallel budget exhausted: the serial in-parent rung.
        self.runner._emit_retry(spec, seed, attempt + 1)
        return self._run_serial(index, spec, seed, attempt + 1)

    def _run_serial(self, index: int, spec: ExperimentSpec, seed: int,
                    attempt: int) -> _Outcome:
        """Final rung of the ladder; a failure here quarantines."""
        from .runner import run_unit
        stats = self.runner.stats
        store_stats = artifacts.get_store().stats
        hits, misses = store_stats.hits, store_stats.misses
        try:
            try:
                if self.plan is not None:
                    self.plan.apply(index, seed, attempt)
                result, wall = run_unit(spec, seed)
            except Exception as exc:
                return (index, UnitFailure.from_exception(
                    spec.label, seed, exc, attempts=attempt), 0.0)
            return (index, result, wall)
        finally:
            stats.artifact_hits += store_stats.hits - hits
            stats.artifact_misses += store_stats.misses - misses

    def _supervise(self) -> List[_Outcome]:
        """One idle tick: check liveness and deadlines, maybe recover.

        Returns quarantined outcomes produced by the recovery (usually
        empty — recovered units re-dispatch and resolve later).
        """
        lost = any(getattr(p, "exitcode", None) is not None
                   for p in self._procs)
        now = time.monotonic()
        expired = [c for c in self._inflight if now > c.deadline]
        if not lost and not expired:
            time.sleep(_POLL_INTERVAL)
            return []
        # The pool's state is unknown (a dead worker may have taken
        # queue locks with it; a hung worker never yields its slot):
        # tear it down and re-dispatch everything still in flight.
        kind = "worker-lost" if lost else "deadline"
        error = ("worker process died mid-chunk" if lost
                 else "unit wall-clock deadline expired")
        guilty = set(map(id, self._inflight if lost else expired))
        inflight, self._inflight = self._inflight, []
        pool = self.runner._respawn_pool()
        self._watch(pool)
        batch: List[_Outcome] = []
        for chunk in inflight:
            if id(chunk) in guilty:
                batch.extend(self._retry_or_quarantine(
                    chunk.units, kind, error, pool))
            else:
                # Innocent bystander chunks lost to the respawn are
                # re-dispatched as-is: no attempt is charged to them.
                self._dispatch(pool, chunk.units)
        return batch

    def _retry_or_quarantine(self, units: Sequence[_SupUnit], kind: str,
                             error: str, pool) -> List[_Outcome]:
        """Machine-fault path: parallel retries only, then quarantine.

        A unit whose worker hangs or dies must never run in the parent
        (the same fault would wedge or kill the whole run), so unlike
        exception failures there is no serial rung.  Retried units are
        re-dispatched as singleton chunks: isolation keeps a repeat
        offender from taking fresh neighbours down with it.
        """
        batch: List[_Outcome] = []
        for index, spec, seed, attempt in units:
            if attempt <= self.retry_budget:
                self.runner._emit_retry(spec, seed, attempt + 1)
                self._dispatch(pool, [(index, spec, seed, attempt + 1)])
            else:
                batch.append((index, UnitFailure(
                    label=spec.label, seed=seed, kind=kind, error=error,
                    traceback_digest="", attempts=attempt), 0.0))
        return batch
