"""Parallel execution of experiment grids on a persistent warm pool.

:class:`MatrixRunner` fans the (cell, seed) work units of one or more
:class:`~repro.matrix.spec.ExperimentSpec` out over a
``multiprocessing`` pool.  Each worker builds the Microscape site and
resource store locally (live simulation objects do not pickle; specs
and numeric results do), so a unit's computation is byte-for-byte the
same wherever it runs — ``jobs=4`` and the serial ``jobs=1`` fallback
are guaranteed to produce identical numbers, and a content-addressed
:class:`~repro.matrix.cache.ResultCache` can substitute for either.

Three fixed costs are amortized instead of paid per unit or per call:

* **The pool is persistent.**  One pool serves every ``run()`` /
  ``run_many()`` call for the runner's lifetime (``close()`` or use the
  runner as a context manager to release it); a six-table report no
  longer forks and tears down a pool per table.
* **Workers warm up on spawn.**  The parent pre-builds the default
  site/store before forking (copy-on-write sharing where the platform
  forks) and every worker's initializer builds it otherwise — served
  from the content-addressed artifact store
  (:mod:`repro.content.artifacts`) in O(read) when warm — so the first
  dispatched unit measures simulation, not site synthesis.
* **Dispatch is chunked.**  Units travel in chunks (one pickle/IPC
  round-trip and one batched :meth:`ResultCache.put_many` flush per
  chunk) instead of one message per unit.

Observability: the runner accumulates :class:`MatrixStats` (per-cell
wall time, cache and artifact hit/miss counters, IPC batch and pickled-
byte totals) and emits a :class:`CellEvent` to an optional progress
callback as each unit resolves.
"""

from __future__ import annotations

import dataclasses
import math
import multiprocessing
import os
import pickle
import time
from typing import (Callable, Dict, Iterator, List, Optional, Sequence,
                    Tuple)

from ..content import artifacts
from ..core.runner import (AveragedResult, RunResult, run_experiment,
                           warm_default_site)
from .cache import ResultCache
from .spec import ExperimentSpec

__all__ = ["CellEvent", "MatrixStats", "MatrixRunner", "run_unit"]

#: Progress callback signature.
ProgressCallback = Callable[["CellEvent"], None]

#: A unit in flight: (slot index, spec, seed).
_Unit = Tuple[int, ExperimentSpec, int]

#: Target dispatch chunks per worker per run_many call.  Cells vary 50x
#: in cost (LAN revalidate vs PPP first-time), so several chunks per
#: worker keep the tail balanced while still batching IPC.
_CHUNKS_PER_WORKER = 4


@dataclasses.dataclass(frozen=True)
class CellEvent:
    """One resolved work unit, reported to the progress callback."""

    spec: ExperimentSpec
    seed: int
    #: ``"hit"`` (served from cache) or ``"run"`` (simulated).
    status: str
    #: Wall-clock seconds spent simulating (0.0 for cache hits).
    wall_time: float
    completed: int
    total: int

    @property
    def label(self) -> str:
        return self.spec.label


@dataclasses.dataclass
class MatrixStats:
    """Counters accumulated across a runner's lifetime."""

    specs: int = 0
    units: int = 0
    sim_runs: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    wall_time: float = 0.0
    #: Artifact-store hits/misses observed while executing units and
    #: during the parent-side pool warm-up build (the encode
    #: memoization of :mod:`repro.content.artifacts`).
    artifact_hits: int = 0
    artifact_misses: int = 0
    #: Dispatch chunks sent to the pool (0 for serial execution).
    ipc_batches: int = 0
    #: Bytes of pickled unit payload shipped to workers.
    bytes_pickled: int = 0
    #: Simulation wall seconds per (cell label, seed).
    unit_wall_times: Dict[Tuple[str, int], float] = dataclasses.field(
        default_factory=dict)

    def summary(self) -> str:
        return (f"{self.specs} cells, {self.units} runs requested: "
                f"{self.sim_runs} simulated, {self.cache_hits} cache "
                f"hits, {self.cache_misses} misses, "
                f"{self.wall_time:.1f} s wall; artifacts "
                f"{self.artifact_hits} hit/{self.artifact_misses} miss; "
                f"{self.ipc_batches} ipc batches, "
                f"{self.bytes_pickled} bytes pickled")


def run_unit(spec: ExperimentSpec, seed: int) -> Tuple[RunResult, float]:
    """Execute one (cell, seed) unit; returns (result, wall seconds).

    The worker process holds no simulation state from the parent:
    ``run_experiment`` resolves the spec's names through the registry
    and builds (or reuses its own process-local memo of) the site and
    resource store.  The returned result carries the numeric
    measurement columns only (``fetch=None, trace=None``) — the same
    shape the cache hydrates — so serial, parallel and cached paths are
    interchangeable.
    """
    start = time.perf_counter()
    result = run_experiment(
        spec.mode, spec.scenario,
        environment=spec.environment, profile=spec.server,
        seed=seed, jitter=spec.jitter,
        client_config=spec.client_config(),
        verify=spec.verify, max_sim_time=spec.max_sim_time,
        faults=spec.faults, fastpath=spec.fastpath)
    wall = time.perf_counter() - start
    stripped = dataclasses.replace(result, fetch=None, trace=None)
    return stripped, wall


def _pool_initializer(artifact_state: Dict[str, object],
                      warm: bool) -> None:
    """Configure and warm a pool worker at spawn time.

    Applies the parent's artifact-store configuration (same blob
    directory, same enabled flag) and pre-builds the default site so
    the worker's first unit starts simulating immediately.  Under the
    ``fork`` start method the parent's already-built site arrives via
    copy-on-write and both steps are near-free no-ops.
    """
    artifacts.configure(**artifact_state)
    if warm:
        warm_default_site()


def _pool_chunk_entry(chunk: Sequence[_Unit]
                      ) -> Tuple[List[Tuple[int, RunResult, float]],
                                 Tuple[int, int]]:
    """Run a chunk of units in a worker; one IPC round-trip per chunk.

    Returns the per-unit results plus the artifact-store (hits, misses)
    delta this chunk produced in the worker, so the parent can
    aggregate encode-memoization effectiveness across the pool.
    """
    stats = artifacts.get_store().stats
    hits, misses = stats.hits, stats.misses
    results = []
    for index, spec, seed in chunk:
        result, wall = run_unit(spec, seed)
        results.append((index, result, wall))
    return results, (stats.hits - hits, stats.misses - misses)


class MatrixRunner:
    """Runs experiment specs, in parallel when asked, cached when told.

    Parameters
    ----------
    jobs:
        Worker process count.  ``1`` (the default) runs everything
        serially in-process; ``None`` or ``0`` means one per CPU.
        Results are identical either way.
    cache:
        Optional :class:`ResultCache`; hits skip simulation entirely.
    progress:
        Optional callback invoked with a :class:`CellEvent` as each
        unit resolves (cache hits first, then runs as they finish).
    chunk_size:
        Units per dispatch chunk.  ``None`` (the default) adapts to the
        batch: roughly :data:`_CHUNKS_PER_WORKER` chunks per worker.
    warm:
        Pre-build the default Microscape site in the parent and in each
        worker on spawn.  Disable only in tests that count builds.

    The pool spawned for the first parallel ``run_many()`` is reused by
    every later call; ``close()`` (or a ``with`` block) releases it.
    """

    __slots__ = ("jobs", "cache", "progress", "stats", "chunk_size",
                 "warm", "_pool", "_pool_workers")

    def __init__(self, jobs: Optional[int] = 1, *,
                 cache: Optional[ResultCache] = None,
                 progress: Optional[ProgressCallback] = None,
                 chunk_size: Optional[int] = None,
                 warm: bool = True) -> None:
        if not jobs:
            jobs = os.cpu_count() or 1
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.progress = progress
        self.chunk_size = chunk_size
        self.warm = warm
        self.stats = MatrixStats()
        self._pool: Optional[multiprocessing.pool.Pool] = None
        self._pool_workers = 0

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> "multiprocessing.pool.Pool":
        """The persistent pool, spawning (and warming) it on first use."""
        if self._pool is None:
            if self.warm:
                # Build before forking: fork-start workers inherit the
                # site copy-on-write instead of each building their own.
                store_stats = artifacts.get_store().stats
                hits, misses = store_stats.hits, store_stats.misses
                warm_default_site()
                self.stats.artifact_hits += store_stats.hits - hits
                self.stats.artifact_misses += store_stats.misses - misses
            self._pool = multiprocessing.Pool(
                processes=self.jobs,
                initializer=_pool_initializer,
                initargs=(artifacts.store_state(), self.warm))
            self._pool_workers = self.jobs
        return self._pool

    def close(self) -> None:
        """Release the worker pool (idempotent; a later run respawns)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
            self._pool_workers = 0

    def __enter__(self) -> "MatrixRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        pool = getattr(self, "_pool", None)
        if pool is not None:
            # Interpreter-teardown path: terminate without joining.
            pool.terminate()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, spec: ExperimentSpec) -> AveragedResult:
        """Run (or recall) one spec; mean of its seeds."""
        return self.run_many([spec])[0]

    def run_many(self, specs: Sequence[ExperimentSpec]
                 ) -> List[AveragedResult]:
        """Run a batch of specs, fanning all their units out together.

        Batching matters: a six-table report hands the pool every
        (cell, seed) unit at once instead of draining one row before
        starting the next.
        """
        started = time.perf_counter()
        units: List[Tuple[ExperimentSpec, int]] = [
            (spec, seed) for spec in specs for seed in spec.seeds]
        slots: List[Optional[RunResult]] = [None] * len(units)
        total = len(units)
        completed = 0

        pending: List[int] = []
        for index, (spec, seed) in enumerate(units):
            cached = (self.cache.get(spec, seed)
                      if self.cache is not None else None)
            if cached is not None:
                slots[index] = cached
                completed += 1
                self.stats.cache_hits += 1
                self._emit(spec, seed, "hit", 0.0, completed, total)
            else:
                if self.cache is not None:
                    self.stats.cache_misses += 1
                pending.append(index)

        for batch in self._execute(units, pending):
            if self.cache is not None:
                self.cache.put_many(
                    (units[index][0], units[index][1], result)
                    for index, result, _ in batch)
            for index, result, wall in batch:
                spec, seed = units[index]
                slots[index] = result
                completed += 1
                self.stats.sim_runs += 1
                self.stats.unit_wall_times[(spec.label, seed)] = wall
                self._emit(spec, seed, "run", wall, completed, total)

        self.stats.specs += len(specs)
        self.stats.units += total
        self.stats.wall_time += time.perf_counter() - started

        averaged: List[AveragedResult] = []
        cursor = 0
        for spec in specs:
            runs = slots[cursor:cursor + spec.runs]
            cursor += spec.runs
            averaged.append(AveragedResult(list(runs)))
        return averaged

    # ------------------------------------------------------------------
    # Execution strategies
    # ------------------------------------------------------------------
    def _execute(self, units, pending
                 ) -> Iterator[List[Tuple[int, RunResult, float]]]:
        """Yield batches of (index, result, wall) covering ``pending``.

        Serial execution yields one single-unit batch at a time (cache
        writes stay incremental); pool execution yields one batch per
        dispatch chunk as workers complete them.
        """
        if not pending:
            return
        if self.jobs <= 1 or len(pending) <= 1:
            store_stats = artifacts.get_store().stats
            hits, misses = store_stats.hits, store_stats.misses
            for index in pending:
                spec, seed = units[index]
                result, wall = run_unit(spec, seed)
                yield [(index, result, wall)]
            self.stats.artifact_hits += store_stats.hits - hits
            self.stats.artifact_misses += store_stats.misses - misses
            return
        payload = [(index, units[index][0], units[index][1])
                   for index in pending]
        pool = self._ensure_pool()
        chunks = list(self._chunked(payload))
        self.stats.ipc_batches += len(chunks)
        self.stats.bytes_pickled += sum(
            len(pickle.dumps(chunk, pickle.HIGHEST_PROTOCOL))
            for chunk in chunks)
        for results, (hits, misses) in pool.imap_unordered(
                _pool_chunk_entry, chunks, chunksize=1):
            self.stats.artifact_hits += hits
            self.stats.artifact_misses += misses
            yield results

    def _chunked(self, payload: List[_Unit]) -> Iterator[List[_Unit]]:
        """Split the pending units into dispatch chunks."""
        size = self.chunk_size
        if size is None:
            size = math.ceil(len(payload)
                             / (self.jobs * _CHUNKS_PER_WORKER))
        size = max(1, int(size))
        for start in range(0, len(payload), size):
            yield payload[start:start + size]

    def _emit(self, spec, seed, status, wall, completed, total) -> None:
        if self.progress is not None:
            self.progress(CellEvent(spec=spec, seed=seed, status=status,
                                    wall_time=wall, completed=completed,
                                    total=total))
