"""Parallel execution of experiment grids.

:class:`MatrixRunner` fans the (cell, seed) work units of one or more
:class:`~repro.matrix.spec.ExperimentSpec` out over a
``multiprocessing`` pool.  Each worker rebuilds the Microscape site and
resource store locally (live simulation objects do not pickle; specs
and numeric results do), so a unit's computation is byte-for-byte the
same wherever it runs — ``jobs=4`` and the serial ``jobs=1`` fallback
are guaranteed to produce identical numbers, and a content-addressed
:class:`~repro.matrix.cache.ResultCache` can substitute for either.

Observability: the runner accumulates :class:`MatrixStats` (per-cell
wall time, cache hit/miss counters, simulation-run count) and emits a
:class:`CellEvent` to an optional progress callback as each unit
resolves.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.runner import AveragedResult, RunResult, run_experiment
from .cache import ResultCache
from .spec import ExperimentSpec

__all__ = ["CellEvent", "MatrixStats", "MatrixRunner", "run_unit"]

#: Progress callback signature.
ProgressCallback = Callable[["CellEvent"], None]


@dataclasses.dataclass(frozen=True)
class CellEvent:
    """One resolved work unit, reported to the progress callback."""

    spec: ExperimentSpec
    seed: int
    #: ``"hit"`` (served from cache) or ``"run"`` (simulated).
    status: str
    #: Wall-clock seconds spent simulating (0.0 for cache hits).
    wall_time: float
    completed: int
    total: int

    @property
    def label(self) -> str:
        return self.spec.label


@dataclasses.dataclass
class MatrixStats:
    """Counters accumulated across a runner's lifetime."""

    specs: int = 0
    units: int = 0
    sim_runs: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    wall_time: float = 0.0
    #: Simulation wall seconds per (cell label, seed).
    unit_wall_times: Dict[Tuple[str, int], float] = dataclasses.field(
        default_factory=dict)

    def summary(self) -> str:
        return (f"{self.specs} cells, {self.units} runs requested: "
                f"{self.sim_runs} simulated, {self.cache_hits} cache "
                f"hits, {self.cache_misses} misses, "
                f"{self.wall_time:.1f} s wall")


def run_unit(spec: ExperimentSpec, seed: int) -> Tuple[RunResult, float]:
    """Execute one (cell, seed) unit; returns (result, wall seconds).

    This is the function pool workers run.  The worker process holds no
    simulation state from the parent: ``run_experiment`` resolves the
    spec's names through the registry and builds (or reuses its own
    process-local memo of) the site and resource store.  The returned
    result carries the numeric measurement columns only (``fetch=None,
    trace=None``) — the same shape the cache hydrates — so serial,
    parallel and cached paths are interchangeable.
    """
    start = time.perf_counter()
    result = run_experiment(
        spec.mode, spec.scenario,
        environment=spec.environment, profile=spec.server,
        seed=seed, jitter=spec.jitter,
        client_config=spec.client_config(),
        verify=spec.verify, max_sim_time=spec.max_sim_time,
        faults=spec.faults)
    wall = time.perf_counter() - start
    stripped = dataclasses.replace(result, fetch=None, trace=None)
    return stripped, wall


def _pool_entry(unit: Tuple[int, ExperimentSpec, int]
                ) -> Tuple[int, RunResult, float]:
    index, spec, seed = unit
    result, wall = run_unit(spec, seed)
    return index, result, wall


class MatrixRunner:
    """Runs experiment specs, in parallel when asked, cached when told.

    Parameters
    ----------
    jobs:
        Worker process count.  ``1`` (the default) runs everything
        serially in-process; ``None`` or ``0`` means one per CPU.
        Results are identical either way.
    cache:
        Optional :class:`ResultCache`; hits skip simulation entirely.
    progress:
        Optional callback invoked with a :class:`CellEvent` as each
        unit resolves (cache hits first, then runs as they finish).
    """

    def __init__(self, jobs: Optional[int] = 1, *,
                 cache: Optional[ResultCache] = None,
                 progress: Optional[ProgressCallback] = None) -> None:
        if not jobs:
            jobs = os.cpu_count() or 1
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.progress = progress
        self.stats = MatrixStats()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, spec: ExperimentSpec) -> AveragedResult:
        """Run (or recall) one spec; mean of its seeds."""
        return self.run_many([spec])[0]

    def run_many(self, specs: Sequence[ExperimentSpec]
                 ) -> List[AveragedResult]:
        """Run a batch of specs, fanning all their units out together.

        Batching matters: a six-table report hands the pool every
        (cell, seed) unit at once instead of draining one row before
        starting the next.
        """
        started = time.perf_counter()
        units: List[Tuple[ExperimentSpec, int]] = [
            (spec, seed) for spec in specs for seed in spec.seeds]
        slots: List[Optional[RunResult]] = [None] * len(units)
        total = len(units)
        completed = 0

        pending: List[int] = []
        for index, (spec, seed) in enumerate(units):
            cached = (self.cache.get(spec, seed)
                      if self.cache is not None else None)
            if cached is not None:
                slots[index] = cached
                completed += 1
                self.stats.cache_hits += 1
                self._emit(spec, seed, "hit", 0.0, completed, total)
            else:
                if self.cache is not None:
                    self.stats.cache_misses += 1
                pending.append(index)

        for index, result, wall in self._execute(units, pending):
            spec, seed = units[index]
            slots[index] = result
            completed += 1
            self.stats.sim_runs += 1
            self.stats.unit_wall_times[(spec.label, seed)] = wall
            if self.cache is not None:
                self.cache.put(spec, seed, result)
            self._emit(spec, seed, "run", wall, completed, total)

        self.stats.specs += len(specs)
        self.stats.units += total
        self.stats.wall_time += time.perf_counter() - started

        averaged: List[AveragedResult] = []
        cursor = 0
        for spec in specs:
            runs = slots[cursor:cursor + spec.runs]
            cursor += spec.runs
            averaged.append(AveragedResult(list(runs)))
        return averaged

    # ------------------------------------------------------------------
    # Execution strategies
    # ------------------------------------------------------------------
    def _execute(self, units, pending):
        """Yield (index, result, wall) for each pending unit."""
        if not pending:
            return
        workers = min(self.jobs, len(pending))
        if workers <= 1:
            for index in pending:
                spec, seed = units[index]
                result, wall = run_unit(spec, seed)
                yield index, result, wall
            return
        payload = [(index, units[index][0], units[index][1])
                   for index in pending]
        with multiprocessing.Pool(processes=workers) as pool:
            # chunksize=1: cells vary 50x in cost (LAN reval vs PPP
            # first-time); coarse chunks would serialize the tail.
            yield from pool.imap_unordered(_pool_entry, payload,
                                           chunksize=1)

    def _emit(self, spec, seed, status, wall, completed, total) -> None:
        if self.progress is not None:
            self.progress(CellEvent(spec=spec, seed=seed, status=status,
                                    wall_time=wall, completed=completed,
                                    total=total))
