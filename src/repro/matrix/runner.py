"""Parallel execution of experiment grids on a persistent warm pool.

:class:`MatrixRunner` fans the (cell, seed) work units of one or more
:class:`~repro.matrix.spec.ExperimentSpec` out over a
``multiprocessing`` pool.  Each worker builds the Microscape site and
resource store locally (live simulation objects do not pickle; specs
and numeric results do), so a unit's computation is byte-for-byte the
same wherever it runs — ``jobs=4`` and the serial ``jobs=1`` fallback
are guaranteed to produce identical numbers, and a content-addressed
:class:`~repro.matrix.cache.ResultCache` can substitute for either.

Three fixed costs are amortized instead of paid per unit or per call:

* **The pool is persistent.**  One pool serves every ``run()`` /
  ``run_many()`` call for the runner's lifetime (``close()`` or use the
  runner as a context manager to release it); a six-table report no
  longer forks and tears down a pool per table.
* **Workers warm up on spawn.**  The parent pre-builds the default
  site/store before forking (copy-on-write sharing where the platform
  forks) and every worker's initializer builds it otherwise — served
  from the content-addressed artifact store
  (:mod:`repro.content.artifacts`) in O(read) when warm — so the first
  dispatched unit measures simulation, not site synthesis.
* **Dispatch is chunked.**  Units travel in chunks (one pickle/IPC
  round-trip and one batched :meth:`ResultCache.put_many` flush per
  chunk) instead of one message per unit.

Observability: the runner accumulates :class:`MatrixStats` (per-cell
wall time, cache and artifact hit/miss counters, IPC batch and pickled-
byte totals, failure/retry/respawn counters) and emits a
:class:`CellEvent` to an optional progress callback as each unit
resolves.

Robustness: parallel execution is driven by
:class:`~repro.matrix.supervisor.Supervisor` — per-unit wall-clock
deadlines, dead/hung-worker detection, pool respawn and a capped retry
ladder (parallel retry → serial in-parent retry → quarantine).
Quarantined units surface as structured
:class:`~repro.core.runner.UnitFailure` records on the cell's
:class:`~repro.core.runner.AveragedResult` instead of aborting the
grid, and an optional :class:`~repro.matrix.journal.RunJournal`
records every resolved unit so an interrupted grid resumes
byte-identically.
"""

from __future__ import annotations

import dataclasses
import math
import multiprocessing
import os
import time
from typing import (Callable, Dict, Iterator, List, Optional, Sequence,
                    Tuple)

from ..content import artifacts
from ..core.runner import (AveragedResult, RunResult, UnitFailure,
                           run_experiment, warm_default_site)
from ..faults.harness import HarnessFaultPlan, resolve_harness_plan
from .cache import ResultCache, unit_key
from .journal import RunJournal
from .spec import ExperimentSpec
from .supervisor import DEFAULT_RETRY_BUDGET, Supervisor

__all__ = ["CellEvent", "MatrixStats", "MatrixRunner", "run_unit"]

#: Progress callback signature.
ProgressCallback = Callable[["CellEvent"], None]

#: A unit in flight: (slot index, spec, seed).
_Unit = Tuple[int, ExperimentSpec, int]

#: Target dispatch chunks per worker per run_many call.  Cells vary 50x
#: in cost (LAN revalidate vs PPP first-time), so several chunks per
#: worker keep the tail balanced while still batching IPC.
_CHUNKS_PER_WORKER = 4


@dataclasses.dataclass(frozen=True)
class CellEvent:
    """One work-unit progress event, reported to the callback."""

    spec: ExperimentSpec
    seed: int
    #: ``"hit"`` (served from cache or journal), ``"run"`` (simulated),
    #: ``"retried"`` (a failed attempt re-dispatched by the supervisor;
    #: does not advance ``completed``) or ``"failed"`` (quarantined as
    #: a :class:`~repro.core.runner.UnitFailure`).
    status: str
    #: Wall-clock seconds spent simulating (0.0 for cache hits).
    wall_time: float
    completed: int
    total: int
    #: Execution attempt this event reports (1 for first tries, hits
    #: and journal replays; >1 for supervised retries and the failures
    #: that exhausted them).
    attempt: int = 1

    @property
    def label(self) -> str:
        return self.spec.label


@dataclasses.dataclass
class MatrixStats:
    """Counters accumulated across a runner's lifetime."""

    specs: int = 0
    units: int = 0
    sim_runs: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    wall_time: float = 0.0
    #: Artifact-store hits/misses observed while executing units and
    #: during the parent-side pool warm-up build (the encode
    #: memoization of :mod:`repro.content.artifacts`).
    artifact_hits: int = 0
    artifact_misses: int = 0
    #: Dispatch chunks sent to the pool (0 for serial execution).
    ipc_batches: int = 0
    #: Bytes of pickled unit payload shipped to workers.
    bytes_pickled: int = 0
    #: Units quarantined as :class:`~repro.core.runner.UnitFailure`.
    failures: int = 0
    #: Supervised re-dispatches of failed attempts (every rung of the
    #: retry ladder counts, including the final serial one).
    unit_retries: int = 0
    #: Pool teardown-and-respawn cycles forced by dead or hung workers.
    pool_respawns: int = 0
    #: Units replayed from a :class:`~repro.matrix.journal.RunJournal`
    #: instead of simulated (resumed runs).
    journal_hits: int = 0
    #: Simulation wall seconds per (cell label, seed).
    unit_wall_times: Dict[Tuple[str, int], float] = dataclasses.field(
        default_factory=dict)

    def summary(self) -> str:
        return (f"{self.specs} cells, {self.units} runs requested: "
                f"{self.sim_runs} simulated, {self.cache_hits} cache "
                f"hits, {self.cache_misses} misses, "
                f"{self.wall_time:.1f} s wall; artifacts "
                f"{self.artifact_hits} hit/{self.artifact_misses} miss; "
                f"{self.ipc_batches} ipc batches, "
                f"{self.bytes_pickled} bytes pickled; "
                f"{self.failures} failed, {self.unit_retries} retried, "
                f"{self.pool_respawns} pool respawns, "
                f"{self.journal_hits} journal hits")


def run_unit(spec: ExperimentSpec, seed: int) -> Tuple[object, float]:
    """Execute one (cell, seed) unit; returns (result, wall seconds).

    The worker process holds no simulation state from the parent:
    ``run_experiment`` resolves the spec's names through the registry
    and builds (or reuses its own process-local memo of) the site and
    resource store.  The returned result carries the numeric
    measurement columns only (``fetch=None, trace=None``) — the same
    shape the cache hydrates — so serial, parallel and cached paths are
    interchangeable.

    Specs that are not protocol cells (fleet cohort units) supply their
    own ``execute_unit(seed)``; the runner, supervisor, cache and
    journal treat their results opaquely via the registered codec.
    """
    execute = getattr(spec, "execute_unit", None)
    if execute is not None:
        start = time.perf_counter()
        result = execute(seed)
        return result, time.perf_counter() - start
    start = time.perf_counter()
    result = run_experiment(
        spec.mode, spec.scenario,
        environment=spec.environment, profile=spec.server,
        seed=seed, jitter=spec.jitter,
        client_config=spec.client_config(),
        verify=spec.verify, max_sim_time=spec.max_sim_time,
        faults=spec.faults, fastpath=spec.fastpath)
    wall = time.perf_counter() - start
    stripped = dataclasses.replace(result, fetch=None, trace=None)
    return stripped, wall


def _pool_initializer(artifact_state: Dict[str, object],
                      warm: bool) -> None:
    """Configure and warm a pool worker at spawn time.

    Applies the parent's artifact-store configuration (same blob
    directory, same enabled flag) and pre-builds the default site so
    the worker's first unit starts simulating immediately.  Under the
    ``fork`` start method the parent's already-built site arrives via
    copy-on-write and both steps are near-free no-ops.
    """
    artifacts.configure(**artifact_state)
    if warm:
        warm_default_site()


def _pool_chunk_entry(chunk: Sequence[_Unit]
                      ) -> Tuple[List[Tuple[int, RunResult, float]],
                                 Tuple[int, int]]:
    """Run a chunk of units in a worker; one IPC round-trip per chunk.

    Returns the per-unit results plus the artifact-store (hits, misses)
    delta this chunk produced in the worker, so the parent can
    aggregate encode-memoization effectiveness across the pool.
    """
    stats = artifacts.get_store().stats
    hits, misses = stats.hits, stats.misses
    results = []
    for index, spec, seed in chunk:
        result, wall = run_unit(spec, seed)
        results.append((index, result, wall))
    return results, (stats.hits - hits, stats.misses - misses)


class MatrixRunner:
    """Runs experiment specs, in parallel when asked, cached when told.

    Parameters
    ----------
    jobs:
        Worker process count.  ``1`` (the default) runs everything
        serially in-process; ``None`` or ``0`` means one per CPU.
        Results are identical either way.
    cache:
        Optional :class:`ResultCache`; hits skip simulation entirely.
    progress:
        Optional callback invoked with a :class:`CellEvent` as each
        unit resolves (cache hits first, then runs as they finish).
    chunk_size:
        Units per dispatch chunk.  ``None`` (the default) adapts to the
        batch: roughly :data:`_CHUNKS_PER_WORKER` chunks per worker.
    warm:
        Pre-build the default Microscape site in the parent and in each
        worker on spawn.  Disable only in tests that count builds.
    journal:
        Optional :class:`~repro.matrix.journal.RunJournal` (or a run-id
        string).  Resolved units are recorded as they complete, and
        already-journaled units replay instead of re-running, so an
        interrupted grid resumes byte-identically.
    retry_budget:
        Parallel re-dispatches the supervisor allows per failing unit
        before downgrading (serial retry for exceptions, quarantine for
        deadline / lost-worker faults).
    unit_deadline:
        Wall-clock seconds one unit may run in a worker before the
        supervisor declares it hung.  ``None`` derives the budget from
        each spec's ``max_sim_time``
        (× :data:`~repro.matrix.supervisor.DEADLINE_GRACE`).
    harness_faults:
        Optional :class:`~repro.faults.harness.HarnessFaultPlan` (or
        plan name) injecting scripted machine faults — for the chaos
        harness and the robustness tests.

    The pool spawned for the first parallel ``run_many()`` is reused by
    every later call; ``close()`` (or a ``with`` block) releases it.
    """

    __slots__ = ("jobs", "cache", "progress", "stats", "chunk_size",
                 "warm", "journal", "retry_budget", "unit_deadline",
                 "harness_faults", "_pool", "_pool_workers", "_progress")

    def __init__(self, jobs: Optional[int] = 1, *,
                 cache: Optional[ResultCache] = None,
                 progress: Optional[ProgressCallback] = None,
                 chunk_size: Optional[int] = None,
                 warm: bool = True,
                 journal: "Optional[RunJournal | str]" = None,
                 retry_budget: int = DEFAULT_RETRY_BUDGET,
                 unit_deadline: Optional[float] = None,
                 harness_faults: "Optional[HarnessFaultPlan | str]" = None
                 ) -> None:
        if not jobs:
            jobs = os.cpu_count() or 1
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.progress = progress
        self.chunk_size = chunk_size
        self.warm = warm
        if isinstance(journal, str):
            journal = RunJournal(journal)
        self.journal = journal
        self.retry_budget = max(0, int(retry_budget))
        self.unit_deadline = unit_deadline
        self.harness_faults = resolve_harness_plan(harness_faults)
        self.stats = MatrixStats()
        self._pool: Optional[multiprocessing.pool.Pool] = None
        self._pool_workers = 0
        self._progress = (0, 0)

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> "multiprocessing.pool.Pool":
        """The persistent pool, spawning (and warming) it on first use."""
        if self._pool is None:
            if self.warm:
                # Build before forking: fork-start workers inherit the
                # site copy-on-write instead of each building their own.
                store_stats = artifacts.get_store().stats
                hits, misses = store_stats.hits, store_stats.misses
                warm_default_site()
                self.stats.artifact_hits += store_stats.hits - hits
                self.stats.artifact_misses += store_stats.misses - misses
            self._pool = multiprocessing.Pool(
                processes=self.jobs,
                initializer=_pool_initializer,
                initargs=(artifacts.store_state(), self.warm))
            self._pool_workers = self.jobs
        return self._pool

    def _respawn_pool(self) -> "multiprocessing.pool.Pool":
        """Tear down a faulted pool and spawn a fresh replacement.

        ``terminate()`` rather than ``close()``: a hung worker would
        never drain its task, and a dead one may have taken queue state
        with it.  The replacement becomes the persistent pool, so later
        ``run_many`` calls inherit the healthy one.
        """
        pool, self._pool = self._pool, None
        self._pool_workers = 0
        if pool is not None:
            pool.terminate()
            pool.join()
        self.stats.pool_respawns += 1
        return self._ensure_pool()

    def close(self) -> None:
        """Release the worker pool (idempotent; a later run respawns)."""
        pool, self._pool = self._pool, None
        self._pool_workers = 0
        if pool is None:
            return
        workers = getattr(pool, "_pool", None) or []
        if any(getattr(p, "exitcode", None) is not None
               for p in workers):
            # A dead worker can leave a graceful close() joining on a
            # task that will never finish; terminate reaps what's left.
            pool.terminate()
        else:
            pool.close()
        pool.join()

    def __enter__(self) -> "MatrixRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        pool = getattr(self, "_pool", None)
        if pool is not None:
            # Interpreter-teardown path: terminate, then reap — an
            # unjoined pool leaks its workers past the parent's exit.
            try:
                pool.terminate()
                pool.join()
            except Exception:
                pass

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, spec: ExperimentSpec) -> AveragedResult:
        """Run (or recall) one spec; mean of its seeds."""
        return self.run_many([spec])[0]

    def run_many(self, specs: Sequence[ExperimentSpec]
                 ) -> List[AveragedResult]:
        """Run a batch of specs, fanning all their units out together.

        Batching matters: a six-table report hands the pool every
        (cell, seed) unit at once instead of draining one row before
        starting the next.
        """
        started = time.perf_counter()
        units: List[Tuple[ExperimentSpec, int]] = [
            (spec, seed) for spec in specs for seed in spec.seeds]
        slots: List[object] = [None] * len(units)
        total = len(units)
        completed = 0

        journal_records = None
        if self.journal is not None:
            self.journal.begin()
            journal_records = self.journal.load()

        pending: List[int] = []
        for index, (spec, seed) in enumerate(units):
            if journal_records is not None:
                record = journal_records.get(
                    unit_key(spec, seed, version=self.journal.version))
                outcome = (RunJournal.hydrate(record)
                           if record is not None else None)
                if outcome is not None:
                    # Journal replay wins over the cache: it preserves
                    # quarantine verdicts too, not just measurements.
                    slots[index] = outcome
                    completed += 1
                    self.stats.journal_hits += 1
                    if isinstance(outcome, UnitFailure):
                        self.stats.failures += 1
                        self._emit(spec, seed, "failed", 0.0, completed,
                                   total, attempt=outcome.attempts)
                    else:
                        self._emit(spec, seed, "hit", 0.0, completed,
                                   total)
                    continue
            cached = (self.cache.get(spec, seed)
                      if self.cache is not None else None)
            if cached is not None:
                slots[index] = cached
                completed += 1
                self.stats.cache_hits += 1
                if self.journal is not None:
                    self.journal.record_result(spec, seed, cached)
                self._emit(spec, seed, "hit", 0.0, completed, total)
            else:
                if self.cache is not None:
                    self.stats.cache_misses += 1
                pending.append(index)

        self._progress = (completed, total)
        for batch in self._execute(units, pending):
            if self.cache is not None:
                self.cache.put_many(
                    (units[index][0], units[index][1], outcome)
                    for index, outcome, _ in batch
                    if not isinstance(outcome, UnitFailure))
            for index, outcome, wall in batch:
                spec, seed = units[index]
                slots[index] = outcome
                completed += 1
                if isinstance(outcome, UnitFailure):
                    self.stats.failures += 1
                    if self.journal is not None:
                        self.journal.record_failure(spec, seed, outcome)
                    self._emit(spec, seed, "failed", wall, completed,
                               total, attempt=outcome.attempts)
                else:
                    self.stats.sim_runs += 1
                    self.stats.unit_wall_times[(spec.label, seed)] = wall
                    if self.journal is not None:
                        self.journal.record_result(spec, seed, outcome)
                    self._emit(spec, seed, "run", wall, completed, total)
                self._progress = (completed, total)

        self.stats.specs += len(specs)
        self.stats.units += total
        self.stats.wall_time += time.perf_counter() - started

        averaged: List[AveragedResult] = []
        cursor = 0
        for spec in specs:
            cell = slots[cursor:cursor + spec.runs]
            cursor += spec.runs
            runs = [r for r in cell
                    if r is not None and not isinstance(r, UnitFailure)]
            failures = [f for f in cell if isinstance(f, UnitFailure)]
            averaged.append(AveragedResult(runs, failures=failures))
        return averaged

    # ------------------------------------------------------------------
    # Execution strategies
    # ------------------------------------------------------------------
    def _execute(self, units, pending
                 ) -> Iterator[List[Tuple[int, object, float]]]:
        """Yield batches of (index, outcome, wall) covering ``pending``.

        Outcomes are stripped :class:`RunResult` objects or quarantined
        :class:`UnitFailure` records.  Serial execution yields one
        single-unit batch at a time (cache writes stay incremental);
        pool execution delegates to the supervisor, which yields one
        batch per resolved dispatch chunk.
        """
        if not pending:
            return
        if self.jobs <= 1 or len(pending) <= 1:
            store_stats = artifacts.get_store().stats
            hits, misses = store_stats.hits, store_stats.misses
            try:
                for index in pending:
                    spec, seed = units[index]
                    try:
                        if self.harness_faults is not None:
                            self.harness_faults.apply(index, seed, 1)
                        result, wall = run_unit(spec, seed)
                    except Exception as exc:
                        # Serial in-parent execution IS the ladder's
                        # final rung: quarantine immediately.
                        yield [(index, UnitFailure.from_exception(
                            spec.label, seed, exc, attempts=1), 0.0)]
                    else:
                        yield [(index, result, wall)]
            finally:
                # try/finally so a consumer that stops early (or a
                # raising unit, before failures were quarantined) can
                # not lose the artifact hit/miss delta.
                self.stats.artifact_hits += store_stats.hits - hits
                self.stats.artifact_misses += \
                    store_stats.misses - misses
            return
        payload = [(index, units[index][0], units[index][1])
                   for index in pending]
        supervisor = Supervisor(self, retry_budget=self.retry_budget,
                                unit_deadline=self.unit_deadline,
                                plan=self.harness_faults)
        yield from supervisor.execute(payload)

    def _chunked(self, payload: List[_Unit]) -> Iterator[List[_Unit]]:
        """Split the pending units into dispatch chunks."""
        size = self.chunk_size
        if size is None:
            size = math.ceil(len(payload)
                             / (self.jobs * _CHUNKS_PER_WORKER))
        size = max(1, int(size))
        for start in range(0, len(payload), size):
            yield payload[start:start + size]

    def _emit(self, spec, seed, status, wall, completed, total, *,
              attempt: int = 1) -> None:
        if self.progress is not None:
            self.progress(CellEvent(spec=spec, seed=seed, status=status,
                                    wall_time=wall, completed=completed,
                                    total=total, attempt=attempt))

    def _emit_retry(self, spec, seed, attempt: int) -> None:
        """Report a supervised re-dispatch (called by the supervisor)."""
        self.stats.unit_retries += 1
        completed, total = self._progress
        self._emit(spec, seed, "retried", 0.0, completed, total,
                   attempt=attempt)
