"""Declarative experiment specifications and grid expansion.

An :class:`ExperimentSpec` names one cell of the paper's experiment
grid — protocol mode, scenario, network environment, server — plus the
seeds to average over, the link jitter, and any client-configuration
overrides.  All four axes accept canonical string names resolved by
:mod:`repro.core.registry`; the spec stores the canonical strings, so
two specs that mean the same experiment compare (and hash) equal, which
is what the on-disk result cache keys off.

:class:`ExperimentMatrix` is the cartesian product of the axes:
``expand()`` yields one spec per (mode, scenario, environment, server)
combination, in table order.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import (Any, Dict, Iterator, List, Mapping, Sequence, Tuple,
                    Union)

from ..client.robot import ClientConfig
from ..core.modes import ALL_MODES, ProtocolMode
from ..core.registry import (TABLE_CELLS, UnknownNameError,
                             modes_for_environment,
                             resolve_environment, resolve_mode,
                             resolve_profile, resolve_scenario)
from ..core.runner import DEFAULT_JITTER
from ..server.profiles import ServerProfile
from ..simnet.link import NetworkEnvironment

__all__ = ["CACHE_KEY_FIELDS", "DEFAULT_SEEDS", "ExperimentSpec",
           "ExperimentMatrix", "client_config_overrides"]

#: The paper averaged five seeded runs per cell.
DEFAULT_SEEDS: Tuple[int, ...] = (0, 1, 2, 3, 4)

#: The spec fields that form a cell's cache identity, in canonical
#: order.  ``canonical_dict()`` emits exactly these; the deep linter's
#: cache-key-completeness pass checks every run-affecting spec field is
#: listed here (``seeds`` is deliberately absent — the cache keys each
#: (cell, seed) unit separately, so seeds select units rather than
#: identify the cell).
CACHE_KEY_FIELDS: Tuple[str, ...] = (
    "mode", "scenario", "environment", "server", "jitter",
    "client_overrides", "verify", "max_sim_time", "faults", "fastpath",
)

_CLIENT_FIELDS = {field.name for field in
                  dataclasses.fields(ClientConfig)}

Modeish = Union[str, ProtocolMode]
Environmentish = Union[str, NetworkEnvironment]
Serverish = Union[str, ServerProfile]


def _freeze(value: Any) -> Any:
    """Canonicalize an override value into a hashable form."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    if isinstance(value, (str, int, float, bool, type(None))):
        return value
    raise TypeError(f"client override values must be scalars or "
                    f"sequences, got {type(value).__name__}")


def _canonical_overrides(overrides) -> Tuple[Tuple[str, Any], ...]:
    if isinstance(overrides, Mapping):
        items = list(overrides.items())
    else:
        items = [tuple(pair) for pair in overrides]
    canon = []
    for name, value in sorted(items):
        if name not in _CLIENT_FIELDS:
            raise UnknownNameError(
                f"unknown client config field {name!r} (choose from: "
                f"{', '.join(sorted(_CLIENT_FIELDS))})")
        canon.append((name, _freeze(value)))
    return tuple(canon)


def client_config_overrides(mode: Modeish,
                            config: ClientConfig
                            ) -> Tuple[Tuple[str, Any], ...]:
    """Express ``config`` as overrides of ``mode``'s default config.

    The returned pairs satisfy ``replace(mode_config, **overrides) ==
    config`` field for field, which is how a fully custom client (a
    browser profile, the pre-tuning robot) becomes a declarative,
    hashable spec.
    """
    base = dataclasses.asdict(resolve_mode(mode).client_config())
    wanted = dataclasses.asdict(config)
    return tuple(sorted((name, _freeze(value))
                        for name, value in wanted.items()
                        if _freeze(value) != _freeze(base[name])))


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """One fully specified cell of the experiment grid.

    Axis fields accept objects or names and are stored canonicalized
    (``"pipelined"`` becomes ``"HTTP/1.1 Pipelined"``), so equal
    experiments are equal specs.
    """

    mode: str = "HTTP/1.1 Pipelined"
    scenario: str = "first-time"
    environment: str = "LAN"
    server: str = "Apache"
    seeds: Tuple[int, ...] = DEFAULT_SEEDS
    jitter: float = DEFAULT_JITTER
    client_overrides: Tuple[Tuple[str, Any], ...] = ()
    verify: bool = True
    max_sim_time: float = 1200.0
    #: Named :class:`~repro.faults.FaultPlan` injected into each run
    #: (None = the clean, golden-trace-identical configuration).
    faults: Any = None
    #: Allow the flow-level fast-forward driver.  Results are
    #: byte-identical either way, but the recorded
    #: :class:`~repro.perf.PerfCounters` work profile is not, so the
    #: flag is part of the cache key.
    fastpath: bool = True

    def __post_init__(self) -> None:
        set_ = object.__setattr__
        set_(self, "mode", resolve_mode(self.mode).name)
        set_(self, "scenario", resolve_scenario(self.scenario))
        set_(self, "environment",
             resolve_environment(self.environment).name)
        set_(self, "server", resolve_profile(self.server).name)
        seeds = self.seeds
        if isinstance(seeds, int):
            seeds = (seeds,)
        set_(self, "seeds", tuple(int(seed) for seed in seeds))
        if not self.seeds:
            raise ValueError("spec needs at least one seed")
        set_(self, "jitter", float(self.jitter))
        set_(self, "client_overrides",
             _canonical_overrides(self.client_overrides))
        set_(self, "verify", bool(self.verify))
        set_(self, "max_sim_time", float(self.max_sim_time))
        set_(self, "fastpath", bool(self.fastpath))
        if self.faults is not None:
            # Store the canonical plan *name*: specs stay hashable and
            # JSON-serializable, and the registry resolves it at run
            # time.  Unknown names fail here, at construction.
            from ..faults import resolve_fault_plan
            set_(self, "faults", resolve_fault_plan(self.faults).name)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolved_mode(self) -> ProtocolMode:
        return resolve_mode(self.mode)

    def resolved_environment(self) -> NetworkEnvironment:
        return resolve_environment(self.environment)

    def resolved_profile(self) -> ServerProfile:
        return resolve_profile(self.server)

    def client_config(self) -> ClientConfig:
        """The mode's configuration with this spec's overrides applied."""
        base = self.resolved_mode().client_config()
        return dataclasses.replace(base, **dict(self.client_overrides))

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def runs(self) -> int:
        return len(self.seeds)

    @property
    def label(self) -> str:
        """Compact human label for progress output."""
        return (f"{self.mode} | {self.scenario} | {self.environment} "
                f"| {self.server}")

    def units(self) -> Iterator[Tuple["ExperimentSpec", int]]:
        """The (cell, seed) work units this spec expands to."""
        for seed in self.seeds:
            yield self, seed

    def canonical_dict(self) -> Dict[str, Any]:
        """JSON-stable identity of the cell, *excluding* seeds.

        Seeds select work units within the cell; the cache keys each
        (cell, seed) unit separately so re-averaging over a different
        seed list reuses every unit already measured.
        """
        out: Dict[str, Any] = {}
        for name in CACHE_KEY_FIELDS:
            value = getattr(self, name)
            if name == "client_overrides":
                value = [[key, item] for key, item in value]
            out[name] = value
        return out

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def for_client_config(cls, mode: Modeish, scenario: str,
                          environment: Environmentish, server: Serverish,
                          config: ClientConfig,
                          **kwargs) -> "ExperimentSpec":
        """Build a spec whose client is exactly ``config``.

        The config is stored as overrides of the mode's default, so the
        spec stays declarative and cache-keyable.
        """
        return cls(mode=mode, scenario=scenario, environment=environment,
                   server=server,
                   client_overrides=client_config_overrides(mode, config),
                   **kwargs)

    def replace(self, **changes) -> "ExperimentSpec":
        """A copy with ``changes`` applied (axes re-canonicalized)."""
        return dataclasses.replace(self, **changes)


@dataclasses.dataclass(frozen=True)
class ExperimentMatrix:
    """A cartesian grid of experiment cells.

    ``expand()`` emits specs in table order — server, then environment,
    then mode, then scenario — matching how the paper lays out
    Tables 4-9.
    """

    modes: Tuple[str, ...] = tuple(mode.name for mode in ALL_MODES)
    scenarios: Tuple[str, ...] = ("first-time", "revalidate")
    environments: Tuple[str, ...] = ("LAN", "WAN", "PPP")
    servers: Tuple[str, ...] = ("Jigsaw", "Apache")
    seeds: Tuple[int, ...] = DEFAULT_SEEDS
    jitter: float = DEFAULT_JITTER
    client_overrides: Tuple[Tuple[str, Any], ...] = ()
    verify: bool = True

    def __post_init__(self) -> None:
        set_ = object.__setattr__

        def axis(value, resolver, attribute):
            values = (value,) if isinstance(value, str) else tuple(value)
            resolved = tuple(getattr(resolver(v), attribute)
                             for v in values)
            if not resolved:
                raise ValueError("matrix axes cannot be empty")
            if len(set(resolved)) != len(resolved):
                raise ValueError(f"duplicate axis entries: {resolved}")
            return resolved

        set_(self, "modes", axis(self.modes, resolve_mode, "name"))
        set_(self, "environments",
             axis(self.environments, resolve_environment, "name"))
        set_(self, "servers", axis(self.servers, resolve_profile, "name"))
        scenarios = ((self.scenarios,) if isinstance(self.scenarios, str)
                     else tuple(self.scenarios))
        resolved = tuple(resolve_scenario(s) for s in scenarios)
        if len(set(resolved)) != len(resolved):
            raise ValueError(f"duplicate scenarios: {resolved}")
        set_(self, "scenarios", resolved)
        seeds = self.seeds
        if isinstance(seeds, int):
            seeds = (seeds,)
        set_(self, "seeds", tuple(int(seed) for seed in seeds))
        set_(self, "jitter", float(self.jitter))
        set_(self, "client_overrides",
             _canonical_overrides(self.client_overrides))

    def __len__(self) -> int:
        return (len(self.modes) * len(self.scenarios)
                * len(self.environments) * len(self.servers))

    def expand(self) -> List[ExperimentSpec]:
        """All cells of the grid, in table order."""
        return [
            ExperimentSpec(mode=mode, scenario=scenario,
                           environment=environment, server=server,
                           seeds=self.seeds, jitter=self.jitter,
                           client_overrides=self.client_overrides,
                           verify=self.verify)
            for server, environment, mode, scenario in itertools.product(
                self.servers, self.environments, self.modes,
                self.scenarios)
        ]

    @classmethod
    def for_table(cls, number: int, *,
                  seeds: Sequence[int] = DEFAULT_SEEDS
                  ) -> "ExperimentMatrix":
        """The grid behind one of the paper's protocol tables (4-9).

        Honors the paper's row structure: the PPP tables omit HTTP/1.0.
        """
        if number not in TABLE_CELLS:
            raise UnknownNameError(
                f"unknown protocol table {number!r} (choose from: "
                f"{', '.join(str(n) for n in sorted(TABLE_CELLS))})")
        server, environment = TABLE_CELLS[number]
        return cls(modes=tuple(
                       mode.name for mode in modes_for_environment(
                           environment, paper_only=True)),
                   environments=(environment,), servers=(server,),
                   seeds=tuple(seeds))
