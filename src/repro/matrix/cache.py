"""Content-addressed on-disk cache for experiment results.

Every (cell, seed) work unit is keyed by the SHA-256 of its spec's
canonical JSON plus the seed and the package version, so a repeated
``python -m repro report --cache`` run performs zero simulation — and
any change to the spec (jitter, overrides, mode, version bump)
automatically misses and re-measures.  Entries are JSON files under
``.repro-cache/``, one per unit, written atomically.

Cached entries store the numeric measurement columns of
:class:`~repro.core.runner.RunResult` (everything the tables and
benchmarks consume); the per-run packet trace and fetch transcript are
not serialized, so hydrated results carry ``fetch=None, trace=None`` —
exactly what :class:`~repro.matrix.runner.MatrixRunner` returns for
fresh runs too, keeping cached and simulated results interchangeable.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Tuple, Union

from .. import __version__
from ..core.runner import RunResult
from .spec import ExperimentSpec

__all__ = ["DEFAULT_CACHE_DIR", "ResultCache", "unit_key",
           "result_to_payload", "result_from_payload",
           "register_result_codec", "encode_result", "decode_result",
           "UnknownResultKind"]

DEFAULT_CACHE_DIR = ".repro-cache"

#: Process-unique temp-file suffixes: the pid alone is not enough when
#: two runners in one process (threads, nested reports) share a cache.
_TMP_COUNTER = itertools.count()

#: The measurement columns a cache entry preserves.
RESULT_FIELDS = (
    "packets", "payload_bytes", "percent_overhead", "elapsed",
    "packets_client_to_server", "packets_server_to_client",
    "connections_used", "max_parallel_connections", "retries",
    "server_cpu_seconds", "mean_packets_per_connection",
    "mean_packet_size", "mean_request_bytes",
    "dropped_loss", "dropped_overflow", "retransmissions", "timeouts",
    "fast_retransmits", "checksum_drops",
)


def unit_key(spec: ExperimentSpec, seed: int, *,
             version: str = __version__) -> str:
    """Stable content hash identifying one (cell, seed) work unit.

    The shared identity of the result cache and the run journal: the
    SHA-256 of the spec's canonical JSON plus the seed and the package
    version, so any change to the experiment (or a version bump)
    yields a different unit.
    """
    identity = {
        "version": version,
        "seed": int(seed),
        "spec": spec.canonical_dict(),
    }
    blob = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def result_to_payload(result: RunResult) -> Dict[str, Any]:
    """Serialize the numeric measurement columns of a run."""
    payload = {name: getattr(result, name) for name in RESULT_FIELDS}
    payload["statuses"] = {str(status): count
                           for status, count in result.statuses.items()}
    return payload


def result_from_payload(payload: Dict[str, Any]) -> RunResult:
    """Hydrate a cached measurement (no trace / fetch transcript)."""
    fields = {name: payload[name] for name in RESULT_FIELDS}
    statuses = {int(status): count
                for status, count in payload["statuses"].items()}
    return RunResult(statuses=statuses, fetch=None, trace=None, **fields)


# ----------------------------------------------------------------------
# Result codecs: non-RunResult unit results (fleet cohorts) ride the
# same cache/journal machinery via a ``__kind__`` payload discriminator.
# ----------------------------------------------------------------------

class UnknownResultKind(Exception):
    """A payload names a result codec this process has not registered.

    Deliberately *not* a ValueError/KeyError subclass: the cache's
    heal-on-read path unlinks entries that fail to parse, and an entry
    written by a process that had the codec loaded is valid data, not
    corruption — readers must treat it as a miss and leave it on disk.
    """


#: kind -> (result class, to_payload, from_payload).
_RESULT_CODECS: Dict[str, Tuple[type, Any, Any]] = {}


def register_result_codec(kind: str, cls: type, to_payload,
                          from_payload) -> None:
    """Register a serializer for a non-RunResult unit result type.

    ``to_payload(result)`` must return a JSON-safe dict (the ``__kind__``
    key is added here); ``from_payload(payload)`` must invert it.
    Re-registering the same kind replaces the codec (idempotent import).
    """
    _RESULT_CODECS[kind] = (cls, to_payload, from_payload)


def encode_result(result: Any) -> Dict[str, Any]:
    """Serialize any registered result type (RunResult stays legacy-shaped)."""
    if isinstance(result, RunResult):
        return result_to_payload(result)
    for kind, (cls, to_payload, _from_payload) in _RESULT_CODECS.items():
        if isinstance(result, cls):
            payload = to_payload(result)
            payload["__kind__"] = kind
            return payload
    raise TypeError(f"no result codec registered for "
                    f"{type(result).__name__}")


def decode_result(payload: Dict[str, Any]) -> Any:
    """Invert :func:`encode_result` via the ``__kind__`` discriminator."""
    kind = payload.get("__kind__")
    if kind is None:
        return result_from_payload(payload)
    entry = _RESULT_CODECS.get(kind)
    if entry is None:
        raise UnknownResultKind(kind)
    return entry[2](payload)


class ResultCache:
    """JSON result store keyed by stable spec + seed + version hashes."""

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR, *,
                 version: str = __version__) -> None:
        self.root = Path(root)
        self.version = version

    # ------------------------------------------------------------------
    # Keys and paths
    # ------------------------------------------------------------------
    def key(self, spec: ExperimentSpec, seed: int) -> str:
        """Stable content hash of one (cell, seed) work unit."""
        return unit_key(spec, seed, version=self.version)

    def path(self, spec: ExperimentSpec, seed: int) -> Path:
        return self.root / f"{self.key(spec, seed)}.json"

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def get(self, spec: ExperimentSpec, seed: int) -> Optional[Any]:
        """The cached result for the unit, or None on a miss.

        Unreadable or corrupt entries count as misses.  A corrupted or
        truncated file (a crash mid-disk-flush, a bit flip) is also
        unlinked on sight, so the directory never accumulates poisoned
        entries: the next :meth:`put` / :meth:`put_many` writes a clean
        replacement through the same atomic temp-then-rename path.
        """
        path = self.path(spec, seed)
        try:
            payload = json.loads(path.read_text())
            return decode_result(payload["result"])
        except OSError:
            return None
        except UnknownResultKind:
            # Valid entry from a process with more codecs loaded: a
            # miss, but not corruption — leave it on disk.
            return None
        except (ValueError, KeyError, TypeError):
            # The file exists but does not parse into a result: heal by
            # removal (best-effort — a racing writer may have already
            # replaced it with a good entry).
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, spec: ExperimentSpec, seed: int,
            result: Any) -> None:
        """Store a unit's measurements atomically.

        Each write lands in a uniquely named temp file (pid + in-process
        counter) finished with an atomic :func:`os.replace`, so any
        number of runners — threads or processes — sharing one cache
        directory can race on the same unit: readers only ever see
        complete entries, and the content-addressed key means every
        racer writes identical measurements anyway.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(spec, seed)
        entry = {
            "version": self.version,
            "seed": int(seed),
            "spec": spec.canonical_dict(),
            "result": encode_result(result),
        }
        tmp = path.with_suffix(
            f".tmp.{os.getpid()}.{next(_TMP_COUNTER)}")
        tmp.write_text(json.dumps(entry, sort_keys=True, indent=1))
        os.replace(tmp, path)

    def put_many(self, entries: Iterable[Tuple[ExperimentSpec, int,
                                               Any]]) -> int:
        """Store a batch of units; returns how many were written.

        The batched flush the :class:`~repro.matrix.runner.MatrixRunner`
        issues once per dispatch chunk instead of once per unit; each
        entry keeps the same crash-safe write-temp-then-rename path, so
        a crash mid-batch leaves previously flushed entries intact and
        never a torn file.
        """
        written = 0
        for spec, seed, result in entries:
            self.put(spec, seed, result)
            written += 1
        return written

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink()
                removed += 1
        return removed
