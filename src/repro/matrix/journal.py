"""Crash-safe run journals: resumable experiment grids.

A :class:`RunJournal` records every completed work unit of a run —
successes with their full measurement payload, quarantined failures
with their :class:`~repro.core.runner.UnitFailure` — so an
interrupted grid (ctrl-C at hour two, a machine reboot, an OOM-killed
parent) resumes with ``--resume RUN_ID`` instead of starting over.
Resumed units hydrate from the journal byte-for-byte: a resumed run's
:class:`~repro.core.runner.AveragedResult` numbers are identical to
an uninterrupted run's.

Layout (under ``.repro-cache/runs/`` by default)::

    runs/<run_id>/
        manifest.json          # run identity: id + package version
        units/<unit_key>.json  # one atomic record per completed unit

Every record is written temp-then-rename — the same crash-safety
idiom as :meth:`~repro.matrix.cache.ResultCache.put_many` — so a
SIGKILL at any instant leaves either a complete record or no record,
never a torn file.  The journal is append-only in spirit: records are
only ever added (or healed by deletion when corrupt), and the unit
key (spec canonical JSON + seed + package version, shared with the
result cache via :func:`~repro.matrix.cache.unit_key`) guarantees a
stale journal can never contaminate a changed experiment.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import os
import re
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Union

from .. import __version__
from ..core.runner import RunResult, UnitFailure
from .cache import (DEFAULT_CACHE_DIR, UnknownResultKind, decode_result,
                    encode_result, unit_key)
from .spec import ExperimentSpec

__all__ = ["DEFAULT_RUNS_DIR", "RunJournal"]

#: Journals live next to the result cache, one directory per run.
DEFAULT_RUNS_DIR = os.path.join(DEFAULT_CACHE_DIR, "runs")

#: Process-unique temp suffixes (same reasoning as the result cache).
_TMP_COUNTER = itertools.count()

_RUN_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,99}$")

_KEY_RE = re.compile(r"^[0-9a-f]{16,64}$")


class RunJournal:
    """Append-only, atomically written record of one run's units."""

    __slots__ = ("run_id", "root", "version")

    def __init__(self, run_id: str,
                 root: Union[str, Path] = DEFAULT_RUNS_DIR, *,
                 version: str = __version__) -> None:
        if not _RUN_ID_RE.match(run_id):
            raise ValueError(
                f"run id {run_id!r} must be filename-safe "
                f"(letters, digits, '.', '_', '-')")
        self.run_id = run_id
        self.root = Path(root)
        self.version = version

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        return self.root / self.run_id

    @property
    def units_dir(self) -> Path:
        return self.path / "units"

    def _unit_path(self, key: str) -> Path:
        if not _KEY_RE.match(key):
            raise ValueError(f"unit key {key!r} is not a hex digest")
        return self.units_dir / f"{key}.json"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def exists(self) -> bool:
        return (self.path / "manifest.json").is_file()

    def begin(self) -> None:
        """Create the journal directory and manifest (idempotent)."""
        self.units_dir.mkdir(parents=True, exist_ok=True)
        manifest = self.path / "manifest.json"
        if not manifest.is_file():
            self._write_atomic(manifest, {
                "run_id": self.run_id,
                "version": self.version,
            })

    def clear(self) -> int:
        """Delete every unit record; returns how many were removed."""
        removed = 0
        if self.units_dir.is_dir():
            for path in self.units_dir.glob("*.json"):
                path.unlink()
                removed += 1
        return removed

    def __len__(self) -> int:
        if not self.units_dir.is_dir():
            return 0
        return sum(1 for _ in self.units_dir.glob("*.json"))

    # ------------------------------------------------------------------
    # Records
    # ------------------------------------------------------------------
    def record_result(self, spec: ExperimentSpec, seed: int,
                      result: Any) -> None:
        """Record a completed unit's measurements (atomic, idempotent)."""
        self._record(unit_key(spec, seed, version=self.version), {
            "status": "ok",
            "label": spec.label,
            "seed": int(seed),
            "result": encode_result(result),
        })

    def record_failure(self, spec: ExperimentSpec, seed: int,
                       failure: UnitFailure) -> None:
        """Record a quarantined unit so a resume replays the verdict."""
        self._record(unit_key(spec, seed, version=self.version), {
            "status": "failed",
            "label": spec.label,
            "seed": int(seed),
            "failure": dataclasses.asdict(failure),
        })

    def record(self, key: str, payload: Dict[str, Any]) -> None:
        """Record an arbitrary keyed payload (the chaos verb's cells)."""
        self._record(key, dict(payload))

    def _record(self, key: str, payload: Dict[str, Any]) -> None:
        self.begin()
        self._write_atomic(self._unit_path(key), payload)

    def _write_atomic(self, path: Path, payload: Dict[str, Any]) -> None:
        tmp = path.with_suffix(
            f".tmp.{os.getpid()}.{next(_TMP_COUNTER)}")
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=1))
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def load(self) -> Dict[str, Dict[str, Any]]:
        """Every readable unit record, keyed by unit key.

        Corrupt or truncated records (a crash mid-write can not produce
        one, but disks can) are skipped and unlinked, so the unit they
        covered simply re-runs.
        """
        records: Dict[str, Dict[str, Any]] = {}
        if not self.units_dir.is_dir():
            return records
        for path in sorted(self.units_dir.glob("*.json")):
            try:
                payload = json.loads(path.read_text())
                if not isinstance(payload, dict) \
                        or "status" not in payload:
                    raise ValueError("not a unit record")
            except OSError:
                continue
            except (ValueError, KeyError, TypeError):
                try:
                    path.unlink()
                except OSError:
                    pass
                continue
            records[path.stem] = payload
        return records

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """One unit record by key, or None."""
        try:
            payload = json.loads(self._unit_path(key).read_text())
        except (OSError, ValueError, KeyError, TypeError):
            return None
        return payload if isinstance(payload, dict) else None

    @staticmethod
    def hydrate(record: Dict[str, Any]
                ) -> Union[RunResult, UnitFailure, Any]:
        """A journal record → the result (or failure) it preserves.

        Returns None for records whose shape is unrecognized (including
        result kinds whose codec is not loaded), which a resuming run
        treats as "unit not journaled" and re-runs.
        """
        try:
            if record["status"] == "ok":
                return decode_result(record["result"])
            if record["status"] == "failed":
                return UnitFailure(**record["failure"])
        except (KeyError, TypeError, ValueError, UnknownResultKind):
            return None
        return None

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    @classmethod
    def list_runs(cls, root: Union[str, Path] = DEFAULT_RUNS_DIR
                  ) -> Iterable[str]:
        """Run ids with a manifest under ``root``, sorted."""
        root = Path(root)
        if not root.is_dir():
            return []
        return sorted(p.name for p in root.iterdir()
                      if (p / "manifest.json").is_file())
