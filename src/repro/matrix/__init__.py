"""The experiment-matrix engine: declarative specs, parallel execution.

This package turns the paper's 4-modes x 2-scenarios x 3-environments
x 2-servers grid (times five seeds per cell) into data::

    from repro.matrix import ExperimentSpec, MatrixRunner, ResultCache

    spec = ExperimentSpec(mode="pipelined", scenario="revalidate",
                          environment="WAN", server="Apache")
    row = MatrixRunner(jobs=4, cache=ResultCache()).run(spec)
    print(row.packets, row.elapsed)

* :class:`ExperimentSpec` / :class:`ExperimentMatrix` — frozen,
  canonicalized descriptions of cells and grids; string names resolve
  through the same :mod:`repro.core.registry` the CLI uses.
* :class:`MatrixRunner` — fans (cell, seed) units over a
  ``multiprocessing`` pool with a bit-identical serial fallback,
  per-cell wall-time stats and a progress callback.
* :class:`ResultCache` — content-addressed JSON store under
  ``.repro-cache/``; a second ``python -m repro report --cache``
  simulates nothing.
* :class:`~repro.matrix.supervisor.Supervisor` — supervised pool
  execution: per-unit deadlines, dead/hung-worker recovery, capped
  retries and :class:`~repro.core.runner.UnitFailure` quarantine.
* :class:`RunJournal` — crash-safe per-run record of resolved units;
  ``--resume RUN_ID`` replays it byte-identically.
"""

from ..core.registry import (MODE_ALIASES, MODES, PROFILES, TABLE_CELLS,
                             UnknownNameError, resolve_environment,
                             resolve_mode, resolve_profile,
                             resolve_scenario)
from ..core.runner import UnitFailure
from .cache import DEFAULT_CACHE_DIR, ResultCache, unit_key
from .journal import DEFAULT_RUNS_DIR, RunJournal
from .runner import CellEvent, MatrixRunner, MatrixStats, run_unit
from .spec import (CACHE_KEY_FIELDS, DEFAULT_SEEDS, ExperimentMatrix,
                   ExperimentSpec, client_config_overrides)
from .supervisor import DEADLINE_GRACE, DEFAULT_RETRY_BUDGET, Supervisor

__all__ = [
    "MODE_ALIASES", "MODES", "PROFILES", "TABLE_CELLS",
    "UnknownNameError", "resolve_environment", "resolve_mode",
    "resolve_profile", "resolve_scenario",
    "DEFAULT_CACHE_DIR", "ResultCache", "unit_key",
    "DEFAULT_RUNS_DIR", "RunJournal",
    "CellEvent", "MatrixRunner", "MatrixStats", "run_unit",
    "DEADLINE_GRACE", "DEFAULT_RETRY_BUDGET", "Supervisor",
    "UnitFailure",
    "CACHE_KEY_FIELDS", "DEFAULT_SEEDS", "ExperimentMatrix",
    "ExperimentSpec", "client_config_overrides",
]
