"""The experiment-matrix engine: declarative specs, parallel execution.

This package turns the paper's 4-modes x 2-scenarios x 3-environments
x 2-servers grid (times five seeds per cell) into data::

    from repro.matrix import ExperimentSpec, MatrixRunner, ResultCache

    spec = ExperimentSpec(mode="pipelined", scenario="revalidate",
                          environment="WAN", server="Apache")
    row = MatrixRunner(jobs=4, cache=ResultCache()).run(spec)
    print(row.packets, row.elapsed)

* :class:`ExperimentSpec` / :class:`ExperimentMatrix` — frozen,
  canonicalized descriptions of cells and grids; string names resolve
  through the same :mod:`repro.core.registry` the CLI uses.
* :class:`MatrixRunner` — fans (cell, seed) units over a
  ``multiprocessing`` pool with a bit-identical serial fallback,
  per-cell wall-time stats and a progress callback.
* :class:`ResultCache` — content-addressed JSON store under
  ``.repro-cache/``; a second ``python -m repro report --cache``
  simulates nothing.
"""

from ..core.registry import (MODE_ALIASES, MODES, PROFILES, TABLE_CELLS,
                             UnknownNameError, resolve_environment,
                             resolve_mode, resolve_profile,
                             resolve_scenario)
from .cache import DEFAULT_CACHE_DIR, ResultCache
from .runner import CellEvent, MatrixRunner, MatrixStats, run_unit
from .spec import (CACHE_KEY_FIELDS, DEFAULT_SEEDS, ExperimentMatrix,
                   ExperimentSpec, client_config_overrides)

__all__ = [
    "MODE_ALIASES", "MODES", "PROFILES", "TABLE_CELLS",
    "UnknownNameError", "resolve_environment", "resolve_mode",
    "resolve_profile", "resolve_scenario",
    "DEFAULT_CACHE_DIR", "ResultCache",
    "CellEvent", "MatrixRunner", "MatrixStats", "run_unit",
    "CACHE_KEY_FIELDS", "DEFAULT_SEEDS", "ExperimentMatrix",
    "ExperimentSpec", "client_config_overrides",
]
