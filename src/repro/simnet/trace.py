"""tcpdump-style packet trace capture and summarization.

The paper's primary data-gathering tool was ``tcpdump`` on the client
host, post-processed into the Pa / Bytes / Sec / %ov columns of
Tables 3–11.  :class:`TraceCollector` plays the same role for the
simulator: it taps a :class:`~repro.simnet.link.Link`, records one
:class:`PacketRecord` per segment, and computes the same summary
statistics, including per-direction packet counts (Table 3 reports
"packets from client to server" and "packets from server to client"
separately) and packet-train lengths (the paper discusses mean packets
per TCP connection as an Internet-health metric).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from .link import Link
from .packet import HEADER_BYTES, Segment

__all__ = ["PacketRecord", "TraceSummary", "TraceCollector"]


@dataclasses.dataclass(frozen=True)
class PacketRecord:
    """One captured segment, in client-side tcpdump style."""

    time: float
    src: str
    sport: int
    dst: str
    dport: int
    flags: str
    seq: int
    ack: int
    payload_len: int
    wire_size: int

    def format(self, start_time: float = 0.0) -> str:
        """Render one human-readable trace line."""
        return (f"{self.time - start_time:10.6f} {self.src}:{self.sport} > "
                f"{self.dst}:{self.dport} [{self.flags}] seq={self.seq} "
                f"ack={self.ack} len={self.payload_len}")


@dataclasses.dataclass
class TraceSummary:
    """Aggregate statistics over a captured trace.

    ``percent_overhead`` follows the paper's definition: the share of all
    wire bytes consumed by 40-byte TCP/IP headers,
    ``40·Pa / (payload + 40·Pa) × 100``.
    """

    packets: int
    payload_bytes: int
    header_bytes: int
    packets_client_to_server: int
    packets_server_to_client: int
    connections: int
    duration: float
    mean_packets_per_connection: float
    mean_packet_size: float

    @property
    def wire_bytes(self) -> int:
        """Total bytes on the wire including headers."""
        return self.payload_bytes + self.header_bytes

    @property
    def percent_overhead(self) -> float:
        """TCP/IP header overhead as a percentage of wire bytes."""
        if self.wire_bytes == 0:
            return 0.0
        return 100.0 * self.header_bytes / self.wire_bytes


class TraceCollector:
    """Records every segment crossing a link.

    Parameters
    ----------
    link:
        The link to tap.
    client_host:
        Name of the client host, used to split per-direction counts the
        way the paper's client-side traces do.
    """

    def __init__(self, link: Link, client_host: str) -> None:
        self.client_host = client_host
        self.records: List[PacketRecord] = []
        link.taps.append(self._tap)

    def _tap(self, segment: Segment, now: float) -> None:
        self.records.append(PacketRecord(
            time=now, src=segment.src, sport=segment.sport,
            dst=segment.dst, dport=segment.dport,
            flags=segment.flags_str(), seq=segment.seq, ack=segment.ack,
            payload_len=segment.payload_len, wire_size=segment.wire_size))

    def clear(self) -> None:
        """Discard all captured records."""
        self.records.clear()

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def summary(self) -> TraceSummary:
        """Compute paper-style aggregate statistics for the capture."""
        packets = len(self.records)
        payload = sum(r.payload_len for r in self.records)
        header = packets * HEADER_BYTES
        c2s = sum(1 for r in self.records if r.src == self.client_host)
        s2c = packets - c2s
        flows = self._flows()
        duration = (self.records[-1].time - self.records[0].time
                    if self.records else 0.0)
        per_conn = (packets / len(flows)) if flows else 0.0
        mean_size = (payload + header) / packets if packets else 0.0
        return TraceSummary(
            packets=packets, payload_bytes=payload, header_bytes=header,
            packets_client_to_server=c2s, packets_server_to_client=s2c,
            connections=len(flows), duration=duration,
            mean_packets_per_connection=per_conn,
            mean_packet_size=mean_size)

    def _flows(self) -> Dict[Tuple[str, int, str, int], int]:
        """Group records into bidirectional flows (connections)."""
        flows: Dict[Tuple[str, int, str, int], int] = {}
        for record in self.records:
            ends = sorted([(record.src, record.sport),
                           (record.dst, record.dport)])
            key = (ends[0][0], ends[0][1], ends[1][0], ends[1][1])
            flows[key] = flows.get(key, 0) + 1
        return flows

    def packet_train_lengths(self) -> List[int]:
        """Packets per connection, the paper's packet-train metric."""
        return sorted(self._flows().values())

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def format_trace(self, limit: Optional[int] = None) -> str:
        """Render the capture as readable trace lines (like tcpshow)."""
        records = self.records if limit is None else self.records[:limit]
        start = self.records[0].time if self.records else 0.0
        return "\n".join(r.format(start) for r in records)

    def time_sequence(self, src: str) -> List[Tuple[float, int]]:
        """(time, end-sequence) points for segments sent by ``src``.

        This is the data behind an xplot time-sequence graph, the tool
        the paper used to find implementation problems invisible in raw
        dumps.
        """
        start = self.records[0].time if self.records else 0.0
        return [(r.time - start, r.seq + r.payload_len)
                for r in self.records if r.src == src and r.payload_len]
