"""tcpdump-style packet trace capture and summarization.

The paper's primary data-gathering tool was ``tcpdump`` on the client
host, post-processed into the Pa / Bytes / Sec / %ov columns of
Tables 3–11.  :class:`TraceCollector` plays the same role for the
simulator: it taps a :class:`~repro.simnet.link.Link`, records every
segment, and computes the same summary statistics, including
per-direction packet counts (Table 3 reports "packets from client to
server" and "packets from server to client" separately) and
packet-train lengths (the paper discusses mean packets per TCP
connection as an Internet-health metric).

Capture is **columnar**: the tap appends each field to a parallel list
(one ``list.append`` per field) instead of allocating a frozen
:class:`PacketRecord` dataclass per segment — the collector sits on the
per-packet hot path of every simulation.  :attr:`TraceCollector.records`
synthesizes the familiar :class:`PacketRecord` objects on demand (and
memoizes them), so existing consumers — tests, the xplot exporter —
read exactly what they always did, while summaries are computed
straight from the columns.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..perf import PerfCounters
from .link import Link
from .packet import HEADER_BYTES, Segment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.recovery import RecoveryLog

__all__ = ["PacketRecord", "TraceSummary", "TraceCollector"]


@dataclasses.dataclass(frozen=True)
class PacketRecord:
    """One captured segment, in client-side tcpdump style."""

    time: float
    src: str
    sport: int
    dst: str
    dport: int
    flags: str
    seq: int
    ack: int
    payload_len: int
    wire_size: int

    def format(self, start_time: float = 0.0) -> str:
        """Render one human-readable trace line."""
        return (f"{self.time - start_time:10.6f} {self.src}:{self.sport} > "
                f"{self.dst}:{self.dport} [{self.flags}] seq={self.seq} "
                f"ack={self.ack} len={self.payload_len}")


@dataclasses.dataclass
class TraceSummary:
    """Aggregate statistics over a captured trace.

    ``percent_overhead`` follows the paper's definition: the share of all
    wire bytes consumed by 40-byte TCP/IP headers,
    ``40·Pa / (payload + 40·Pa) × 100``.
    """

    packets: int
    payload_bytes: int
    header_bytes: int
    packets_client_to_server: int
    packets_server_to_client: int
    connections: int
    duration: float
    mean_packets_per_connection: float
    mean_packet_size: float
    #: Simulator work counters for the run that produced this trace
    #: (None for hand-built summaries).
    perf: Optional[PerfCounters] = None
    #: Link drops by the random / injected loss process.
    dropped_loss: int = 0
    #: Link drops by drop-tail queue overflow.
    dropped_overflow: int = 0
    #: TCP sender recovery totals, summed over both stacks for the run
    #: (zero on the paper's quiet links).
    retransmissions: int = 0
    timeouts: int = 0
    fast_retransmits: int = 0
    #: Segments discarded at the receiver for a failed payload checksum
    #: (only the fault injector ever stamps checksums).
    checksum_drops: int = 0
    #: Fault / recovery event log for the run, when fault injection was
    #: active (None for clean runs and hand-built summaries).
    recovery: Optional["RecoveryLog"] = None

    @property
    def wire_bytes(self) -> int:
        """Total bytes on the wire including headers."""
        return self.payload_bytes + self.header_bytes

    @property
    def percent_overhead(self) -> float:
        """TCP/IP header overhead as a percentage of wire bytes."""
        if self.wire_bytes == 0:
            return 0.0
        return 100.0 * self.header_bytes / self.wire_bytes


class TraceCollector:
    """Records every segment crossing a link.

    Parameters
    ----------
    link:
        The link to tap.
    client_host:
        Name of the client host, used to split per-direction counts the
        way the paper's client-side traces do.
    """

    __slots__ = ("client_host", "_sim", "_link", "_times", "_srcs",
                 "_sports", "_dsts", "_dports", "_flags", "_seqs", "_acks",
                 "_payload_lens", "_wire_sizes", "_payload_total",
                 "_records_cache")

    def __init__(self, link: Link, client_host: str) -> None:
        self.client_host = client_host
        self._sim = link.sim
        self._link = link
        # Parallel columns, one entry per captured segment.
        self._times: List[float] = []
        self._srcs: List[str] = []
        self._sports: List[int] = []
        self._dsts: List[str] = []
        self._dports: List[int] = []
        self._flags: List[str] = []
        self._seqs: List[int] = []
        self._acks: List[int] = []
        self._payload_lens: List[int] = []
        self._wire_sizes: List[int] = []
        self._payload_total = 0
        self._records_cache: Optional[List[PacketRecord]] = None
        link.taps.append(self._tap)

    def _tap(self, segment: Segment, now: float) -> None:
        self._times.append(now)
        self._srcs.append(segment.src)
        self._sports.append(segment.sport)
        self._dsts.append(segment.dst)
        self._dports.append(segment.dport)
        self._flags.append(segment.flags_str())
        self._seqs.append(segment.seq)
        self._acks.append(segment.ack)
        self._payload_lens.append(segment.payload_len)
        self._wire_sizes.append(segment.wire_size)
        self._payload_total += segment.payload_len
        self._records_cache = None

    def __len__(self) -> int:
        return len(self._times)

    @property
    def records(self) -> List[PacketRecord]:
        """The capture as :class:`PacketRecord` objects (synthesized
        lazily from the columns and memoized until the next packet)."""
        if self._records_cache is None:
            self._records_cache = [
                PacketRecord(*fields) for fields in zip(
                    self._times, self._srcs, self._sports, self._dsts,
                    self._dports, self._flags, self._seqs, self._acks,
                    self._payload_lens, self._wire_sizes)]
        return self._records_cache

    def clear(self) -> None:
        """Discard all captured records."""
        for column in (self._times, self._srcs, self._sports, self._dsts,
                       self._dports, self._flags, self._seqs, self._acks,
                       self._payload_lens, self._wire_sizes):
            column.clear()
        self._payload_total = 0
        self._records_cache = None

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def summary(self) -> TraceSummary:
        """Compute paper-style aggregate statistics for the capture."""
        packets = len(self._times)
        payload = self._payload_total
        header = packets * HEADER_BYTES
        client = self.client_host
        c2s = sum(1 for src in self._srcs if src == client)
        s2c = packets - c2s
        flows = self._flows()
        duration = (self._times[-1] - self._times[0]) if packets else 0.0
        per_conn = (packets / len(flows)) if flows else 0.0
        mean_size = (payload + header) / packets if packets else 0.0
        return TraceSummary(
            packets=packets, payload_bytes=payload, header_bytes=header,
            packets_client_to_server=c2s, packets_server_to_client=s2c,
            connections=len(flows), duration=duration,
            mean_packets_per_connection=per_conn,
            mean_packet_size=mean_size,
            perf=self._sim.perf.snapshot(),
            dropped_loss=self._link.dropped_loss,
            dropped_overflow=self._link.dropped_overflow)

    def _flows(self) -> Dict[Tuple[str, int, str, int], int]:
        """Group records into bidirectional flows (connections)."""
        flows: Dict[Tuple[str, int, str, int], int] = {}
        for src, sport, dst, dport in zip(self._srcs, self._sports,
                                          self._dsts, self._dports):
            if (src, sport) <= (dst, dport):
                key = (src, sport, dst, dport)
            else:
                key = (dst, dport, src, sport)
            flows[key] = flows.get(key, 0) + 1
        return flows

    def packet_train_lengths(self) -> List[int]:
        """Packets per connection, the paper's packet-train metric."""
        return sorted(self._flows().values())

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def format_trace(self, limit: Optional[int] = None) -> str:
        """Render the capture as readable trace lines (like tcpshow)."""
        records = self.records if limit is None else self.records[:limit]
        start = self._times[0] if self._times else 0.0
        return "\n".join(r.format(start) for r in records)

    def time_sequence(self, src: str) -> List[Tuple[float, int]]:
        """(time, end-sequence) points for segments sent by ``src``.

        This is the data behind an xplot time-sequence graph, the tool
        the paper used to find implementation problems invisible in raw
        dumps.
        """
        start = self._times[0] if self._times else 0.0
        return [(t - start, seq + length)
                for t, s, seq, length in zip(self._times, self._srcs,
                                             self._seqs,
                                             self._payload_lens)
                if s == src and length]
