"""TCP segment model and header accounting.

The paper reports packet counts and a ``%ov`` column defined as the
fraction of bytes on the wire that are TCP/IP header overhead.  Every
simulated segment therefore carries an explicit header size (20 bytes of
IPv4 plus 20 bytes of TCP, no options — matching the way the paper's
numbers work out: ``%ov = 40·Pa / (payload + 40·Pa)``).

Segments carry the *actual* application bytes: the simulated TCP layer
delivers real HTTP messages to the application code, so request parsing,
pipelining and compression all operate on genuine byte streams.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

__all__ = [
    "IP_HEADER_BYTES",
    "TCP_HEADER_BYTES",
    "HEADER_BYTES",
    "Segment",
]

#: IPv4 header without options.
IP_HEADER_BYTES = 20
#: TCP header without options.
TCP_HEADER_BYTES = 20
#: Total per-segment overhead used for the paper's ``%ov`` metric.
HEADER_BYTES = IP_HEADER_BYTES + TCP_HEADER_BYTES


@dataclasses.dataclass
class Segment:
    """One TCP segment in flight.

    Addressing is (host name, port) pairs; the simulated network routes
    purely on host names, and the TCP demultiplexer routes on ports.

    Attributes
    ----------
    src, sport, dst, dport:
        Source / destination addressing.
    seq:
        Sequence number of the first payload byte (or of the SYN/FIN,
        which each consume one sequence number, as in real TCP).
    ack:
        Acknowledgement number; only meaningful when :attr:`flag_ack`.
    payload:
        The application bytes carried (b"" for pure control segments).
    flag_syn, flag_ack, flag_fin, flag_rst, flag_psh:
        TCP flags.
    """

    src: str
    sport: int
    dst: str
    dport: int
    seq: int = 0
    ack: int = 0
    payload: bytes = b""
    flag_syn: bool = False
    flag_ack: bool = False
    flag_fin: bool = False
    flag_rst: bool = False
    flag_psh: bool = False
    #: Advertised receive window (flow control).
    window: int = 65535
    #: Stamped by the link when the segment is delivered (trace convenience).
    delivered_at: Optional[float] = None

    @property
    def payload_len(self) -> int:
        """Number of application payload bytes."""
        return len(self.payload)

    @property
    def wire_size(self) -> int:
        """Bytes occupying the wire: payload plus TCP/IP headers."""
        return self.payload_len + HEADER_BYTES

    @property
    def seq_space(self) -> int:
        """Sequence-number space consumed (payload, +1 for SYN, +1 for FIN)."""
        return self.payload_len + (1 if self.flag_syn else 0) + (
            1 if self.flag_fin else 0)

    @property
    def end_seq(self) -> int:
        """Sequence number just past this segment's data."""
        return self.seq + self.seq_space

    def flags_str(self) -> str:
        """tcpdump-style flag string, e.g. ``'S'``, ``'PA'``, ``'FA'``."""
        out = []
        if self.flag_syn:
            out.append("S")
        if self.flag_fin:
            out.append("F")
        if self.flag_rst:
            out.append("R")
        if self.flag_psh:
            out.append("P")
        if self.flag_ack:
            out.append("A")
        return "".join(out) or "."

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Segment {self.src}:{self.sport}>{self.dst}:{self.dport}"
                f" {self.flags_str()} seq={self.seq} ack={self.ack}"
                f" len={self.payload_len}>")
