"""TCP segment model and header accounting.

The paper reports packet counts and a ``%ov`` column defined as the
fraction of bytes on the wire that are TCP/IP header overhead.  Every
simulated segment therefore carries an explicit header size (20 bytes of
IPv4 plus 20 bytes of TCP, no options — matching the way the paper's
numbers work out: ``%ov = 40·Pa / (payload + 40·Pa)``).

Segments carry the *actual* application bytes: the simulated TCP layer
delivers real HTTP messages to the application code, so request parsing,
pipelining and compression all operate on genuine byte streams.

:class:`Segment` is the single most-allocated object of a simulation —
one per packet on the wire — so it is a plain ``__slots__`` class with
``payload_len`` / ``wire_size`` / ``seq_space`` / ``end_seq`` computed
once at construction instead of on every property access, and tcpdump
flag strings interned in a small table instead of rebuilt per packet.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

__all__ = [
    "IP_HEADER_BYTES",
    "TCP_HEADER_BYTES",
    "HEADER_BYTES",
    "Segment",
]

#: IPv4 header without options.
IP_HEADER_BYTES = 20
#: TCP header without options.
TCP_HEADER_BYTES = 20
#: Total per-segment overhead used for the paper's ``%ov`` metric.
HEADER_BYTES = IP_HEADER_BYTES + TCP_HEADER_BYTES

#: Interned tcpdump-style flag strings, keyed by (syn, fin, rst, psh, ack).
_FLAG_STRINGS: Dict[Tuple[bool, bool, bool, bool, bool], str] = {}
for _syn in (False, True):
    for _fin in (False, True):
        for _rst in (False, True):
            for _psh in (False, True):
                for _ack in (False, True):
                    _s = (("S" if _syn else "") + ("F" if _fin else "")
                          + ("R" if _rst else "") + ("P" if _psh else "")
                          + ("A" if _ack else ""))
                    _FLAG_STRINGS[(_syn, _fin, _rst, _psh, _ack)] = _s or "."
del _syn, _fin, _rst, _psh, _ack, _s


class Segment:
    """One TCP segment in flight.

    Addressing is (host name, port) pairs; the simulated network routes
    purely on host names, and the TCP demultiplexer routes on ports.

    Attributes
    ----------
    src, sport, dst, dport:
        Source / destination addressing.
    seq:
        Sequence number of the first payload byte (or of the SYN/FIN,
        which each consume one sequence number, as in real TCP).
    ack:
        Acknowledgement number; only meaningful when :attr:`flag_ack`.
    payload:
        The application bytes carried (b"" for pure control segments).
    flag_syn, flag_ack, flag_fin, flag_rst, flag_psh:
        TCP flags.
    payload_len / wire_size / seq_space / end_seq:
        Derived sizes, precomputed at construction (segments are
        immutable in payload and flags once built).
    """

    __slots__ = ("src", "sport", "dst", "dport", "seq", "ack", "payload",
                 "flag_syn", "flag_ack", "flag_fin", "flag_rst",
                 "flag_psh", "window", "delivered_at", "checksum",
                 "payload_len", "wire_size", "seq_space", "end_seq")

    def __init__(self, src: str, sport: int, dst: str, dport: int,
                 seq: int = 0, ack: int = 0, payload: bytes = b"",
                 flag_syn: bool = False, flag_ack: bool = False,
                 flag_fin: bool = False, flag_rst: bool = False,
                 flag_psh: bool = False, window: int = 65535,
                 delivered_at: Optional[float] = None,
                 checksum: Optional[int] = None) -> None:
        self.src = src
        self.sport = sport
        self.dst = dst
        self.dport = dport
        self.seq = seq
        self.ack = ack
        self.payload = payload
        self.flag_syn = flag_syn
        self.flag_ack = flag_ack
        self.flag_fin = flag_fin
        self.flag_rst = flag_rst
        self.flag_psh = flag_psh
        #: Advertised receive window (flow control).
        self.window = window
        #: Stamped by the link at delivery (trace convenience).
        self.delivered_at = delivered_at
        #: CRC32 the payload must match at the receiver, or None for a
        #: trusted segment.  ``None`` is the universal fast path: only
        #: the fault injector ever stamps a checksum (of the *original*
        #: payload, onto a corrupted copy), so clean runs never pay for
        #: a hash and corrupted segments are discarded on receipt.
        self.checksum = checksum
        length = len(payload)
        self.payload_len = length
        self.wire_size = length + HEADER_BYTES
        space = length + (1 if flag_syn else 0) + (1 if flag_fin else 0)
        self.seq_space = space
        self.end_seq = seq + space

    def replace(self, **overrides: object) -> "Segment":
        """A copy with ``overrides`` applied (``dataclasses.replace``-style)."""
        kwargs = {
            "seq": self.seq, "ack": self.ack, "payload": self.payload,
            "flag_syn": self.flag_syn, "flag_ack": self.flag_ack,
            "flag_fin": self.flag_fin, "flag_rst": self.flag_rst,
            "flag_psh": self.flag_psh, "window": self.window,
            "delivered_at": self.delivered_at,
            "checksum": self.checksum,
        }
        kwargs.update(overrides)
        return Segment(self.src, self.sport, self.dst, self.dport,
                       **kwargs)

    def flags_str(self) -> str:
        """tcpdump-style flag string, e.g. ``'S'``, ``'PA'``, ``'FA'``."""
        return _FLAG_STRINGS[(self.flag_syn, self.flag_fin, self.flag_rst,
                              self.flag_psh, self.flag_ack)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Segment {self.src}:{self.sport}>{self.dst}:{self.dport}"
                f" {self.flags_str()} seq={self.seq} ack={self.ack}"
                f" len={self.payload_len}>")
