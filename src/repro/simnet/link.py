"""Duplex link model and the paper's three network environments.

Table 1 of the paper defines the test matrix:

===========================  ============================  =======  ====
Channel                      Connection                    RTT      MSS
===========================  ============================  =======  ====
High bandwidth, low latency  LAN — 10 Mbit Ethernet        < 1 ms   1460
High bandwidth, high latency WAN — MIT/LCS to LBL          ~ 90 ms  1460
Low bandwidth, high latency  PPP — 28.8k modem             ~150 ms  1460
===========================  ============================  =======  ====

Each :class:`Link` direction is a FIFO serialization queue: a segment's
delivery time is ``serialization_start + wire_bits/bandwidth +
propagation_delay``.  All TCP connections between the two hosts share the
link, so four parallel HTTP/1.0 connections compete for the same modem —
exactly the effect the paper describes for dialup users.

The PPP link transmits 10 bits per byte (async start/stop framing) and
may carry a :class:`~repro.simnet.modem.ModemCompressor` pair modelling
V.42bis data compression in the modem hardware.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, Dict, Optional, Protocol, Tuple

from .engine import Simulator
from .packet import Segment

__all__ = ["WireCompressor", "Link", "NetworkEnvironment", "ENVIRONMENTS",
           "LAN", "WAN", "PPP"]

#: Shared serialization-queue keys used when :attr:`Link.bottleneck_host`
#: is set.  Traffic *from* the bottleneck host (the server's downlink)
#: shares one FIFO queue; traffic *toward* it shares the other.  The
#: sentinel host name cannot collide with a real attached host because
#: the tuples carry a direction marker no (src, dst) pair produces.
_SHARED_DOWN: Tuple[str, str] = ("<bottleneck>", "down")
_SHARED_UP: Tuple[str, str] = ("<bottleneck>", "up")


class WireCompressor(Protocol):
    """Compresses the byte stream of one link direction (modem-style).

    Implementations are stateful: the dictionary built on earlier packets
    affects later ones, as in V.42bis.  They return the number of bytes
    that actually occupy the wire for a given payload.
    """

    def wire_bytes(self, payload: bytes) -> int:
        """Return the on-the-wire size of ``payload`` after compression."""
        ...  # pragma: no cover - protocol definition


class Link:
    """A full-duplex point-to-point link between two named hosts.

    Parameters
    ----------
    sim:
        The simulator supplying the clock.
    bandwidth_bps:
        Raw line rate in bits per second (per direction).
    propagation_delay:
        One-way propagation delay in seconds.
    bits_per_byte:
        Effective line bits per payload byte: 8 for synchronous links,
        ~8.3 for PPP over V.42 LAPM (HDLC framing between the modems),
        10 for raw async start/stop framing.
    jitter:
        Fractional uniform jitter applied to each segment's transmission
        time, e.g. 0.02 ⇒ ±2 %.  Drawn from ``rng`` so runs with the same
        seed are reproducible.  Models the run-to-run variation the paper
        averaged over five runs.
    """

    def __init__(self, sim: Simulator, bandwidth_bps: float,
                 propagation_delay: float, *, bits_per_byte: float = 8,
                 jitter: float = 0.0, loss_rate: float = 0.0,
                 rng: Optional[random.Random] = None) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if propagation_delay < 0:
            raise ValueError("propagation delay cannot be negative")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        self.sim = sim
        self.bandwidth_bps = float(bandwidth_bps)
        self.propagation_delay = float(propagation_delay)
        self.bits_per_byte = bits_per_byte
        self.jitter = jitter
        #: Independent per-segment drop probability (congested paths;
        #: the paper's links were quiet, so the tables use 0).
        self.loss_rate = loss_rate
        #: Drop-tail bottleneck buffer in packets (None = unbounded).
        #: A finite buffer makes congestion *self-induced*: senders that
        #: burst (HTTP/1.0's parallel connections in slow start) drop
        #: their own packets — the paper's "if these exchanges are too
        #: fast for the route ... they contribute to Internet
        #: congestion".
        self.queue_limit_packets: Optional[int] = None
        self.rng = rng or random.Random(0)
        self._queued: Dict[Tuple[str, str], int] = {}
        # Per-direction state, keyed by (src, dst).
        self._next_free: Dict[Tuple[str, str], float] = {}
        self._compressors: Dict[Tuple[str, str], WireCompressor] = {}
        self._receivers: Dict[str, Callable[[Segment], None]] = {}
        #: Observers called with each segment at *send* time (tracing).
        self.taps: list = []
        #: Total segments the link discarded (loss process + drop-tail
        #: overflow).  Kept as a plain writable attribute — loss-shim
        #: tests account their own drops here.
        self.segments_dropped = 0
        #: Drops by the random / injected loss process alone.
        self.dropped_loss = 0
        #: Drops by drop-tail queue overflow alone.
        self.dropped_overflow = 0
        #: Optional :class:`~repro.faults.FaultInjector` (duck-typed:
        #: anything with ``handle(segment, deliver_at)``).  When set it
        #: takes over delivery scheduling after the serialization/loss
        #: model has run, so it can drop, corrupt, duplicate or delay
        #: the segment.  ``None`` (the default) is the zero-cost path.
        self.fault_injector = None
        #: When set to an attached host name, every direction *from*
        #: that host shares one serialization queue and every direction
        #: *toward* it shares the other: N clients behind one bottleneck
        #: contend FIFO for the same line instead of each getting a
        #: private full-rate pipe.  ``None`` (the default) keeps the
        #: point-to-point per-(src, dst) queues of the two-host model.
        self.bottleneck_host: Optional[str] = None
        # Per-epoch capacity schedule (the fleet engine's fixed-point
        # shares).  None is the zero-cost constant-bandwidth path.
        self._capacity_epoch = 0.0
        self._capacity_shares: Optional[Tuple[float, ...]] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, host: str, receiver: Callable[[Segment], None]) -> None:
        """Register ``receiver`` to be called for segments addressed to ``host``."""
        if host in self._receivers:
            raise ValueError(f"host {host!r} already attached")
        self._receivers[host] = receiver

    def set_compressor(self, src: str, dst: str,
                       compressor: WireCompressor) -> None:
        """Install a modem-style stream compressor on the ``src → dst`` direction."""
        self._compressors[(src, dst)] = compressor

    def direction_key(self, src: str, dst: str) -> Tuple[str, str]:
        """Serialization-queue key for the ``src → dst`` direction.

        Point-to-point links key by the exact ``(src, dst)`` pair.  With
        :attr:`bottleneck_host` set, all flows collapse onto two shared
        queues (down = away from the bottleneck host, up = toward it), so
        concurrent clients serialize FIFO behind each other.  Compressor
        lookups keep the raw pair: each client's modem owns its own
        dictionary.
        """
        bottleneck = self.bottleneck_host
        if bottleneck is None:
            return (src, dst)
        return _SHARED_DOWN if src == bottleneck else _SHARED_UP

    def set_capacity_schedule(self, epoch: float,
                              shares: "Tuple[float, ...]") -> None:
        """Install a stepwise bandwidth schedule (fleet capacity shares).

        ``shares[i]`` is the line rate in bits/second during simulated
        time ``[i*epoch, (i+1)*epoch)``; the last entry extends forever.
        The rate in effect is sampled at *transmit initiation* time
        (``sim.now``), never mid-serialization, which keeps the model
        simple and lets the fast-forward driver cache one rate per span.
        """
        if epoch <= 0:
            raise ValueError("capacity epoch must be positive")
        shares = tuple(float(s) for s in shares)
        if not shares or any(s <= 0 for s in shares):
            raise ValueError("capacity shares must be positive")
        self._capacity_epoch = float(epoch)
        self._capacity_shares = shares

    def bandwidth_at(self, t: float) -> float:
        """Line rate in effect for a transmission initiated at time ``t``."""
        shares = self._capacity_shares
        if shares is None:
            return self.bandwidth_bps
        index = int(t / self._capacity_epoch)
        return shares[index] if index < len(shares) else shares[-1]

    def next_capacity_change(self, t: float) -> float:
        """First epoch boundary after ``t`` where the rate may step."""
        shares = self._capacity_shares
        if shares is None:
            return float("inf")
        index = int(t / self._capacity_epoch) + 1
        if index >= len(shares):
            return float("inf")
        return index * self._capacity_epoch

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def transmit(self, segment: Segment) -> None:
        """Queue ``segment`` for delivery to its destination host.

        Segments in the same direction serialize FIFO at the line rate;
        opposite directions are independent (full duplex).
        """
        if segment.dst not in self._receivers:
            raise ValueError(f"no host {segment.dst!r} attached to link")
        for tap in self.taps:
            tap(segment, self.sim.now)
        direction = self.direction_key(segment.src, segment.dst)
        compressor = self._compressors.get((segment.src, segment.dst))
        if compressor is not None:
            from .packet import HEADER_BYTES
            wire_bytes = HEADER_BYTES + compressor.wire_bytes(segment.payload)
        else:
            wire_bytes = segment.wire_size
        bandwidth = (self.bandwidth_bps if self._capacity_shares is None
                     else self.bandwidth_at(self.sim.now))
        tx_time = wire_bytes * self.bits_per_byte / bandwidth
        if self.jitter:
            tx_time *= 1.0 + self.rng.uniform(-self.jitter, self.jitter)
        if self.queue_limit_packets is not None:
            if self._queued.get(direction, 0) >= self.queue_limit_packets:
                # Drop-tail: the bottleneck buffer is full.
                self.segments_dropped += 1
                self.dropped_overflow += 1
                return
            self._queued[direction] = self._queued.get(direction, 0) + 1
        start = max(self.sim.now, self._next_free.get(direction, 0.0))
        finish = start + tx_time
        self._next_free[direction] = finish
        if self.queue_limit_packets is not None:
            # The buffer slot frees once serialization finishes.
            self.sim.schedule_at(finish, self._dequeue, direction)
        if self.loss_rate and self.rng.random() < self.loss_rate:
            # The segment occupied the wire but never arrives.
            self.segments_dropped += 1
            self.dropped_loss += 1
            return
        deliver_at = finish + self.propagation_delay
        if self.fault_injector is not None:
            # The injector owns delivery from here: it may drop the
            # segment, corrupt a copy, schedule it twice, or push its
            # arrival later (bounded reordering).
            self.fault_injector.handle(segment, deliver_at)
            return
        self.sim.schedule_at(deliver_at, self._deliver, segment)

    def _dequeue(self, direction: Tuple[str, str]) -> None:
        self._queued[direction] = max(0, self._queued.get(direction, 1)
                                      - 1)

    def _deliver(self, segment: Segment) -> None:
        segment.delivered_at = self.sim.now
        self._receivers[segment.dst](segment)


@dataclasses.dataclass(frozen=True)
class NetworkEnvironment:
    """One row of the paper's Table 1, plus modelling constants.

    ``bandwidth_bps`` for the WAN is the effective bottleneck rate of the
    1997 MIT→LBL path (the paper never states it; a T1-class 1.5 Mbit/s
    bottleneck reproduces the observed transfer times).
    """

    name: str
    description: str
    bandwidth_bps: float
    rtt: float
    mss: int = 1460
    bits_per_byte: float = 8
    #: Whether the modem applies V.42bis-style stream compression.
    modem_compression: bool = False

    @property
    def one_way_delay(self) -> float:
        """One-way propagation delay (half the RTT)."""
        return self.rtt / 2.0

    def make_link(self, sim: Simulator, *, jitter: float = 0.0,
                  rng: Optional[random.Random] = None) -> Link:
        """Instantiate a :class:`Link` for this environment."""
        return Link(sim, self.bandwidth_bps, self.one_way_delay,
                    bits_per_byte=self.bits_per_byte, jitter=jitter, rng=rng)


#: High bandwidth, low latency: 10 Mbit Ethernet, RTT < 1 ms.
LAN = NetworkEnvironment(
    name="LAN",
    description="High bandwidth, low latency - 10 Mbit Ethernet",
    bandwidth_bps=10_000_000.0,
    rtt=0.0008,
)

#: High bandwidth, high latency: transcontinental Internet, RTT ~ 90 ms.
#: The effective bottleneck rate of the quiet 1997 MIT→LBL path is not
#: stated in the paper; 1.0 Mbit/s reproduces its observed transfer
#: times.
WAN = NetworkEnvironment(
    name="WAN",
    description="High bandwidth, high latency - MA (MIT/LCS) to CA (LBL)",
    bandwidth_bps=1_000_000.0,
    rtt=0.090,
)

#: Low bandwidth, high latency: 28.8k dialup PPP, RTT ~ 150 ms.
#: The modem pair runs V.42 LAPM (synchronous HDLC, ~8.3 line bits per
#: payload byte including framing) with V.42bis data compression, as on
#: real 1997 dialup hardware.
PPP = NetworkEnvironment(
    name="PPP",
    description="Low bandwidth, high latency - 28.8k modem via PPP",
    bandwidth_bps=28_800.0,
    rtt=0.150,
    bits_per_byte=8.3,
    modem_compression=True,
)

#: Lookup table for the three environments of Table 1.
ENVIRONMENTS: Dict[str, NetworkEnvironment] = {
    env.name: env for env in (LAN, WAN, PPP)
}
