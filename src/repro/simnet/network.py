"""Convenience wiring: a client and a server host joined by one link.

Every experiment in the paper is a two-host affair — the libwww robot on
one machine, Jigsaw or Apache on the other, with tcpdump watching the
client side.  :class:`TwoHostNetwork` assembles exactly that: a
:class:`~repro.simnet.engine.Simulator`, a
:class:`~repro.simnet.link.Link` configured from a
:class:`~repro.simnet.link.NetworkEnvironment`, one
:class:`~repro.simnet.tcp.TcpStack` per host, a
:class:`~repro.simnet.trace.TraceCollector` tap, and (for the PPP
environment) a V.42bis :class:`~repro.simnet.modem.ModemCompressor` pair.
"""

from __future__ import annotations

import random
from typing import Optional

from .engine import Simulator
from .fastforward import FastForward
from .link import NetworkEnvironment
from .modem import ModemCompressor
from .tcp import TcpConfig, TcpStack
from .trace import TraceCollector

__all__ = ["TwoHostNetwork", "ChainNetwork", "FleetNetwork", "CLIENT_HOST",
           "SERVER_HOST", "PROXY_HOST", "fleet_client_host"]

#: Host names used throughout experiments (after the paper's machines).
CLIENT_HOST = "zorch.w3.org"
SERVER_HOST = "www26.w3.org"
PROXY_HOST = "proxy.w3.org"


def fleet_client_host(index: int) -> str:
    """Deterministic host name for the ``index``-th fleet client."""
    return f"client{index:04d}.w3.org"


class TwoHostNetwork:
    """A simulated client/server pair on one network environment.

    Parameters
    ----------
    environment:
        One of :data:`repro.simnet.link.LAN` / ``WAN`` / ``PPP`` (or any
        custom :class:`NetworkEnvironment`).
    seed:
        Seed for the jitter RNG; two networks with the same seed behave
        identically.
    jitter:
        Fractional transmission-time jitter, modelling the run-to-run
        variation the paper averaged away over five runs.
    client_config / server_config:
        Optional per-host :class:`TcpConfig` overrides (e.g. to flip
        ``TCP_NODELAY`` defaults or the initial congestion window).
    modem_compression:
        Override the environment's modem-compression flag (e.g. to
        measure a PPP link with V.42bis disabled).
    fastpath:
        Wire up the flow-level fast-forward driver
        (:class:`~repro.simnet.fastforward.FastForward`).  Results are
        byte-identical either way; False (the ``--no-fastpath`` escape
        hatch) forces per-segment execution throughout.  The driver is
        also skipped when either host's :class:`TcpConfig` disables it.
    """

    def __init__(self, environment: NetworkEnvironment, *,
                 seed: int = 0, jitter: float = 0.0,
                 client_config: Optional[TcpConfig] = None,
                 server_config: Optional[TcpConfig] = None,
                 modem_compression: Optional[bool] = None,
                 fastpath: bool = True) -> None:
        self.environment = environment
        self.sim = Simulator()
        self.rng = random.Random(seed)
        self.link = environment.make_link(self.sim, jitter=jitter,
                                          rng=self.rng)
        mss_config = TcpConfig(mss=environment.mss)
        self.client = TcpStack(self.sim, CLIENT_HOST, self.link,
                               client_config or mss_config)
        self.server = TcpStack(self.sim, SERVER_HOST, self.link,
                               server_config or TcpConfig(
                                   mss=environment.mss))
        self.trace = TraceCollector(self.link, CLIENT_HOST)
        self.fastforward: Optional[FastForward] = None
        if fastpath and self.client.config.fastpath \
                and self.server.config.fastpath:
            self.fastforward = FastForward(
                self.sim, self.link, (self.client, self.server),
                self.trace)
        self.modem_up: Optional[ModemCompressor] = None
        self.modem_down: Optional[ModemCompressor] = None
        use_modem = (environment.modem_compression
                     if modem_compression is None else modem_compression)
        if use_modem:
            self.modem_up = ModemCompressor()
            self.modem_down = ModemCompressor()
            self.link.set_compressor(CLIENT_HOST, SERVER_HOST,
                                     self.modem_up)
            self.link.set_compressor(SERVER_HOST, CLIENT_HOST,
                                     self.modem_down)

    def run(self, until: Optional[float] = None) -> None:
        """Run the simulation until quiescent (or until ``until``)."""
        self.sim.run(until=until)


class FleetNetwork:
    """N clients and one server sharing a single bottleneck link.

    The population-scale generalization of :class:`TwoHostNetwork`: one
    :class:`~repro.simnet.engine.Simulator` hosts a whole cohort of
    client stacks plus one server stack, all attached to one
    :class:`~repro.simnet.link.Link` whose ``bottleneck_host`` is the
    server — every client's download serializes FIFO through the shared
    downlink, every upload through the shared uplink, exactly the
    contention regime the follow-on mobile-population studies measure.

    An optional per-epoch capacity schedule (``capacity_epoch`` +
    ``capacity_shares``) steps the link rate over simulated time; the
    fleet engine uses it to impose the fixed-point bottleneck shares
    other cohorts claim.  The fast-forward driver stays wired: spans
    stay eligible on non-contended stretches and fall back at the first
    foreign event or epoch boundary.
    """

    def __init__(self, environment: NetworkEnvironment, n_clients: int, *,
                 seed: int = 0, jitter: float = 0.0,
                 client_config: Optional[TcpConfig] = None,
                 server_config: Optional[TcpConfig] = None,
                 modem_compression: Optional[bool] = None,
                 fastpath: bool = True,
                 capacity_epoch: Optional[float] = None,
                 capacity_shares=None) -> None:
        if n_clients <= 0:
            raise ValueError("a fleet needs at least one client")
        self.environment = environment
        self.sim = Simulator()
        self.rng = random.Random(seed)
        self.link = environment.make_link(self.sim, jitter=jitter,
                                          rng=self.rng)
        self.link.bottleneck_host = SERVER_HOST
        if capacity_shares is not None:
            self.link.set_capacity_schedule(capacity_epoch, capacity_shares)
        mss_config = client_config or TcpConfig(mss=environment.mss)
        self.server = TcpStack(self.sim, SERVER_HOST, self.link,
                               server_config or TcpConfig(
                                   mss=environment.mss))
        self.clients = [TcpStack(self.sim, fleet_client_host(i), self.link,
                                 mss_config)
                        for i in range(n_clients)]
        self.trace = TraceCollector(self.link, SERVER_HOST)
        self.fastforward: Optional[FastForward] = None
        if fastpath and self.server.config.fastpath \
                and mss_config.fastpath:
            self.fastforward = FastForward(
                self.sim, self.link,
                (self.server, *self.clients), self.trace)
        use_modem = (environment.modem_compression
                     if modem_compression is None else modem_compression)
        if use_modem:
            # Each user dials in through their own modem pair, so each
            # (client, server) direction owns a private V.42bis
            # dictionary — one client's traffic must not train another's.
            for stack in self.clients:
                self.link.set_compressor(stack.host, SERVER_HOST,
                                         ModemCompressor())
                self.link.set_compressor(SERVER_HOST, stack.host,
                                         ModemCompressor())

    def run(self, until: Optional[float] = None) -> None:
        """Run the simulation until quiescent (or until ``until``)."""
        self.sim.run(until=until)


class ChainNetwork:
    """Client — proxy — origin: two links, three hosts, one simulator.

    Used for the Keep-Alive-through-proxies pathology the paper cites
    as the reason HTTP/1.1's persistent connections differ from the
    HTTP/1.0 Keep-Alive extension.  The proxy host owns a TCP stack on
    *each* link (it has two interfaces).
    """

    def __init__(self, environment: NetworkEnvironment, *,
                 seed: int = 0, jitter: float = 0.0) -> None:
        self.environment = environment
        self.sim = Simulator()
        rng = random.Random(seed)
        self.client_link = environment.make_link(self.sim, jitter=jitter,
                                                 rng=rng)
        self.server_link = environment.make_link(self.sim, jitter=jitter,
                                                 rng=rng)
        config = TcpConfig(mss=environment.mss)
        self.client = TcpStack(self.sim, CLIENT_HOST, self.client_link,
                               config)
        self.proxy_client_side = TcpStack(self.sim, PROXY_HOST,
                                          self.client_link,
                                          TcpConfig(mss=environment.mss))
        self.proxy_server_side = TcpStack(self.sim, PROXY_HOST,
                                          self.server_link,
                                          TcpConfig(mss=environment.mss))
        self.server = TcpStack(self.sim, SERVER_HOST, self.server_link,
                               TcpConfig(mss=environment.mss))
        self.trace = TraceCollector(self.client_link, CLIENT_HOST)

    def run(self, until: Optional[float] = None) -> None:
        """Run the simulation until quiescent (or until ``until``)."""
        self.sim.run(until=until)
