"""Convenience wiring: a client and a server host joined by one link.

Every experiment in the paper is a two-host affair — the libwww robot on
one machine, Jigsaw or Apache on the other, with tcpdump watching the
client side.  :class:`TwoHostNetwork` assembles exactly that: a
:class:`~repro.simnet.engine.Simulator`, a
:class:`~repro.simnet.link.Link` configured from a
:class:`~repro.simnet.link.NetworkEnvironment`, one
:class:`~repro.simnet.tcp.TcpStack` per host, a
:class:`~repro.simnet.trace.TraceCollector` tap, and (for the PPP
environment) a V.42bis :class:`~repro.simnet.modem.ModemCompressor` pair.
"""

from __future__ import annotations

import random
from typing import Optional

from .engine import Simulator
from .fastforward import FastForward
from .link import NetworkEnvironment
from .modem import ModemCompressor
from .tcp import TcpConfig, TcpStack
from .trace import TraceCollector

__all__ = ["TwoHostNetwork", "ChainNetwork", "CLIENT_HOST", "SERVER_HOST",
           "PROXY_HOST"]

#: Host names used throughout experiments (after the paper's machines).
CLIENT_HOST = "zorch.w3.org"
SERVER_HOST = "www26.w3.org"
PROXY_HOST = "proxy.w3.org"


class TwoHostNetwork:
    """A simulated client/server pair on one network environment.

    Parameters
    ----------
    environment:
        One of :data:`repro.simnet.link.LAN` / ``WAN`` / ``PPP`` (or any
        custom :class:`NetworkEnvironment`).
    seed:
        Seed for the jitter RNG; two networks with the same seed behave
        identically.
    jitter:
        Fractional transmission-time jitter, modelling the run-to-run
        variation the paper averaged away over five runs.
    client_config / server_config:
        Optional per-host :class:`TcpConfig` overrides (e.g. to flip
        ``TCP_NODELAY`` defaults or the initial congestion window).
    modem_compression:
        Override the environment's modem-compression flag (e.g. to
        measure a PPP link with V.42bis disabled).
    fastpath:
        Wire up the flow-level fast-forward driver
        (:class:`~repro.simnet.fastforward.FastForward`).  Results are
        byte-identical either way; False (the ``--no-fastpath`` escape
        hatch) forces per-segment execution throughout.  The driver is
        also skipped when either host's :class:`TcpConfig` disables it.
    """

    def __init__(self, environment: NetworkEnvironment, *,
                 seed: int = 0, jitter: float = 0.0,
                 client_config: Optional[TcpConfig] = None,
                 server_config: Optional[TcpConfig] = None,
                 modem_compression: Optional[bool] = None,
                 fastpath: bool = True) -> None:
        self.environment = environment
        self.sim = Simulator()
        self.rng = random.Random(seed)
        self.link = environment.make_link(self.sim, jitter=jitter,
                                          rng=self.rng)
        mss_config = TcpConfig(mss=environment.mss)
        self.client = TcpStack(self.sim, CLIENT_HOST, self.link,
                               client_config or mss_config)
        self.server = TcpStack(self.sim, SERVER_HOST, self.link,
                               server_config or TcpConfig(
                                   mss=environment.mss))
        self.trace = TraceCollector(self.link, CLIENT_HOST)
        self.fastforward: Optional[FastForward] = None
        if fastpath and self.client.config.fastpath \
                and self.server.config.fastpath:
            self.fastforward = FastForward(
                self.sim, self.link, (self.client, self.server),
                self.trace)
        self.modem_up: Optional[ModemCompressor] = None
        self.modem_down: Optional[ModemCompressor] = None
        use_modem = (environment.modem_compression
                     if modem_compression is None else modem_compression)
        if use_modem:
            self.modem_up = ModemCompressor()
            self.modem_down = ModemCompressor()
            self.link.set_compressor(CLIENT_HOST, SERVER_HOST,
                                     self.modem_up)
            self.link.set_compressor(SERVER_HOST, CLIENT_HOST,
                                     self.modem_down)

    def run(self, until: Optional[float] = None) -> None:
        """Run the simulation until quiescent (or until ``until``)."""
        self.sim.run(until=until)


class ChainNetwork:
    """Client — proxy — origin: two links, three hosts, one simulator.

    Used for the Keep-Alive-through-proxies pathology the paper cites
    as the reason HTTP/1.1's persistent connections differ from the
    HTTP/1.0 Keep-Alive extension.  The proxy host owns a TCP stack on
    *each* link (it has two interfaces).
    """

    def __init__(self, environment: NetworkEnvironment, *,
                 seed: int = 0, jitter: float = 0.0) -> None:
        self.environment = environment
        self.sim = Simulator()
        rng = random.Random(seed)
        self.client_link = environment.make_link(self.sim, jitter=jitter,
                                                 rng=rng)
        self.server_link = environment.make_link(self.sim, jitter=jitter,
                                                 rng=rng)
        config = TcpConfig(mss=environment.mss)
        self.client = TcpStack(self.sim, CLIENT_HOST, self.client_link,
                               config)
        self.proxy_client_side = TcpStack(self.sim, PROXY_HOST,
                                          self.client_link,
                                          TcpConfig(mss=environment.mss))
        self.proxy_server_side = TcpStack(self.sim, PROXY_HOST,
                                          self.server_link,
                                          TcpConfig(mss=environment.mss))
        self.server = TcpStack(self.sim, SERVER_HOST, self.server_link,
                               TcpConfig(mss=environment.mss))
        self.trace = TraceCollector(self.client_link, CLIENT_HOST)

    def run(self, until: Optional[float] = None) -> None:
        """Run the simulation until quiescent (or until ``until``)."""
        self.sim.run(until=until)
