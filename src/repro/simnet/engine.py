"""Discrete-event simulation engine.

The simulator provides a virtual clock and an event queue.  Everything in
:mod:`repro.simnet` — links, TCP endpoints, application timers — runs on
top of a single :class:`Simulator` instance.  Events fire in strict
timestamp order; ties are broken by scheduling order, which makes every
run fully deterministic (a property the paper's real testbed obviously
lacked, and which we exploit heavily in tests).

Example
-------
>>> sim = Simulator()
>>> fired = []
>>> _ = sim.schedule(1.5, fired.append, "a")
>>> _ = sim.schedule(0.5, fired.append, "b")
>>> sim.run()
>>> fired
['b', 'a']
>>> sim.now
1.5
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid simulator operations (e.g. scheduling in the past)."""


class Event:
    """A handle for a scheduled callback.

    Returned by :meth:`Simulator.schedule`; the only public operations are
    :meth:`cancel` and the :attr:`cancelled` / :attr:`time` attributes.
    Cancellation is O(1): the event is flagged and skipped when popped.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., Any], args: Tuple[Any, ...]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time:.6f} {name} {state}>"


class Simulator:
    """A deterministic discrete-event simulator.

    Attributes
    ----------
    now:
        The current simulated time in seconds.  Starts at 0.0 and only
        moves forward.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        ``delay`` may be zero (the event runs after all events already due
        at the current time), but never negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} s in the past")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}")
        event = Event(time, next(self._seq), callback, args)
        heapq.heappush(self._queue, event)
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None,
            max_events: int = 10_000_000) -> None:
        """Run events in order until the queue drains.

        Parameters
        ----------
        until:
            If given, stop once the next event would fire after ``until``
            and advance the clock to exactly ``until``.
        max_events:
            Safety valve against runaway simulations; exceeded ⇒
            :class:`SimulationError`.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        processed = 0
        try:
            while self._queue and not self._stopped:
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    self.now = until
                    return
                heapq.heappop(self._queue)
                self.now = event.time
                event.callback(*event.args)
                processed += 1
                if processed > max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events; likely a livelock")
            if until is not None and not self._stopped:
                self.now = max(self.now, until)
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop :meth:`run` after the current event completes."""
        self._stopped = True

    def pending_events(self) -> int:
        """Number of scheduled, non-cancelled events (for tests)."""
        return sum(1 for e in self._queue if not e.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self.now:.6f} pending={self.pending_events()}>"
