"""Discrete-event simulation engine.

The simulator provides a virtual clock and an event queue.  Everything in
:mod:`repro.simnet` — links, TCP endpoints, application timers — runs on
top of a single :class:`Simulator` instance.  Events fire in strict
timestamp order; ties are broken by scheduling order, which makes every
run fully deterministic (a property the paper's real testbed obviously
lacked, and which we exploit heavily in tests).

Internally the heap holds plain ``(time, seq, event)`` tuples, so the
C implementation of :mod:`heapq` compares tuples natively instead of
calling back into a Python ``__lt__`` per comparison; ``seq`` is unique,
so the :class:`Event` payload is never compared.  Cancellation is lazy —
the handle is flagged and the heap entry discarded when it surfaces —
with an opportunistic purge that rebuilds the heap once dead entries
outnumber live ones, keeping connection-heavy simulations from carrying
cancelled RTO/delayed-ACK entries for their whole lifetime.

Example
-------
>>> sim = Simulator()
>>> fired = []
>>> _ = sim.schedule(1.5, fired.append, "a")
>>> _ = sim.schedule(0.5, fired.append, "b")
>>> sim.run()
>>> fired
['b', 'a']
>>> sim.now
1.5
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from ..perf import PerfCounters

__all__ = ["Event", "Simulator", "SimulationError"]

#: Don't bother purging tiny heaps; rebuilds only pay off at scale.
_PURGE_MIN_DEAD = 64


class SimulationError(RuntimeError):
    """Raised for invalid simulator operations (e.g. scheduling in the past)."""


class Event:
    """A handle for a scheduled callback.

    Returned by :meth:`Simulator.schedule`; the only public operations are
    :meth:`cancel` and the :attr:`cancelled` / :attr:`time` attributes.
    Cancellation is O(1): the event is flagged and skipped when popped.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_sim")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., Any], args: Tuple[Any, ...],
                 sim: Optional["Simulator"] = None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            self._sim = None
            sim._note_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time:.6f} {name} {state}>"


class Simulator:
    """A deterministic discrete-event simulator.

    Attributes
    ----------
    now:
        The current simulated time in seconds.  Starts at 0.0 and only
        moves forward.
    perf:
        :class:`~repro.perf.PerfCounters` accumulated over the
        simulator's lifetime (events fired, heap high-water mark, …).
    """

    __slots__ = ("now", "perf", "fastforward", "_heap", "_seq", "_live",
                 "_dead", "_running", "_stopped")

    def __init__(self) -> None:
        self.now: float = 0.0
        self.perf = PerfCounters()
        #: Optional :class:`~repro.simnet.fastforward.FastForward` driver
        #: consulted by :meth:`run` between events.  ``None`` (the
        #: default) keeps the event loop on the plain per-event path.
        self.fastforward = None
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self._live = 0      # scheduled, not cancelled, not yet fired
        self._dead = 0      # cancelled entries still buried in the heap
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        ``delay`` may be zero (the event runs after all events already due
        at the current time), but never negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} s in the past")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}")
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback, args, self)
        heap = self._heap
        heapq.heappush(heap, (time, seq, event))
        self._live += 1
        perf = self.perf
        if len(heap) > perf.heap_peak:
            perf.heap_peak = len(heap)
        return event

    def _note_cancel(self) -> None:
        """Bookkeeping for a cancelled pending event (called by Event)."""
        self._live -= 1
        self._dead += 1
        if self._dead >= _PURGE_MIN_DEAD and self._dead > self._live:
            self._purge()

    def _purge(self) -> None:
        """Rebuild the heap without cancelled entries.

        Entries order on the unique ``(time, seq)`` prefix, so a
        heapify of the survivors yields the exact same pop order as
        draining the old heap — determinism is unaffected.
        """
        survivors = [entry for entry in self._heap
                     if not entry[2].cancelled]
        self.perf.events_cancelled += len(self._heap) - len(survivors)
        heapq.heapify(survivors)
        self._heap = survivors
        self._dead = 0
        self.perf.heap_purges += 1

    # ------------------------------------------------------------------
    # Event surgery (fast-forward support)
    # ------------------------------------------------------------------
    def extract_events(self, events) -> None:
        """Remove live ``events`` from the heap without firing them.

        Used by the fast-forward driver to take ownership of a span's
        deliveries and timer standings.  Extracted events are detached
        (``_sim`` cleared) so a stray :meth:`Event.cancel` while
        extracted cannot decrement the live count a second time —
        ``pending_events`` stays exact through extract/reinsert cycles.
        The heap is rebuilt once, preserving the ``(time, seq)`` order
        of every remaining entry.
        """
        remove = set(map(id, events))
        if not remove:
            return
        survivors = []
        extracted = 0
        for entry in self._heap:
            if id(entry[2]) in remove:
                entry[2]._sim = None
                extracted += 1
            else:
                survivors.append(entry)
        if extracted != len(remove):
            raise SimulationError("extract_events: event not in heap")
        heapq.heapify(survivors)
        self._heap = survivors
        self._live -= extracted

    def reinsert_entry(self, entry: Tuple[float, int, Event]) -> None:
        """Put an extracted ``(time, seq, event)`` entry back verbatim.

        The original time *and* sequence number are preserved, so a
        reinserted event keeps its exact tie-break position relative to
        everything scheduled before the extraction.
        """
        event = entry[2]
        if event.cancelled:
            raise SimulationError("reinsert_entry: event was cancelled")
        event._sim = self
        heapq.heappush(self._heap, entry)
        self._live += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None,
            max_events: int = 10_000_000) -> None:
        """Run events in order until the queue drains.

        Parameters
        ----------
        until:
            If given, stop once the next event would fire after ``until``
            and advance the clock to exactly ``until``.
        max_events:
            Safety valve against runaway simulations: at most this many
            events fire, exceeding it ⇒ :class:`SimulationError`.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        processed = 0
        perf = self.perf
        pop = heapq.heappop
        try:
            while self._heap and not self._stopped:
                ff = self.fastforward
                if ff is not None and ff.pending is not None:
                    # A steady bulk-transfer candidate was flagged by the
                    # TCP layer: give the analytic fast path one shot at
                    # advancing the span before the next event pops.
                    ff.attempt(until)
                    continue
                time, _seq, event = self._heap[0]
                if event.cancelled:
                    pop(self._heap)
                    self._dead -= 1
                    perf.events_cancelled += 1
                    continue
                if until is not None and time > until:
                    self.now = until
                    return
                if processed >= max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events; likely a livelock")
                pop(self._heap)
                self._live -= 1
                event._sim = None   # a late cancel() must not decrement
                self.now = time
                event.callback(*event.args)
                processed += 1
                perf.events_processed += 1
            if until is not None and not self._stopped:
                self.now = max(self.now, until)
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop :meth:`run` after the current event completes."""
        self._stopped = True

    def pending_events(self) -> int:
        """Number of scheduled, non-cancelled events.  O(1)."""
        return self._live

    def heap_size(self) -> int:
        """Raw heap length, cancelled entries included (for tests)."""
        return len(self._heap)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self.now:.6f} pending={self.pending_events()}>"
