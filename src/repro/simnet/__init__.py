"""Discrete-event TCP/IP network simulator.

This package substitutes for the paper's physical testbed (Ethernet LAN,
transcontinental WAN, 28.8k PPP dialup) and its tcpdump-based
measurement: a deterministic simulator implementing the TCP mechanisms
the paper's analysis depends on — slow start, delayed ACKs, the Nagle
algorithm, three-way handshake, independent half-close — plus per-link
bandwidth/latency models and a packet trace collector.

Typical use::

    from repro.simnet import TwoHostNetwork, LAN

    net = TwoHostNetwork(LAN)
    # attach applications to net.client / net.server TCP stacks
    net.run()
    print(net.trace.summary())
"""

from .engine import Event, Simulator, SimulationError
from .link import (ENVIRONMENTS, LAN, PPP, WAN, Link, NetworkEnvironment)
from .modem import LzwDecoder, LzwEncoder, ModemCompressor
from .network import CLIENT_HOST, SERVER_HOST, TwoHostNetwork
from .packet import HEADER_BYTES, IP_HEADER_BYTES, TCP_HEADER_BYTES, Segment
from .tcp import TcpConfig, TcpConnection, TcpListener, TcpStack
from .trace import PacketRecord, TraceCollector, TraceSummary

__all__ = [
    "Event", "Simulator", "SimulationError",
    "ENVIRONMENTS", "LAN", "WAN", "PPP", "Link", "NetworkEnvironment",
    "LzwEncoder", "LzwDecoder", "ModemCompressor",
    "CLIENT_HOST", "SERVER_HOST", "TwoHostNetwork",
    "HEADER_BYTES", "IP_HEADER_BYTES", "TCP_HEADER_BYTES", "Segment",
    "TcpConfig", "TcpConnection", "TcpListener", "TcpStack",
    "PacketRecord", "TraceCollector", "TraceSummary",
]
