"""V.42bis-style modem data compression (BTLZ).

The paper's "Further Compression Experiments" compare DEFLATE at the
HTTP layer against "the data compression found in current modems"
(ITU-T V.42bis), concluding that deflate is significantly better.  To
reproduce that comparison the PPP link can run each direction's byte
stream through this module: a streaming LZW compressor in the BTLZ
family, with

* a 256-symbol initial alphabet plus CLEAR / END control codes,
* variable code width growing from 9 to 12 bits,
* dictionary reset (CLEAR) when the dictionary fills, and
* per-frame *transparent mode*: if compression would expand a frame the
  modem sends it raw plus a one-byte mode marker, as V.42bis does for
  incompressible data (e.g. GIFs or already-deflated HTML).

The dictionary persists across packets in a direction, so later HTML
packets compress better than the first — exactly the stream behaviour of
a real modem pair.

:class:`LzwEncoder` / :class:`LzwDecoder` are complete, round-trippable
codecs (property-tested); :class:`ModemCompressor` adapts the encoder to
the :class:`~repro.simnet.link.WireCompressor` protocol, which only
needs on-the-wire byte counts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["LzwEncoder", "LzwDecoder", "lzw_compress", "lzw_decompress",
           "ModemCompressor"]

#: LZW control codes following the 256 literal byte codes.
CLEAR_CODE = 256
END_CODE = 257
FIRST_FREE_CODE = 258
MIN_CODE_BITS = 9
MAX_CODE_BITS = 12
MAX_CODES = 1 << MAX_CODE_BITS


class LzwEncoder:
    """Streaming LZW encoder with variable-width codes.

    Use :meth:`encode` repeatedly for stream chunks and :meth:`flush` to
    force out the pending prefix (a modem flushes at frame boundaries so
    the remote end can deliver the frame).

    ``max_string`` caps dictionary-string length, as V.42bis's N7
    parameter does (default 6 octets) — the reason modem compression
    tops out well below what an unbounded LZW achieves on repetitive
    text like HTTP headers.  ``None`` removes the cap.

    The dictionary stores each string as ``(prefix_code << 8) | byte``
    rather than the bytes themselves: every multi-byte string enters the
    dictionary exactly once, as its prefix's code plus one byte, so the
    pair key identifies it uniquely and the per-byte probe is an
    int-keyed dict lookup with no allocation.  Codes 0–255 are the
    implicit single-byte strings.
    """

    def __init__(self, max_string: Optional[int] = None) -> None:
        self.max_string = max_string
        self._reset_dictionary()
        self._prefix_code: Optional[int] = None
        self._prefix_len = 0
        self.codes_emitted: List[int] = []
        self.bits_emitted = 0

    def _reset_dictionary(self) -> None:
        self._dict: Dict[int, int] = {}
        self._next_code = FIRST_FREE_CODE
        self._code_bits = MIN_CODE_BITS

    def _emit(self, code: int) -> None:
        self.codes_emitted.append(code)
        self.bits_emitted += self._code_bits

    def encode(self, data: bytes) -> int:
        """Consume ``data``; return bits emitted so far (cumulative).

        The loop runs once per payload byte of every PPP packet, so the
        emit / dictionary-grow bookkeeping is inlined on locals rather
        than calling :meth:`_emit` (which :meth:`flush` still uses for
        the cold path).
        """
        limit = self.max_string
        prefix_code = self._prefix_code
        prefix_len = self._prefix_len
        pairs = self._dict
        pairs_get = pairs.get
        codes_append = self.codes_emitted.append
        bits = self.bits_emitted
        code_bits = self._code_bits
        next_code = self._next_code
        for byte in data:
            if prefix_code is None:
                prefix_code = byte
                prefix_len = 1
                continue
            key = (prefix_code << 8) | byte
            hit = pairs_get(key)
            if hit is not None and (limit is None or prefix_len < limit):
                prefix_code = hit
                prefix_len += 1
                continue
            codes_append(prefix_code)
            bits += code_bits
            if limit is None or prefix_len < limit:
                if next_code >= MAX_CODES:
                    codes_append(CLEAR_CODE)
                    bits += code_bits
                    pairs = {}
                    pairs_get = pairs.get
                    next_code = FIRST_FREE_CODE
                    code_bits = MIN_CODE_BITS
                else:
                    pairs[key] = next_code
                    next_code += 1
                    if (next_code > (1 << code_bits)
                            and code_bits < MAX_CODE_BITS):
                        code_bits += 1
            prefix_code = byte
            prefix_len = 1
        self._prefix_code = prefix_code
        self._prefix_len = prefix_len
        self._dict = pairs
        self._next_code = next_code
        self._code_bits = code_bits
        self.bits_emitted = bits
        return bits

    def flush(self) -> int:
        """Emit the pending prefix (frame boundary).  Returns total bits."""
        if self._prefix_code is not None:
            self._emit(self._prefix_code)
            self._prefix_code = None
            self._prefix_len = 0
        return self.bits_emitted

    def finish(self) -> int:
        """Flush and emit the END code.  Returns total bits."""
        self.flush()
        self._emit(END_CODE)
        return self.bits_emitted


class LzwDecoder:
    """Decoder matching :class:`LzwEncoder` (for round-trip testing).

    ``max_string`` must match the encoder's setting: both sides of a
    V.42bis link negotiate the same N7 limit and skip dictionary entries
    beyond it.
    """

    def __init__(self, max_string: Optional[int] = None) -> None:
        self.max_string = max_string
        self._reset_dictionary()
        self._previous: bytes = b""

    def _reset_dictionary(self) -> None:
        self._entries: Dict[int, bytes] = {i: bytes([i]) for i in range(256)}
        self._next_code = FIRST_FREE_CODE
        self._previous = b""

    def decode(self, codes: List[int]) -> bytes:
        """Decode a list of codes into the original bytes."""
        out = bytearray()
        for code in codes:
            if code == CLEAR_CODE:
                self._reset_dictionary()
                continue
            if code == END_CODE:
                break
            if code in self._entries:
                entry = self._entries[code]
            elif code == self._next_code and self._previous:
                entry = self._previous + self._previous[:1]
            else:
                raise ValueError(f"corrupt LZW stream: code {code}")
            out.extend(entry)
            candidate = self._previous + entry[:1]
            if (self._previous and self._next_code < MAX_CODES
                    and (self.max_string is None
                         or len(candidate) <= self.max_string)):
                self._entries[self._next_code] = candidate
                self._next_code += 1
            self._previous = entry
        return bytes(out)


def lzw_compress(data: bytes) -> Tuple[List[int], int]:
    """One-shot compress; returns (codes, total bits)."""
    encoder = LzwEncoder()
    encoder.encode(data)
    bits = encoder.finish()
    return encoder.codes_emitted, bits


def lzw_decompress(codes: List[int]) -> bytes:
    """One-shot decompress of :func:`lzw_compress` output."""
    return LzwDecoder().decode(codes)


class ModemCompressor:
    """Adapts :class:`LzwEncoder` to one link direction.

    For each packet payload the modem compares the LZW output size with
    the raw size and transmits whichever is smaller, plus
    ``MODE_MARKER_BYTES`` of framing — the V.42bis transparent-mode
    escape.  Dictionary state carries across packets either way (real
    V.42bis keeps learning while transparent).

    ``efficiency`` is the fraction of the LZW savings the modem pair
    actually realizes.  An idealized 12-bit LZW reaches ~2.2x on HTML,
    but the paper's own modem throughput (§8.2.1: 42 KB of HTML in
    12.21 s on a 28.8k line) implies only ~1.15x from the real V.42bis
    pair — its 2048-entry LRU dictionary, frame flushes and retrains
    eat the rest.  0.25 reproduces the measured path; 1.0 gives the
    idealized codec.
    """

    MODE_MARKER_BYTES = 1
    #: V.42bis N7 default: dictionary strings of at most 6 octets.
    V42BIS_MAX_STRING = 6
    #: Fraction of ideal-LZW savings the modem pair realizes.
    DEFAULT_EFFICIENCY = 0.25

    def __init__(self, max_string: Optional[int] = V42BIS_MAX_STRING,
                 efficiency: float = DEFAULT_EFFICIENCY) -> None:
        self._encoder = LzwEncoder(max_string=max_string)
        self.efficiency = efficiency
        self._bits_reported = 0
        #: Totals for inspection: raw payload bytes vs wire bytes.
        self.raw_bytes = 0
        self.transmitted_bytes = 0

    def wire_bytes(self, payload: bytes) -> int:
        """On-the-wire byte count for ``payload`` (stateful)."""
        if not payload:
            return 0
        self._encoder.encode(payload)
        total_bits = self._encoder.flush()
        compressed = (total_bits - self._bits_reported + 7) // 8
        self._bits_reported = total_bits
        savings = max(0, len(payload) - compressed)
        realized = int(savings * self.efficiency)
        wire = len(payload) - realized + self.MODE_MARKER_BYTES
        self.raw_bytes += len(payload)
        self.transmitted_bytes += wire
        return wire

    @property
    def compression_ratio(self) -> float:
        """Raw bytes divided by transmitted bytes (≥ ~1.0 so far)."""
        if self.transmitted_bytes == 0:
            return 1.0
        return self.raw_bytes / self.transmitted_bytes
