"""Flow-level fast-forward: analytic advance of steady bulk transfers.

A long response body (the paper's Microscape GIFs over PPP, the
megabyte pages of the follow-on studies) spends almost all of its
simulated life in one regime: the sender is window-limited, ACK
clocking releases a burst of full-size segments per acknowledgement,
and the receiver's delayed-ACK machinery ticks along a fixed rule.  Per
:class:`~repro.simnet.engine.Simulator` event that regime costs a heap
pop, an :class:`~repro.simnet.engine.Event` and
:class:`~repro.simnet.packet.Segment` allocation, and a dispatch
through the full TCP receive path — none of which can change the
outcome, because the outcome is determined by closed-form arithmetic
over the connection state.

:class:`FastForward` exploits that: when the TCP layer flags a
window-limited sender with a deep send queue, the driver checks a
strict eligibility predicate, takes ownership of the flow's in-flight
delivery events and timer standings, and replays the per-segment
arithmetic in a tight local loop — same floats, same RNG draws, same
trace appends — without touching the heap.  At the first discontinuity
(another flow's event, an application callback doing anything at all, a
retransmission-timer deadline, a send queue running low, an exact
event-time tie) it reconciles the connection state and hands back to
the engine, which resumes per-segment execution.  Results are **byte
identical** to the slow path by construction; the golden-trace fixtures
and the chaos grid enforce it.

Eligibility (all must hold, checked before every span):

* link: no fault injector, zero loss rate, unbounded queue, the trace
  collector as the only tap;
* both endpoints' :attr:`~repro.simnet.tcp.TcpConfig.fastpath` True;
* sender: ESTABLISHED, past slow-start handshake accounting, not in
  recovery or backoff, no FIN sent, nothing received-but-unread, a
  contiguous retransmit queue covering exactly ``[snd_una, snd_nxt)``,
  a send queue at least :attr:`min_queue_bytes` deep, and no
  unprofitability veto (a flow whose earlier span synthesized fewer
  than :data:`_MIN_PROFITABLE_SYNTH` segments runs per-segment for
  the rest of its life — the heap surgery costs more than it saves);
* receiver: ESTABLISHED, nothing to send, nothing in flight, no
  reassembly backlog, consistent delayed-ACK state;
* every in-flight segment between the two is either a contiguous
  full-ACK data segment or a plain pure ACK (no flags, no checksum,
  no surprise windows).

Anything else — loss, FIN, Nagle tails, window updates, fault
injection, a second flow joining the link — fails the predicate or
bounds the span's horizon, and the flow falls back to per-segment
execution at exactly the point the discontinuity occurs.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Tuple

from .engine import Simulator
from .link import Link
from .packet import HEADER_BYTES, Segment
from .tcp import TcpConnection, TcpStack
from .trace import TraceCollector

__all__ = ["FastForward"]

_INF = float("inf")

#: A span that synthesized fewer segments than this did not pay for
#: its heap scan and two heap rebuilds; the sending connection is
#: vetoed and runs per-segment thereafter (see ``_eligible``).
_MIN_PROFITABLE_SYNTH = 16


class FastForward:
    """Analytic fast-forward driver for one :class:`Link`'s flows.

    Wired up by the network layer (one driver per
    :class:`~repro.simnet.network.TwoHostNetwork`) and consulted by
    :meth:`Simulator.run` between events whenever the TCP layer has
    flagged a steady bulk-transfer candidate via :meth:`note_candidate`.
    """

    __slots__ = ("sim", "link", "collector", "stacks", "min_queue_bytes",
                 "pending")

    def __init__(self, sim: Simulator, link: Link,
                 stacks: Tuple[TcpStack, ...],
                 collector: TraceCollector, *,
                 min_queue_segments: int = 32) -> None:
        self.sim = sim
        self.link = link
        self.collector = collector
        self.stacks = stacks
        #: Send-queue depth below which a flow is never a candidate.
        #: A span pays a heap scan plus two heap rebuilds; on
        #: request/response traffic (a 35 KB GIF, interleaved client
        #: events bounding the horizon) spans synthesize only a couple
        #: of segments and the surgery costs more than it saves.  32
        #: full segments (~46 KB) sits above every Microscape object
        #: and far below any bulk transfer worth fast-forwarding.
        self.min_queue_bytes = min_queue_segments * max(
            stack.config.mss for stack in stacks)
        #: The connection flagged by the TCP layer, or None.  The engine
        #: polls this between events.
        self.pending: Optional[TcpConnection] = None
        sim.fastforward = self
        for stack in stacks:
            stack.fastforward = self

    def note_candidate(self, conn: TcpConnection) -> None:
        """Flag ``conn`` as a window-limited bulk sender (TCP layer)."""
        if not conn._ff_unprofitable:
            self.pending = conn

    # ------------------------------------------------------------------
    # Eligibility
    # ------------------------------------------------------------------
    def _peer_of(self, sender: TcpConnection) -> Optional[TcpConnection]:
        """The receiving endpoint of ``sender``'s connection, if wired."""
        for stack in self.stacks:
            if stack.host == sender.peer:
                return stack._connections.get(
                    (sender.peer_port, sender.local_host,
                     sender.local_port))
        return None

    def _eligible(self, s: TcpConnection) -> Optional[TcpConnection]:
        """Return the peer connection when a span may start, else None.

        Ordered cheapest-first so ineligible configurations (chaos
        runs, sanitized runs with extra taps) pay a handful of
        attribute compares per candidate and nothing more.
        """
        link = self.link
        if (link.fault_injector is not None or link.loss_rate
                or link.queue_limit_packets is not None):
            return None
        taps = link.taps
        if len(taps) != 1 or taps[0] != self.collector._tap:
            return None
        if not s.config.fastpath or s._ff_unprofitable:
            return None
        # Sender: steady ESTABLISHED bulk state, nothing exotic.
        if (s.state != "ESTABLISHED" or not s._syn_acked or s._fin_sent
                or s._in_recovery or s._dup_acks != 0
                or s._rto_backoff != 1):
            return None
        if (s._segments_unacked != 0
                or s._delack_timer.deadline is not None
                or s._persist_timer.deadline is not None):
            return None
        if (s._paused or s._recv_buffer or s._reassembly
                or s._receive_shutdown or s._pending_eof
                or s._fin_received):
            return None
        mss = s.config.mss
        if len(s._send_queue) < self.min_queue_bytes \
                or s._peer_window < mss:
            return None
        c = self._peer_of(s)
        if c is None or not c.config.fastpath:
            return None
        # Receiver: pure sink — nothing queued, nothing in flight.
        if (c.state != "ESTABLISHED" or not c._syn_acked
                or c._send_queue or c._retransmit_queue
                or c._fin_queued or c._fin_sent or c._in_recovery
                or c.snd_una != c.snd_nxt):
            return None
        if (c._paused or c._recv_buffer or c._reassembly
                or c._receive_shutdown or c._pending_eof
                or c._fin_received):
            return None
        if (c._rto_timer.deadline is not None
                or c._persist_timer.deadline is not None):
            return None
        # Delayed-ACK state must be internally consistent and below the
        # immediate-ACK threshold (at the threshold an ACK would already
        # have been sent).
        unacked = c._segments_unacked
        if unacked >= c.config.delack_segments:
            return None
        if (unacked > 0) != (c._delack_timer.deadline is not None):
            return None
        # The two endpoints must agree: every byte the receiver has
        # ACKed has been processed, advertised windows are stable.
        if s.rcv_nxt != c.snd_nxt:
            return None
        if c._peer_window != s._advertised_window():
            return None
        if s._peer_window != c._advertised_window():
            return None
        # Sender's retransmit queue covers exactly [snd_una, snd_nxt)
        # with plain data segments (no SYN/FIN stragglers, no holes).
        retq = s._retransmit_queue
        if not retq or s._rto_timer.deadline is None:
            return None
        expect = s.snd_una
        for seg in retq:
            if seg.flag_syn or seg.flag_fin or seg.seq != expect:
                return None
            expect = seg.end_seq
        if expect != s.snd_nxt:
            return None
        return c

    # ------------------------------------------------------------------
    # Span execution
    # ------------------------------------------------------------------
    def attempt(self, until: Optional[float]) -> None:
        """Try to fast-forward the flagged candidate (engine hook)."""
        s = self.pending
        self.pending = None
        if s is None:
            return
        c = self._eligible(s)
        if c is not None:
            self._span(s, c, until)

    def _span(self, s: TcpConnection, c: TcpConnection,
              until: Optional[float]) -> None:
        sim = self.sim
        link = self.link
        col = self.collector

        # ---- Scan the heap: claim this flow's events, bound the rest.
        rto_standing = s._rto_timer._standing
        delack_standing = c._delack_timer._standing
        timer_ids = set()
        if rto_standing is not None:
            timer_ids.add(id(rto_standing))
        if delack_standing is not None:
            timer_ids.add(id(delack_standing))
        deliver = link._deliver
        s_addr = (s.local_host, s.local_port)
        c_addr = (c.local_host, c.local_port)
        data_entries = []       # deliveries S -> C (data or pure ACK)
        ack_entries = []        # deliveries C -> S (pure ACKs)
        timer_entries = []
        horizon = until if until is not None else _INF
        for entry in sim._heap:
            ev = entry[2]
            if ev.cancelled:
                continue
            if id(ev) in timer_ids:
                timer_entries.append(entry)
                continue
            if ev.callback == deliver:
                seg = ev.args[0]
                src = (seg.src, seg.sport)
                dst = (seg.dst, seg.dport)
                if src == s_addr and dst == c_addr:
                    data_entries.append(entry)
                    continue
                if src == c_addr and dst == s_addr:
                    ack_entries.append(entry)
                    continue
            if entry[0] < horizon:
                horizon = entry[0]
        data_entries.sort(key=lambda e: (e[0], e[1]))
        ack_entries.sort(key=lambda e: (e[0], e[1]))

        # A stepwise capacity schedule (fleet bottleneck shares) keeps
        # the rate constant within an epoch; the span must not cross the
        # next boundary, so the single cached rate below stays exact.
        if link._capacity_shares is not None:
            boundary = link.next_capacity_change(sim.now)
            if boundary < horizon:
                horizon = boundary

        # ---- Validate the in-flight picture against the steady state.
        rwnd_c = c._advertised_window()    # == what C's pure ACKs carry
        s_rcv = s.rcv_nxt
        expect = c.rcv_nxt
        for entry in data_entries:
            seg = entry[2].args[0]
            if (seg.flag_syn or seg.flag_fin or seg.flag_rst
                    or seg.checksum is not None or not seg.flag_ack
                    or seg.ack != s_rcv or seg.window != c._peer_window):
                return
            if seg.payload_len:
                if seg.seq != expect:
                    return
                expect = seg.end_seq
        if expect != s.snd_nxt:
            return
        last_ack = s.snd_una
        for entry in ack_entries:
            seg = entry[2].args[0]
            if (seg.payload_len or seg.flag_syn or seg.flag_fin
                    or seg.flag_rst or seg.flag_psh or not seg.flag_ack
                    or seg.checksum is not None or seg.window != rwnd_c
                    or seg.ack <= last_ack):
                return
            last_ack = seg.ack
        if last_ack > c.rcv_nxt:
            return

        # ---- Take ownership: pull our events out of the heap.
        extracted = data_entries + ack_entries + timer_entries
        sim.extract_events([entry[2] for entry in extracted])
        seq0 = sim._seq

        # ---- Local mirrors of the per-segment state machine.
        config = s.config
        mss = config.mss
        mss_sq = mss * mss
        wnd = s._peer_window
        s_adv = s._advertised_window()
        snd_una = s.snd_una
        snd_nxt = s.snd_nxt
        snd_nxt0 = snd_nxt
        cwnd = s.cwnd
        ssthresh = s.ssthresh
        srtt = s._srtt
        rttvar = s._rttvar
        rtt_sample = s._rtt_sample
        rto_min = config.rto_min
        rto_max = config.rto_max
        rto_deadline = s._rto_timer.deadline
        queue = s._send_queue
        qlen = len(queue)
        qpos = 0

        rcv_c = c.rcv_nxt
        unacked_c = c._segments_unacked
        delack_deadline = c._delack_timer.deadline
        das = c.config.delack_segments
        period = c.config.delack_delay
        heartbeat = c.config.delack_heartbeat

        comp_d = link._compressors.get((s.local_host, c.local_host))
        comp_a = link._compressors.get((c.local_host, s.local_host))
        dir_d = link.direction_key(s.local_host, c.local_host)
        dir_a = link.direction_key(c.local_host, s.local_host)
        nf = link._next_free
        bpb = link.bits_per_byte
        bw = link.bandwidth_at(sim.now)
        prop = link.propagation_delay
        jit = link.jitter
        uniform = link.rng.uniform

        s_host, s_port = s_addr
        c_host, c_port = c_addr
        app_time = col._times.append
        app_src = col._srcs.append
        app_sport = col._sports.append
        app_dst = col._dsts.append
        app_dport = col._dports.append
        app_flags = col._flags.append
        app_seq = col._seqs.append
        app_ack = col._acks.append
        app_plen = col._payload_lens.append
        app_wire = col._wire_sizes.append

        # FIFOs mirror the wire.  Extracted entries ride along so they
        # can be reinserted verbatim if undelivered at span end.
        #   d_fifo: (time, segment|None, queue_offset|None, entry|None,
        #            emit_order|None)           — S -> C deliveries
        #   a_fifo: (time, ack, client_seq, entry|None, emit_order|None)
        #            — C -> S pure-ACK deliveries
        #   retq:   (end_seq, segment|None, queue_offset|None)
        d_fifo = deque((e[0], e[2].args[0], None, e, None)
                       for e in data_entries)
        a_fifo = deque((e[0], e[2].args[0].ack, e[2].args[0].seq, e, None)
                       for e in ack_entries)
        retq = deque((seg.end_seq, seg, None)
                     for seg in s._retransmit_queue)

        made_payload = {}               # queue offset -> payload bytes
        delivered_times = {}            # queue offset -> delivery time
        pending_synth = []              # (time, emit_order, seg_kind, ...)
        emit_order = 0
        n_data_sent = 0
        n_acks_sent = 0
        n_recv_s = 0
        processed = 0
        on_data = c.on_data

        def current_rto() -> float:
            base = 3.0 if srtt is None else srtt + 4 * rttvar
            rto = base if base > rto_min else rto_min
            return rto if rto < rto_max else rto_max

        def emit_ack(t: float) -> None:
            """Replicate ``TcpConnection._send_pure_ack`` on C."""
            nonlocal unacked_c, delack_deadline, emit_order, n_acks_sent
            unacked_c = 0
            delack_deadline = None
            cseq = c.snd_nxt            # live: a mid-span app send moves it
            app_time(t)
            app_src(c_host)
            app_sport(c_port)
            app_dst(s_host)
            app_dport(s_port)
            app_flags("A")
            app_seq(cseq)
            app_ack(rcv_c)
            app_plen(0)
            app_wire(HEADER_BYTES)
            col._records_cache = None
            if comp_a is not None:
                wire = HEADER_BYTES + comp_a.wire_bytes(b"")
            else:
                wire = HEADER_BYTES
            tx = wire * bpb / bw
            if jit:
                tx *= 1.0 + uniform(-jit, jit)
            free = nf.get(dir_a, 0.0)
            start = free if free > t else t
            finish = start + tx
            nf[dir_a] = finish
            emit_order += 1
            a_fifo.append((finish + prop, rcv_c, cseq, None, emit_order))
            n_acks_sent += 1

        while True:
            t_d = d_fifo[0][0] if d_fifo else _INF
            t_a = a_fifo[0][0] if a_fifo else _INF
            t_k = delack_deadline if delack_deadline is not None else _INF
            nxt = t_d if t_d < t_a else t_a
            if t_k < nxt:
                nxt = t_k
            if nxt >= horizon:
                break
            if rto_deadline is not None and nxt >= rto_deadline:
                # An RTO would fire first: that is a timeout, not steady
                # state — let the per-segment path take it.
                break
            # Exact ties between mini-event sources depend on engine
            # scheduling order; reconcile and let the engine replay them.
            # repro-lint: allow(float-clock-eq) — exact-tie *detection*
            # is the point: equal floats reproduce equal per-segment
            # ordering hazards, so the span conservatively ends here.
            if (t_d == nxt) + (t_a == nxt) + (t_k == nxt) != 1:
                break

            if t_k == nxt:
                # Delayed-ACK heartbeat fires on C.
                sim.now = nxt
                delack_deadline = None
                if unacked_c > 0:
                    emit_ack(nxt)
                processed += 1
                continue

            if t_a == nxt:
                # A pure ACK arrives at S: replicate _handle_ack + the
                # _try_send burst it unblocks.
                t, ack, _cseq, _entry, _order = a_fifo.popleft()
                # Pre-check: how many full segments will this ACK
                # release, and does the queue stay deep enough that
                # none of them is a PSH/FIN tail?
                growth = mss if cwnd < ssthresh \
                    else (mss_sq // cwnd if mss_sq // cwnd > 1 else 1)
                window2 = cwnd + growth
                if wnd < window2:
                    window2 = wnd
                avail2 = window2 - (snd_nxt - ack)
                k = avail2 // mss if avail2 > 0 else 0
                if qlen - qpos < k * mss + mss:
                    a_fifo.appendleft((t, ack, _cseq, _entry, _order))
                    break
                sim.now = t
                n_recv_s += 1
                if rtt_sample is not None and ack >= rtt_sample[0]:
                    sample = t - rtt_sample[1]
                    if srtt is None:
                        srtt = sample
                        rttvar = sample / 2
                    else:
                        delta = sample - srtt
                        srtt += 0.125 * delta
                        rttvar += 0.25 * (abs(delta) - rttvar)
                    rtt_sample = None
                snd_una = ack
                while retq and retq[0][0] <= ack:
                    retq.popleft()
                if retq:
                    rto_deadline = t + current_rto()
                else:
                    rto_deadline = None
                cwnd += growth
                window = cwnd if cwnd < wnd else wnd
                while window - (snd_nxt - snd_una) >= mss:
                    seq = snd_nxt
                    app_time(t)
                    app_src(s_host)
                    app_sport(s_port)
                    app_dst(c_host)
                    app_dport(c_port)
                    app_flags("A")
                    app_seq(seq)
                    app_ack(s_rcv)
                    app_plen(mss)
                    app_wire(mss + HEADER_BYTES)
                    col._payload_total += mss
                    col._records_cache = None
                    if comp_d is not None:
                        payload = bytes(queue[qpos:qpos + mss])
                        made_payload[qpos] = payload
                        wire = HEADER_BYTES + comp_d.wire_bytes(payload)
                    else:
                        wire = mss + HEADER_BYTES
                    tx = wire * bpb / bw
                    if jit:
                        tx *= 1.0 + uniform(-jit, jit)
                    free = nf.get(dir_d, 0.0)
                    start = free if free > t else t
                    finish = start + tx
                    nf[dir_d] = finish
                    emit_order += 1
                    d_fifo.append((finish + prop, None, qpos, None,
                                   emit_order))
                    snd_nxt = seq + mss
                    retq.append((snd_nxt, None, qpos))
                    if rtt_sample is None:
                        rtt_sample = (snd_nxt, t)
                    if rto_deadline is None:
                        rto_deadline = t + current_rto()
                    n_data_sent += 1
                    qpos += mss
                processed += 1
                continue

            # A delivery arrives at C (data, or a pre-span pure ACK).
            t, seg, qoff, entry, _order = d_fifo.popleft()
            sim.now = t
            c.segments_received += 1
            if seg is not None:
                seg.delivered_at = t
                payload = seg.payload
            else:
                delivered_times[qoff] = t
                payload = made_payload.get(qoff)
                if payload is None:
                    payload = bytes(queue[qoff:qoff + mss])
            processed += 1
            if not payload:
                continue
            rcv_c += len(payload)
            unacked_c += 1
            # Sync the live receiver before the application callback,
            # exactly as per-segment ``_absorb`` does: a callback that
            # sends (a pipelined request batch, a MUX credit) reads
            # ``rcv_nxt`` for its piggybacked ACK and cancels the
            # delayed ACK via ``_cancel_delack``.
            c.rcv_nxt = rcv_c
            c.bytes_received += len(payload)
            c._segments_unacked = unacked_c
            c._delack_timer.deadline = delack_deadline
            on_data(c, payload)
            dirty = (sim._seq != seq0 or c._send_queue or c._paused
                     or c._fin_queued or c._receive_shutdown
                     or c.state != "ESTABLISHED")
            # Adopt whatever the callback did to the delayed-ACK state
            # (a send zeroes the counter and disarms the timer — the
            # ACK rode along).
            unacked_c = c._segments_unacked
            delack_deadline = c._delack_timer.deadline
            # Replicate _schedule_ack (runs after on_data, as in
            # ``_receive``).
            if unacked_c >= das:
                emit_ack(t)
            elif delack_deadline is None:
                if heartbeat:
                    delack_deadline = (int(t / period) + 1) * period
                else:
                    delack_deadline = t + period
            if dirty:
                # The application did something (new request, pause,
                # close): per-segment execution takes over right after
                # this segment, exactly as it would have.
                break

        if processed == 0:
            # Nothing advanced: put every extracted entry back verbatim
            # (original times *and* sequence numbers — tie-break order
            # is untouched) and report nothing.
            for entry in extracted:
                sim.reinsert_entry(entry)
            return

        # ---- Reconcile: write the mirrors back and restore the heap.
        def materialize(qoff: int) -> Segment:
            payload = made_payload.get(qoff)
            if payload is None:
                payload = bytes(queue[qoff:qoff + mss])
            seg = Segment(s_host, s_port, c_host, c_port,
                          seq=snd_nxt0 + qoff, ack=s_rcv,
                          payload=payload, flag_ack=True, window=s_adv,
                          delivered_at=delivered_times.get(qoff))
            return seg

        made = {}
        new_retq = []
        for _end, seg, qoff in retq:
            if seg is None:
                seg = materialize(qoff)
                made[qoff] = seg
            new_retq.append(seg)
        s._retransmit_queue[:] = new_retq
        s.snd_una = snd_una
        s.snd_nxt = snd_nxt
        s.cwnd = cwnd
        s._srtt = srtt
        s._rttvar = rttvar
        s._rtt_sample = rtt_sample
        s.segments_sent += n_data_sent
        s.bytes_sent += n_data_sent * mss
        s.segments_received += n_recv_s
        s._rto_timer.fast_forward(rto_deadline)

        # rcv_nxt / bytes_received / segments_received were kept live
        # in the delivery loop (callbacks read them); only the
        # delayed-ACK view and the synthesized-send count remain.
        c._segments_unacked = unacked_c
        c.segments_sent += n_acks_sent
        c._delack_timer.fast_forward(delack_deadline)

        # Undelivered traffic goes back on the heap: extracted entries
        # verbatim, synthesized ones in emission order (matching the
        # sequence numbers per-segment scheduling would have assigned).
        for t, seg, qoff, entry, order in d_fifo:
            if entry is not None:
                sim.reinsert_entry(entry)
            else:
                seg = made.get(qoff)
                if seg is None:
                    seg = materialize(qoff)
                pending_synth.append((t, order, seg))
        for t, ack, cseq, entry, order in a_fifo:
            if entry is not None:
                sim.reinsert_entry(entry)
            else:
                pending_synth.append((t, order, Segment(
                    c_host, c_port, s_host, s_port, seq=cseq, ack=ack,
                    flag_ack=True, window=rwnd_c)))
        pending_synth.sort(key=lambda item: (item[0], item[1]))
        schedule_at = sim.schedule_at
        for t, _order, seg in pending_synth:
            schedule_at(t, deliver, seg)

        del queue[:qpos]
        perf = sim.perf
        perf.segments += n_data_sent + n_acks_sent
        perf.fastforward_spans += 1
        perf.segments_synthesized += n_data_sent + n_acks_sent
        if n_data_sent + n_acks_sent < _MIN_PROFITABLE_SYNTH:
            # Application callbacks (a pipelined request batch every
            # few segments) break every span on this flow early; the
            # surgery costs more than the synthesized segments save.
            s._ff_unprofitable = True
