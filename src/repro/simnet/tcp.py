"""Simulated TCP endpoints.

This module implements the TCP mechanisms the paper's results hinge on:

* the **three-way handshake** and the per-connection open/close control
  packets whose cost HTTP/1.0 pays 43 times per page,
* **slow start** ([Jacobson 88]): a new connection probes the path with a
  small congestion window, so short HTTP/1.0 transfers finish before TCP
  ever reaches the path's capacity,
* **delayed acknowledgements** (up to 200 ms, or every second segment),
  whose interaction with application buffering the paper analyses in
  "Why Compression is Important",
* the **Nagle algorithm** [RFC 896] and the ``TCP_NODELAY`` escape hatch —
  the paper recommends that buffering HTTP/1.1 implementations disable
  Nagle, confirming Heidemann's findings,
* **independent half-close**: the paper's "Connection Management" section
  shows that a server which closes both directions at once destroys
  pipelined responses with a RST; servers must close each half
  independently.

The paper's traces were taken on quiet links, but the simulator still
implements full loss recovery so congested-path behaviour can be
studied (see ``benchmarks/bench_lossy_wan.py``): a retransmission queue
with an adaptive RTO (Jacobson srtt/rttvar, Karn's rule, exponential
backoff), duplicate-ACK generation with out-of-order reassembly on the
receiver, fast retransmit on three duplicate ACKs, and the standard
cwnd/ssthresh reactions (multiplicative decrease; slow-start restart
after a timeout).

Sequence numbers start at zero per connection, payloads are real bytes,
and SYN/FIN each consume one sequence number, exactly as in RFC 793.
"""

from __future__ import annotations

import dataclasses
import zlib
from typing import Callable, Dict, List, Optional, Tuple

from .engine import Event, Simulator
from .link import Link
from .packet import Segment

__all__ = ["TcpConfig", "TcpConnection", "TcpListener", "TcpStack",
           "TcpError"]


class _LazyTimer:
    """A deadline-based timer built around one standing engine event.

    The schedule/cancel churn of TCP's timers used to dominate heap
    traffic: the RTO timer in particular was cancelled and rescheduled
    on *every* ACK that advanced ``snd_una``.  A lazy timer stores the
    logical :attr:`deadline` separately from its standing heap event:

    * re-arming to a **later** deadline is a plain attribute write —
      when the standing event fires it re-checks the deadline and
      chases it with one reschedule instead of the old
      cancel-per-update,
    * re-arming to an **earlier** deadline or disarming cancels the
      standing event (an O(1) flag; the engine discards it silently,
      without advancing the clock, exactly as before this refactor),
    * the timer callback runs only when the stored deadline is really
      due, so observable behaviour — fire times, segment ordering, the
      clock value the simulation quiesces at — is bit-identical to the
      eager implementation.

    Every re-arm absorbed without touching the heap is counted as a
    ``cancels_avoided`` in the simulator's perf counters.
    """

    __slots__ = ("_sim", "_fire", "deadline", "_standing")

    def __init__(self, sim: Simulator,
                 fire: Callable[[], None]) -> None:
        self._sim = sim
        self._fire = fire
        #: When the timer should logically fire (None = disarmed).
        self.deadline: Optional[float] = None
        self._standing: Optional[Event] = None

    def arm_at(self, deadline: float) -> None:
        """Arm (or move) the timer to fire at ``deadline``."""
        self.deadline = deadline
        standing = self._standing
        if standing is None:
            self._standing = self._sim.schedule_at(deadline,
                                                   self._on_event)
        elif deadline < standing.time:
            standing.cancel()
            self._standing = self._sim.schedule_at(deadline,
                                                   self._on_event)
        else:
            # Deadline unchanged or pushed later: the standing event
            # will chase it on fire.  This is the hot path.
            self._sim.perf.cancels_avoided += 1

    def disarm(self) -> None:
        """Clear the deadline and drop the standing event."""
        self.deadline = None
        if self._standing is not None:
            self._standing.cancel()
            self._standing = None

    def _on_event(self) -> None:
        self._standing = None
        deadline = self.deadline
        if deadline is None:
            return
        now = self._sim.now
        if deadline > now:
            # The deadline moved later since this event was scheduled;
            # chase it (this replaces the old cancel+reschedule pair).
            self._standing = self._sim.schedule_at(deadline,
                                                   self._on_event)
            return
        self.deadline = None
        self._fire()

    def fast_forward(self, deadline: Optional[float]) -> None:
        """Force the timer to exactly ``deadline`` (``None`` disarms).

        Reconcile hook for the fast-forward driver: after a span the
        clock sits past the old standing event, so re-arming must drop
        the standing (which the driver extracted from the heap) and
        schedule a fresh one at the final logical deadline instead of
        letting ``arm_at`` absorb it as a re-arm-later.
        """
        standing = self._standing
        if standing is not None:
            standing.cancel()
            self._standing = None
        self.deadline = deadline
        if deadline is not None:
            self._standing = self._sim.schedule_at(deadline,
                                                   self._on_event)


@dataclasses.dataclass
class TcpConfig:
    """Tunables of a simulated TCP stack.

    Defaults model a 1997 BSD-derived stack on an Ethernet path.

    Attributes
    ----------
    mss:
        Maximum segment size (Table 1 uses 1460 everywhere).
    initial_cwnd_segments:
        Initial congestion window in segments.  The paper notes "some TCP
        stacks implement slow start using one TCP segment whereas others
        implement it using two packets"; both are supported.
    ssthresh:
        Initial slow-start threshold in bytes.
    rwnd:
        Receiver window advertised (bytes).  Large enough that the tests
        are congestion-window limited, as on the paper's hosts.
    delack_delay:
        Period of the delayed-ACK timer.  BSD-derived stacks run a
        *heartbeat* every 200 ms rather than a per-segment timeout, so a
        lone segment waits anywhere from 0 to 200 ms (100 ms on
        average) for its ACK; ``delack_heartbeat`` selects that
        behaviour (the default, matching the paper's hosts).
    delack_segments:
        Acknowledge immediately once this many segments are unacknowledged.
    nodelay:
        Default ``TCP_NODELAY`` setting for new connections (Nagle off
        when True).
    rto_min / rto_max:
        Retransmission-timeout bounds (BSD used a 500 ms slow-tick clock
        with a 1 s floor; the floor is configurable for fast tests).
    dupack_threshold:
        Duplicate ACKs that trigger a fast retransmit.
    fastpath:
        Allow the flow-level fast-forward driver
        (:mod:`repro.simnet.fastforward`) to advance this endpoint's
        steady bulk transfers analytically.  Either endpoint setting
        this False keeps the whole network on per-segment execution
        (the ``--no-fastpath`` escape hatch).
    """

    mss: int = 1460
    initial_cwnd_segments: int = 2
    ssthresh: int = 65535
    rwnd: int = 65535
    delack_delay: float = 0.200
    delack_heartbeat: bool = True
    delack_segments: int = 2
    nodelay: bool = False
    rto_min: float = 1.0
    rto_max: float = 64.0
    dupack_threshold: int = 3
    fastpath: bool = True


class TcpError(RuntimeError):
    """Raised on invalid operations against a connection."""


class TcpConnection:
    """One endpoint of a simulated TCP connection.

    Applications interact through:

    * :meth:`send` — queue bytes for transmission (optionally closing
      the send side atomically so the FIN rides the last segment),
    * :meth:`close` — close the *send* side (half-close; receiving
      continues),
    * :meth:`shutdown_receive` — additionally stop receiving, modelling
      the naive simultaneous close the paper warns against,
    * :meth:`abort` — send a RST,
    * callbacks assigned by the application::

        conn.on_connect = lambda conn: ...
        conn.on_data    = lambda conn, data: ...
        conn.on_eof     = lambda conn: ...      # peer sent FIN
        conn.on_reset   = lambda conn: ...      # connection was reset
        conn.on_closed  = lambda conn: ...      # both halves closed cleanly

    The full RFC 793 state machine (minus retransmission states) is kept
    in :attr:`state` and is observable by tests.
    """

    __slots__ = (
        "stack", "sim", "local_host", "local_port", "peer", "peer_port",
        "config", "state",
        "snd_una", "snd_nxt", "_send_queue", "_fin_queued", "_fin_sent",
        "_syn_acked",
        "rcv_nxt", "_fin_received", "_receive_shutdown", "_reassembly",
        "_paused", "_recv_buffer", "_recv_buffered_bytes", "_pending_eof",
        "_peer_window", "_persist_timer", "_persist_interval",
        "cwnd", "ssthresh",
        "_retransmit_queue", "_rto_timer", "_srtt", "_rttvar",
        "_rto_backoff", "_dup_acks", "_rtt_sample", "_in_recovery",
        "_recovery_point", "retransmissions", "timeouts",
        "fast_retransmits",
        "_segments_unacked", "_delack_timer",
        "_ff_unprofitable",
        "nodelay",
        "bytes_sent", "bytes_received", "segments_sent",
        "segments_received",
        "on_connect", "on_data", "on_eof", "on_reset", "on_closed",
    )

    def __init__(self, stack: "TcpStack", local_port: int, peer: str,
                 peer_port: int, config: TcpConfig) -> None:
        self.stack = stack
        self.sim = stack.sim
        self.local_host = stack.host
        self.local_port = local_port
        self.peer = peer
        self.peer_port = peer_port
        self.config = config
        self.state = "CLOSED"

        # Send sequence state (relative ISNs: always 0).
        self.snd_una = 0          # oldest unacknowledged sequence number
        self.snd_nxt = 0          # next sequence number to send
        self._send_queue = bytearray()
        self._fin_queued = False
        self._fin_sent = False
        self._syn_acked = False

        # Receive sequence state.
        self.rcv_nxt = 0
        self._fin_received = False
        self._receive_shutdown = False
        #: Out-of-order segments awaiting reassembly, keyed by seq.
        self._reassembly: Dict[int, Segment] = {}
        # Flow control: application read pacing.
        self._paused = False
        self._recv_buffer: List[bytes] = []
        self._recv_buffered_bytes = 0
        self._pending_eof = False
        #: The peer's most recently advertised receive window.
        self._peer_window = config.rwnd
        self._persist_timer = _LazyTimer(self.sim, self._persist_fire)
        self._persist_interval = 1.0

        # Congestion control.
        self.cwnd = config.initial_cwnd_segments * config.mss
        self.ssthresh = config.ssthresh

        # Loss recovery.
        self._retransmit_queue: List[Segment] = []
        self._rto_timer = _LazyTimer(self.sim, self._rto_fire)
        self._srtt: Optional[float] = None
        self._rttvar = 0.0
        self._rto_backoff = 1
        self._dup_acks = 0
        self._rtt_sample: Optional[Tuple[int, float]] = None
        # NewReno fast recovery: retransmit on partial ACKs until the
        # whole pre-loss window is acknowledged.
        self._in_recovery = False
        self._recovery_point = 0
        #: Loss-recovery statistics.
        self.retransmissions = 0
        self.timeouts = 0
        self.fast_retransmits = 0

        # Delayed-ACK machinery.
        self._segments_unacked = 0
        self._delack_timer = _LazyTimer(self.sim, self._delack_fire)

        # Fast-forward profitability veto: set by the driver when a
        # span on this connection synthesized too little to pay for
        # its heap surgery (request/response traffic whose callbacks
        # break every span early).  Vetoed connections run per-segment
        # for the rest of their life.
        self._ff_unprofitable = False

        # Socket options.
        self.nodelay = config.nodelay

        # Statistics (exposed for tests and the trace summaries).
        self.bytes_sent = 0
        self.bytes_received = 0
        self.segments_sent = 0
        self.segments_received = 0

        # Application callbacks.
        self.on_connect: Callable[["TcpConnection"], None] = _noop
        self.on_data: Callable[["TcpConnection", bytes], None] = _noop
        self.on_eof: Callable[["TcpConnection"], None] = _noop
        self.on_reset: Callable[["TcpConnection"], None] = _noop
        self.on_closed: Callable[["TcpConnection"], None] = _noop

    # ------------------------------------------------------------------
    # Application interface
    # ------------------------------------------------------------------
    def set_nodelay(self, enabled: bool = True) -> None:
        """Set ``TCP_NODELAY`` (True disables the Nagle algorithm)."""
        self.nodelay = enabled

    def pause_reading(self) -> None:
        """Model a slow application: arriving data is ACKed into the
        receive buffer but not delivered, so the advertised window
        shrinks and eventually stalls the sender — the socket-buffer
        backpressure the paper's Implementation Experience section
        describes."""
        self._paused = True

    def resume_reading(self) -> None:
        """Deliver buffered data and re-open the advertised window."""
        if not self._paused:
            return
        self._paused = False
        window_was_closed = self._advertised_window() == 0
        chunks, self._recv_buffer = self._recv_buffer, []
        self._recv_buffered_bytes = 0
        for chunk in chunks:
            self.on_data(self, chunk)
        if self._pending_eof:
            self._pending_eof = False
            self.on_eof(self)
        if window_was_closed and self.state != "CLOSED":
            # Window update so the stalled sender can continue.
            self._send_pure_ack()

    @property
    def recv_buffered(self) -> int:
        """Bytes ACKed but not yet delivered to the application."""
        return self._recv_buffered_bytes

    def send(self, data: bytes, close: bool = False) -> None:
        """Queue application ``data`` for transmission.

        May be called before the handshake completes (data is sent once
        the connection is established) but not after :meth:`close`.
        ``close=True`` half-closes atomically with the write, letting
        the FIN ride on the final data segment — one packet saved per
        connection, which HTTP/1.0's 43 connections notice.
        """
        if self._fin_queued:
            raise TcpError("send after close")
        if self.state in ("CLOSED", "TIME_WAIT", "LAST_ACK", "CLOSING"):
            raise TcpError(f"send in state {self.state}")
        if not data:
            if close:
                self.close()
            return
        self._send_queue.extend(data)
        if close:
            self._fin_queued = True
        self._try_send()

    def close(self) -> None:
        """Close the send side (half-close).  Receiving continues.

        Queued data is transmitted first, then a FIN.  This is the
        correct way for an HTTP/1.1 server to end a pipelined
        connection — the client's in-flight requests keep getting ACKed
        instead of triggering a RST.
        """
        if self._fin_queued:
            return
        if self.state == "CLOSED":
            return
        self._fin_queued = True
        self._try_send()

    def shutdown_receive(self) -> None:
        """Stop accepting incoming data: further data triggers a RST.

        Together with :meth:`close` this models the naive "close both
        halves at once" behaviour the paper's Connection Management
        section shows corrupting pipelined exchanges.
        """
        self._receive_shutdown = True

    def abort(self) -> None:
        """Send a RST and drop the connection immediately."""
        if self.state == "CLOSED":
            return
        self._emit_unreliable(Segment(
            self.local_host, self.local_port, self.peer, self.peer_port,
            seq=self.snd_nxt, ack=self.rcv_nxt, flag_rst=True,
            flag_ack=True))
        self._teardown()

    @property
    def send_queue_len(self) -> int:
        """Bytes queued but not yet handed to the network."""
        return len(self._send_queue)

    @property
    def in_flight(self) -> int:
        """Bytes (of sequence space) sent but not yet acknowledged."""
        return self.snd_nxt - self.snd_una

    # ------------------------------------------------------------------
    # Connection setup
    # ------------------------------------------------------------------
    def _connect(self) -> None:
        """Initiate the active open (called by :meth:`TcpStack.connect`)."""
        self.state = "SYN_SENT"
        self._emit_reliable(Segment(
            self.local_host, self.local_port, self.peer, self.peer_port,
            seq=self.snd_nxt, flag_syn=True))
        self.snd_nxt += 1

    def _passive_open(self, syn: Segment) -> None:
        """Complete a passive open from a received SYN."""
        self.rcv_nxt = syn.seq + 1
        self.state = "SYN_RCVD"
        self._emit_reliable(Segment(
            self.local_host, self.local_port, self.peer, self.peer_port,
            seq=self.snd_nxt, ack=self.rcv_nxt, flag_syn=True,
            flag_ack=True))
        self.snd_nxt += 1

    # ------------------------------------------------------------------
    # Segment transmission and loss recovery
    # ------------------------------------------------------------------
    def _advertised_window(self) -> int:
        """Receive window left after unread buffered data."""
        return max(0, self.config.rwnd - self._recv_buffered_bytes)

    def _emit_unreliable(self, segment: Segment) -> None:
        """Transmit without retransmission state (ACKs, RSTs)."""
        segment.window = self._advertised_window()
        self.segments_sent += 1
        self.bytes_sent += segment.payload_len
        self.sim.perf.segments += 1
        self.stack.link.transmit(segment)

    def _emit_reliable(self, segment: Segment) -> None:
        """Transmit and remember for retransmission (SYN/data/FIN)."""
        self._retransmit_queue.append(segment)
        if self._rtt_sample is None:
            self._rtt_sample = (segment.end_seq, self.sim.now)
        self._emit_unreliable(segment)
        self._arm_rto()

    def _current_rto(self) -> float:
        if self._srtt is None:
            base = 3.0          # RFC 6298 initial RTO
        else:
            base = self._srtt + 4 * self._rttvar
        rto = max(self.config.rto_min, base) * self._rto_backoff
        return min(self.config.rto_max, rto)

    def _arm_rto(self, restart: bool = False) -> None:
        if self._rto_timer.deadline is not None and not restart:
            return
        if self._retransmit_queue:
            self._rto_timer.arm_at(self.sim.now + self._current_rto())
        else:
            self._rto_timer.disarm()

    def _cancel_rto(self) -> None:
        self._rto_timer.disarm()

    def _rto_fire(self) -> None:
        if not self._retransmit_queue or self.state == "CLOSED":
            return
        self.timeouts += 1
        self.stack.timeouts += 1
        # Multiplicative decrease and slow-start restart.
        flight = max(self.in_flight, self.config.mss)
        self.ssthresh = max(flight // 2, 2 * self.config.mss)
        self.cwnd = self.config.mss
        self._in_recovery = False
        self._rto_backoff = min(self._rto_backoff * 2, 64)
        self._rtt_sample = None          # Karn's rule
        self._retransmit_first()
        self._arm_rto(restart=True)

    def _retransmit_first(self) -> None:
        segment = self._retransmit_queue[0]
        self.retransmissions += 1
        self.stack.retransmissions += 1
        self._rtt_sample = None          # Karn's rule
        copy = segment.replace(
            ack=self.rcv_nxt,
            flag_ack=segment.flag_ack or self.rcv_nxt > 0)
        self._emit_unreliable(copy)

    def _arm_persist(self) -> None:
        if self._persist_timer.deadline is None:
            self._persist_timer.arm_at(self.sim.now
                                       + self._persist_interval)

    def _cancel_persist(self) -> None:
        self._persist_timer.disarm()

    def _persist_fire(self) -> None:
        """Zero-window probe: push one byte past the closed window so
        the peer re-ACKs with its current window (RFC 1122 persistence;
        without it a lost window update deadlocks the connection)."""
        if not self._send_queue or self._peer_window > 0 \
                or self.in_flight > 0 or self.state == "CLOSED":
            return
        payload = bytes(self._send_queue[:1])
        del self._send_queue[:1]
        probe = Segment(self.local_host, self.local_port, self.peer,
                        self.peer_port, seq=self.snd_nxt,
                        ack=self.rcv_nxt, payload=payload, flag_ack=True)
        self.snd_nxt += 1
        self._emit_reliable(probe)
        self._persist_interval = min(self._persist_interval * 2, 60.0)

    def _update_rtt(self, sample: float) -> None:
        if self._srtt is None:
            self._srtt = sample
            self._rttvar = sample / 2
        else:
            delta = sample - self._srtt
            self._srtt += 0.125 * delta
            self._rttvar += 0.25 * (abs(delta) - self._rttvar)

    # ------------------------------------------------------------------
    # Sending data
    # ------------------------------------------------------------------
    def _cancel_delack(self) -> None:
        self._delack_timer.disarm()
        self._segments_unacked = 0

    def _send_pure_ack(self) -> None:
        self._cancel_delack()
        self._emit_unreliable(Segment(
            self.local_host, self.local_port, self.peer, self.peer_port,
            seq=self.snd_nxt, ack=self.rcv_nxt, flag_ack=True))

    def _delack_fire(self) -> None:
        if self._segments_unacked > 0:
            self._send_pure_ack()

    def _try_send(self) -> None:
        """Transmit as much queued data as the window and Nagle permit."""
        if self.state not in ("ESTABLISHED", "CLOSE_WAIT", "FIN_WAIT_1",
                              "CLOSING", "LAST_ACK"):
            # Handshake not finished (data stays queued) or fully closed.
            return
        config = self.config
        while self._send_queue:
            window = min(self.cwnd, self._peer_window)
            available = window - self.in_flight
            if available <= 0:
                if self._peer_window == 0 and self.in_flight == 0:
                    # Zero window with nothing in flight: only a persist
                    # probe can discover when it reopens.
                    self._arm_persist()
                else:
                    # Window-limited with a deep queue: flag the steady
                    # bulk-transfer candidate for the fast-forward
                    # driver (checked by the engine between events).
                    ff = self.stack.fastforward
                    if ff is not None and len(self._send_queue) \
                            >= ff.min_queue_bytes:
                        ff.note_candidate(self)
                return
            chunk = min(len(self._send_queue), config.mss, available)
            if (chunk < config.mss and chunk < len(self._send_queue)
                    and self.in_flight > 0):
                # Window fragment; wait for it to open rather than send
                # a sliver (sender-side silly window avoidance).  Same
                # steady window-limited regime as `available <= 0` when
                # the window is not a segment multiple — also a
                # fast-forward candidate.
                ff = self.stack.fastforward
                if ff is not None and len(self._send_queue) \
                        >= ff.min_queue_bytes:
                    ff.note_candidate(self)
                return
            if (chunk < config.mss and self.in_flight > 0
                    and not self.nodelay):
                # Nagle: a small segment must wait while data is unACKed.
                return
            payload = bytes(self._send_queue[:chunk])
            del self._send_queue[:chunk]
            last_chunk = not self._send_queue
            fin_here = (last_chunk and self._fin_queued
                        and not self._fin_sent
                        and self.in_flight + chunk + 1 <= window)
            segment = Segment(self.local_host, self.local_port, self.peer,
                              self.peer_port, seq=self.snd_nxt,
                              ack=self.rcv_nxt, payload=payload,
                              flag_ack=True, flag_psh=last_chunk,
                              flag_fin=fin_here)
            self.snd_nxt += chunk
            if fin_here:
                self.snd_nxt += 1
                self._fin_sent = True
                self._advance_close_state_after_fin()
            self._cancel_delack()   # the ACK rides along
            self._emit_reliable(segment)
        if (self._fin_queued and not self._fin_sent
                and not self._send_queue):
            self._emit_reliable(Segment(
                self.local_host, self.local_port, self.peer,
                self.peer_port, seq=self.snd_nxt, ack=self.rcv_nxt,
                flag_ack=True, flag_fin=True))
            self.snd_nxt += 1
            self._fin_sent = True
            self._cancel_delack()
            self._advance_close_state_after_fin()

    def _advance_close_state_after_fin(self) -> None:
        if self.state == "ESTABLISHED":
            self.state = "FIN_WAIT_1"
        elif self.state == "CLOSE_WAIT":
            self.state = "LAST_ACK"

    # ------------------------------------------------------------------
    # Segment reception
    # ------------------------------------------------------------------
    def _receive(self, segment: Segment) -> None:
        self.segments_received += 1
        if segment.flag_rst:
            self._handle_rst()
            return
        if self.state == "SYN_SENT":
            self._handle_syn_sent(segment)
            return
        if self.state == "SYN_RCVD" and segment.flag_ack \
                and segment.ack >= 1:
            self.state = "ESTABLISHED"
            self.on_connect(self)
            # Fall through: the ACK may carry data.
        if self._receive_shutdown and segment.payload_len:
            # Data for a receive-closed socket: reset, as real stacks do.
            self._emit_unreliable(Segment(
                self.local_host, self.local_port, self.peer,
                self.peer_port, seq=self.snd_nxt, ack=self.rcv_nxt,
                flag_rst=True, flag_ack=True))
            self._teardown()
            return
        if segment.flag_ack:
            self._handle_ack(segment)
        if self.state == "CLOSED":
            return
        delivered, fin_ready = self._ingest(segment)
        if fin_ready:
            self._handle_fin()
        elif delivered:
            self._schedule_ack()

    def _handle_syn_sent(self, segment: Segment) -> None:
        if not (segment.flag_syn and segment.flag_ack):
            return
        self.rcv_nxt = segment.seq + 1
        self._handle_ack(segment)
        self.state = "ESTABLISHED"
        self._send_pure_ack()
        self.on_connect(self)
        self._try_send()

    def _handle_ack(self, segment: Segment) -> None:
        ack = segment.ack
        window_changed = segment.window != self._peer_window
        self._peer_window = segment.window
        if window_changed:
            # A window update reopens (or closes) the send path.
            self._persist_interval = 1.0
            if self._peer_window > 0:
                self._cancel_persist()
                self._try_send()
        if ack > self.snd_una:
            if self._rtt_sample is not None \
                    and ack >= self._rtt_sample[0]:
                self._update_rtt(self.sim.now - self._rtt_sample[1])
                self._rtt_sample = None
            self._rto_backoff = 1
            self._dup_acks = 0
            self.snd_una = ack
            while (self._retransmit_queue
                   and self._retransmit_queue[0].end_seq <= ack):
                self._retransmit_queue.pop(0)
            if self._retransmit_queue:
                self._arm_rto(restart=True)
            else:
                self._cancel_rto()
            if self._in_recovery:
                if ack >= self._recovery_point:
                    self._in_recovery = False
                else:
                    # NewReno partial ACK: the next segment after the
                    # hole is also lost — retransmit it now instead of
                    # waiting out a full RTO per additional loss.
                    if self._retransmit_queue:
                        self._retransmit_first()
                    self._try_send()
                    return
            if not self._syn_acked:
                # The ACK of our SYN completes the handshake; it does
                # not clock the congestion window (cwnd starts at its
                # initial value when the connection is ESTABLISHED).
                self._syn_acked = True
            elif self.cwnd < self.ssthresh:
                # Slow start: one extra segment per ACK received.
                self.cwnd += self.config.mss
            else:
                # Congestion avoidance: ~one extra segment per RTT.
                self.cwnd += max(1, self.config.mss * self.config.mss
                                 // self.cwnd)
            if self._fin_sent and self.snd_una == self.snd_nxt:
                if self.state == "FIN_WAIT_1":
                    self.state = "FIN_WAIT_2"
                elif self.state in ("LAST_ACK", "CLOSING"):
                    self._finish_clean_close()
                    return
            self._try_send()
            return
        # Duplicate ACK: no payload, no flags, no window change, data
        # outstanding (window updates are not loss signals).
        if (ack == self.snd_una and self.in_flight > 0
                and not window_changed
                and not segment.payload_len and not segment.flag_syn
                and not segment.flag_fin):
            self._dup_acks += 1
            if self._dup_acks == self.config.dupack_threshold \
                    and not self._in_recovery:
                self.fast_retransmits += 1
                self.stack.fast_retransmits += 1
                flight = max(self.in_flight, self.config.mss)
                self.ssthresh = max(flight // 2, 2 * self.config.mss)
                self.cwnd = self.ssthresh
                self._in_recovery = True
                self._recovery_point = self.snd_nxt
                self._retransmit_first()
                self._arm_rto(restart=True)

    # ------------------------------------------------------------------
    # Receiving data (with out-of-order reassembly)
    # ------------------------------------------------------------------
    def _ingest(self, segment: Segment) -> Tuple[bool, bool]:
        """Process payload/FIN; returns (delivered_data, fin_in_order)."""
        if not segment.payload_len and not segment.flag_fin:
            return False, False
        if segment.end_seq <= self.rcv_nxt:
            # Entirely old data (a retransmission we already have):
            # re-ACK immediately so the peer can advance.
            self._send_pure_ack()
            return False, False
        if segment.seq > self.rcv_nxt:
            # A gap: buffer for reassembly, send an immediate duplicate
            # ACK to trigger the peer's fast retransmit.
            self._reassembly.setdefault(segment.seq, segment)
            self._send_pure_ack()
            return False, False
        delivered = False
        fin_ready = self._absorb(segment)
        if segment.payload_len:
            delivered = True
        # Drain any now-contiguous buffered segments.
        while self._reassembly:
            nxt = self._reassembly.pop(self.rcv_nxt, None)
            if nxt is None:
                break
            fin_ready = self._absorb(nxt) or fin_ready
            if nxt.payload_len:
                delivered = True
        return delivered, fin_ready

    def _absorb(self, segment: Segment) -> bool:
        """Deliver an in-order (possibly overlapping) segment's payload;
        returns True when its FIN became in-order."""
        payload = segment.payload
        if segment.seq < self.rcv_nxt:
            payload = payload[self.rcv_nxt - segment.seq:]
        if payload and self._paused and (self._recv_buffered_bytes
                                         + len(payload)
                                         > self.config.rwnd):
            # Data beyond the advertised window (a persist probe):
            # drop it and re-advertise, as a zero-window receiver does.
            self._send_pure_ack()
            return False
        if payload:
            self.rcv_nxt += len(payload)
            self.bytes_received += len(payload)
            self._segments_unacked += 1
            if self._paused:
                self._recv_buffer.append(bytes(payload))
                self._recv_buffered_bytes += len(payload)
            else:
                self.on_data(self, payload)
        if segment.flag_fin and not self._fin_received \
                and segment.end_seq - 1 == self.rcv_nxt:
            self.rcv_nxt += 1
            self._fin_received = True
            return True
        return False

    def _schedule_ack(self) -> None:
        """Apply the delayed-ACK policy after delivering data."""
        if self._segments_unacked == 0:
            return
        if self._segments_unacked >= self.config.delack_segments:
            self._send_pure_ack()
        elif self._delack_timer.deadline is None:
            period = self.config.delack_delay
            if self.config.delack_heartbeat:
                # BSD fast-timer: fire at the next multiple of the
                # period (0..period from now, 100 ms average at 200 ms).
                next_tick = (int(self.sim.now / period) + 1) * period
                self._delack_timer.arm_at(next_tick)
            else:
                self._delack_timer.arm_at(self.sim.now + period)

    def _handle_fin(self) -> None:
        # FINs are acknowledged immediately (BSD behaviour) so the peer's
        # close completes without waiting on the delayed-ACK timer.
        self._send_pure_ack()
        if self._paused:
            # Buffered data must reach the application before its EOF.
            self._pending_eof = True
        else:
            self.on_eof(self)
        if self.state == "ESTABLISHED":
            self.state = "CLOSE_WAIT"
        elif self.state == "FIN_WAIT_2":
            self._finish_clean_close()
        elif self.state == "FIN_WAIT_1":
            # Simultaneous close.
            self.state = "CLOSING"

    def _handle_rst(self) -> None:
        self._teardown()
        self.on_reset(self)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def _finish_clean_close(self) -> None:
        self._teardown()
        self.on_closed(self)

    def _teardown(self) -> None:
        self.state = "CLOSED"
        self._cancel_delack()
        self._cancel_rto()
        self._cancel_persist()
        self._retransmit_queue.clear()
        self._reassembly.clear()
        self._send_queue.clear()
        self.stack._forget(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TcpConnection {self.local_host}:{self.local_port}->"
                f"{self.peer}:{self.peer_port} {self.state}>")


class TcpListener:
    """A passive socket: accepts incoming connections on a port.

    The ``on_accept`` callback receives the new :class:`TcpConnection`
    as soon as the SYN arrives, *before* the handshake completes, so the
    application can assign data callbacks without racing the first
    request segment.
    """

    __slots__ = ("stack", "port", "on_accept", "accepted")

    def __init__(self, stack: "TcpStack", port: int,
                 on_accept: Callable[[TcpConnection], None]) -> None:
        self.stack = stack
        self.port = port
        self.on_accept = on_accept
        self.accepted = 0

    def close(self) -> None:
        """Stop accepting new connections."""
        self.stack._listeners.pop(self.port, None)


class TcpStack:
    """Per-host TCP: port allocation, demultiplexing, connection table."""

    __slots__ = ("sim", "host", "link", "config", "fastforward",
                 "_connections", "_listeners", "_next_ephemeral",
                 "total_connections", "checksum_drops", "retransmissions",
                 "timeouts", "fast_retransmits")

    EPHEMERAL_BASE = 32768

    def __init__(self, sim: Simulator, host: str, link: Link,
                 config: Optional[TcpConfig] = None) -> None:
        self.sim = sim
        self.host = host
        self.link = link
        self.config = config or TcpConfig()
        #: Optional fast-forward driver (set by the network wiring when
        #: every endpoint's config allows the analytic fast path).
        self.fastforward = None
        self._connections: Dict[Tuple[int, str, int], TcpConnection] = {}
        self._listeners: Dict[int, TcpListener] = {}
        self._next_ephemeral = self.EPHEMERAL_BASE
        #: Total connections ever opened from/accepted by this stack.
        self.total_connections = 0
        #: Arriving segments discarded for a payload/checksum mismatch
        #: (only fault-injected segments carry a checksum at all).
        self.checksum_drops = 0
        #: Stack-wide loss-recovery totals.  Connections are forgotten
        #: from the table as they close, so per-connection counters are
        #: unreachable after a run; these survive it.
        self.retransmissions = 0
        self.timeouts = 0
        self.fast_retransmits = 0
        link.attach(host, self._receive)

    # ------------------------------------------------------------------
    def listen(self, port: int,
               on_accept: Callable[[TcpConnection], None]) -> TcpListener:
        """Open a passive socket on ``port``."""
        if port in self._listeners:
            raise TcpError(f"port {port} already listening")
        listener = TcpListener(self, port, on_accept)
        self._listeners[port] = listener
        return listener

    def connect(self, peer: str, peer_port: int,
                config: Optional[TcpConfig] = None) -> TcpConnection:
        """Actively open a connection to ``peer:peer_port``.

        Returns the connection immediately; assign callbacks to it, then
        run the simulator.  Data queued with :meth:`TcpConnection.send`
        before establishment flows once the handshake completes.
        """
        local_port = self._next_ephemeral
        self._next_ephemeral += 1
        conn = TcpConnection(self, local_port, peer, peer_port,
                             config or self.config)
        self._connections[(local_port, peer, peer_port)] = conn
        self.total_connections += 1
        conn._connect()
        return conn

    # ------------------------------------------------------------------
    def _receive(self, segment: Segment) -> None:
        if segment.checksum is not None \
                and zlib.crc32(segment.payload) != segment.checksum:
            # A corrupted segment: real stacks drop it on the bad
            # checksum and let the sender's loss recovery repair the
            # stream.  (``checksum is None`` — every segment outside
            # fault injection — skips the hash entirely.)
            self.checksum_drops += 1
            return
        key = (segment.dport, segment.src, segment.sport)
        conn = self._connections.get(key)
        if conn is not None:
            conn._receive(segment)
            return
        listener = self._listeners.get(segment.dport)
        if listener is not None and segment.flag_syn and not segment.flag_ack:
            conn = TcpConnection(self, segment.dport, segment.src,
                                 segment.sport, self.config)
            self._connections[key] = conn
            self.total_connections += 1
            listener.accepted += 1
            listener.on_accept(conn)
            conn._passive_open(segment)
            return
        # Segment for a closed/unknown port: RST (unless it *is* a RST).
        if not segment.flag_rst:
            self.link.transmit(Segment(
                self.host, segment.dport, segment.src, segment.sport,
                seq=segment.ack, ack=segment.end_seq,
                flag_rst=True, flag_ack=True))

    def _forget(self, conn: TcpConnection) -> None:
        self._connections.pop(
            (conn.local_port, conn.peer, conn.peer_port), None)


def _noop(*_args: object) -> None:
    """Default connection callback: do nothing."""
