"""An HTTP proxy — including the Keep-Alive bug HTTP/1.1 was built to fix.

The paper: "The 'Keep-Alive' extension to HTTP/1.0 is a form of
persistent connections.  HTTP/1.1's design differs in minor details
from Keep-Alive to overcome a problem discovered when Keep-Alive is
used with more than one proxy between a client and a server."

The problem, reproduced by :class:`SimHttpProxy` in ``blind`` mode:

1. the client sends ``Connection: Keep-Alive``;
2. an old HTTP/1.0 proxy does not understand the ``Connection`` header
   and **forwards it verbatim** to the origin;
3. the origin believes its *immediate peer* (the proxy) asked for a
   persistent connection, so it answers with ``Connection: Keep-Alive``
   and **holds the upstream connection open**;
4. the blind proxy only knows one way to find the end of a response —
   wait for the origin to close — so the exchange **hangs** until an
   idle timeout fires.

HTTP/1.1's fixes are both implemented in ``hop_by_hop`` mode:
``Connection`` (and the headers it names) are stripped before
forwarding, and the proxy understands message framing
(``Content-Length`` / chunked), so persistence is negotiated per hop.
"""

from __future__ import annotations

from typing import Optional

from ..http import (ParseError, Request, RequestParser,
                    ResponseParser)
from ..simnet.engine import Event, Simulator
from ..simnet.tcp import TcpConnection, TcpStack

__all__ = ["SimHttpProxy"]

#: Headers that are hop-by-hop per RFC 2068 §13.5.1.
HOP_BY_HOP = ("connection", "keep-alive", "proxy-connection",
              "transfer-encoding", "te", "trailer", "upgrade",
              "proxy-authenticate", "proxy-authorization")


class _ProxiedExchange:
    """One client connection being relayed through the proxy."""

    def __init__(self, proxy: "SimHttpProxy",
                 client_conn: TcpConnection) -> None:
        self.proxy = proxy
        self.client_conn = client_conn
        self.request_parser = RequestParser()
        self.response_parser = ResponseParser()
        self.upstream: Optional[TcpConnection] = None
        self._idle_timer: Optional[Event] = None
        self._upstream_buffer = bytearray()
        client_conn.on_data = self._client_data
        client_conn.on_eof = self._client_eof
        client_conn.on_reset = lambda c: self._shutdown()

    # -- client side ----------------------------------------------------
    def _client_data(self, _conn: TcpConnection, data: bytes) -> None:
        try:
            requests = self.request_parser.feed(data)
        except ParseError:
            self.client_conn.abort()
            return
        for request in requests:
            self._forward_request(request)

    def _client_eof(self, _conn: TcpConnection) -> None:
        if self.upstream is not None and self.upstream.state not in (
                "CLOSED",):
            self.upstream.close()

    # -- upstream side ---------------------------------------------------
    def _forward_request(self, request: Request) -> None:
        headers = request.headers.copy()
        if self.proxy.mode == "hop_by_hop":
            # RFC 2068: Connection names the headers that must not be
            # forwarded; strip them all.
            for name in HOP_BY_HOP:
                headers.remove(name)
            headers.add("Via", f"1.1 {self.proxy.name}")
        # "blind" mode forwards everything verbatim — the 1.0 bug.
        outbound = Request(request.method, request.target,
                           request.version, headers, request.body)
        if self.upstream is None or self.upstream.state == "CLOSED":
            self._open_upstream()
        self.response_parser.expect(request.method)
        assert self.upstream is not None
        self.upstream.send(outbound.to_bytes())
        self.proxy.requests_forwarded += 1
        self._arm_idle_timer()

    def _open_upstream(self) -> None:
        self.upstream = self.proxy.upstream_stack.connect(
            self.proxy.upstream_host, self.proxy.upstream_port)
        self.upstream.set_nodelay(True)
        self.upstream.on_data = self._upstream_data
        self.upstream.on_eof = self._upstream_eof
        self.upstream.on_reset = lambda c: self._shutdown()
        self.response_parser = ResponseParser()

    def _upstream_data(self, _conn: TcpConnection, data: bytes) -> None:
        self._arm_idle_timer()
        if self.proxy.mode == "hop_by_hop":
            # A framing-aware proxy forwards each complete response and
            # keeps both hops' persistence independent.
            for response in self.response_parser.feed(data):
                headers = response.headers.copy()
                for name in HOP_BY_HOP:
                    headers.remove(name)
                headers.add("Via", f"1.1 {self.proxy.name}")
                import dataclasses
                relayed = dataclasses.replace(response, headers=headers)
                if self.client_conn.state != "CLOSED":
                    self.client_conn.send(relayed.to_bytes())
                self.proxy.responses_forwarded += 1
            if self.response_parser.outstanding == 0:
                # Framing-aware: every response is delimited, so no
                # idle timer is needed while the hop sits quiet.
                self._cancel_idle_timer()
        else:
            # The blind proxy just streams bytes; it can only delimit
            # the response by upstream close, so it buffers nothing —
            # but it also cannot tell the client the exchange is over
            # until the origin hangs up.
            if self.client_conn.state != "CLOSED":
                self.client_conn.send(data)

    def _upstream_eof(self, _conn: TcpConnection) -> None:
        self._cancel_idle_timer()
        if self.proxy.mode == "blind":
            # Upstream closed: that is the blind proxy's end-of-response
            # signal; relay the close to the client.
            if self.client_conn.state != "CLOSED":
                self.client_conn.close()
            self.proxy.responses_forwarded += 1
        self.upstream = None

    # -- idle timeout ------------------------------------------------------
    def _arm_idle_timer(self) -> None:
        self._cancel_idle_timer()
        self._idle_timer = self.proxy.sim.schedule(
            self.proxy.idle_timeout, self._idle_fire)

    def _cancel_idle_timer(self) -> None:
        if self._idle_timer is not None:
            self._idle_timer.cancel()
            self._idle_timer = None

    def _idle_fire(self) -> None:
        """The only escape from the Keep-Alive deadlock: give up."""
        self._idle_timer = None
        self.proxy.idle_timeouts += 1
        if self.upstream is not None and self.upstream.state != "CLOSED":
            self.upstream.close()
            self.upstream.shutdown_receive()
            self.upstream = None
        if self.client_conn.state != "CLOSED":
            self.client_conn.close()

    def _shutdown(self) -> None:
        self._cancel_idle_timer()
        if self.upstream is not None and self.upstream.state != "CLOSED":
            self.upstream.abort()
        if self.client_conn.state != "CLOSED":
            self.client_conn.abort()


class SimHttpProxy:
    """Relay client connections to an upstream origin server.

    Parameters
    ----------
    sim:
        The simulator.
    client_stack / upstream_stack:
        The proxy host's TCP stacks on the client-facing and
        origin-facing links (see
        :class:`~repro.simnet.network.ChainNetwork`).
    upstream_host, upstream_port:
        Where the origin lives.
    mode:
        ``"blind"`` — a 1996 HTTP/1.0 proxy: forwards all headers
        verbatim, delimits responses by upstream close.
        ``"hop_by_hop"`` — HTTP/1.1-compliant: strips hop-by-hop
        headers, understands message framing.
    idle_timeout:
        How long the blind proxy waits on a silent upstream before
        giving up (the deadlock's only exit).
    """

    def __init__(self, sim: Simulator, client_stack: TcpStack,
                 upstream_stack: TcpStack, upstream_host: str,
                 upstream_port: int = 80, *, port: int = 8080,
                 mode: str = "blind", idle_timeout: float = 15.0,
                 name: str = "proxy.w3.org") -> None:
        if mode not in ("blind", "hop_by_hop"):
            raise ValueError(f"unknown proxy mode {mode!r}")
        self.sim = sim
        self.upstream_stack = upstream_stack
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.mode = mode
        self.idle_timeout = idle_timeout
        self.name = name
        self.port = port
        #: Statistics.
        self.requests_forwarded = 0
        self.responses_forwarded = 0
        self.idle_timeouts = 0
        client_stack.listen(port, self._accept)

    def _accept(self, conn: TcpConnection) -> None:
        conn.set_nodelay(True)
        _ProxiedExchange(self, conn)
