"""Static resources with validators, ranges and precompressed variants.

The server side of the paper's content handling:

* every resource carries an **entity tag** (and usually a
  ``Last-Modified`` date) so both HTTP/1.1 and HTTP/1.0 validation work,
* HTML resources keep a **precomputed deflated body** — the paper's
  server "does not perform on-the-fly compression but sends out a
  pre-computed deflated version of the Microscape HTML page",
* byte ranges with ``If-Range`` are honoured (the paper's "poor man's
  multiplexing" idiom).
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, Iterable, Optional, Tuple

from ..content import artifacts
from ..content.microscape import MicroscapeSite
from ..http import (HTTP10, HTTP11, Headers, MULTIPART_BOUNDARY,
                    PAPER_EPOCH, Request, Response, deflate_encode,
                    encode_multipart_byteranges, format_http_date,
                    if_range_matches, is_not_modified, parse_range_header,
                    apply_range, accepted_codings)
from ..http.delta import DELTA_IM_TOKEN, encode_delta, wants_delta
from .profiles import ServerProfile

__all__ = ["Resource", "ResourceStore", "build_response"]


def _make_etag(body: bytes) -> str:
    digest = hashlib.md5(body).hexdigest()[:8]
    return f'"{digest}"'


@dataclasses.dataclass
class Resource:
    """One servable object with its validators."""

    url: str
    content_type: str
    body: bytes
    etag: str
    last_modified: str
    #: Precomputed deflate variant (None when not worth serving).
    deflate_body: Optional[bytes] = None
    #: Retained older instances keyed by entity tag, enabling
    #: delta-encoded responses (paper reference [26] / RFC 3229).
    previous_versions: Dict[str, bytes] = dataclasses.field(
        default_factory=dict)

    #: How many superseded instances to retain for delta encoding.
    MAX_RETAINED = 4

    @classmethod
    def create(cls, url: str, content_type: str, body: bytes,
               *, precompress: bool = True,
               modified_at: float = PAPER_EPOCH) -> "Resource":
        deflated = None
        if precompress and content_type.startswith("text/"):
            # Precompression is content-addressed: the deflated variant
            # of the 42 KB Microscape page is built once per cache
            # lifetime, not once per worker process.
            candidate = artifacts.get_store().memoize(
                "deflate.text", {"sha256": hashlib.sha256(body).hexdigest()},
                0, lambda: deflate_encode(body))
            if len(candidate) < len(body):
                deflated = candidate
        return cls(url=url, content_type=content_type, body=body,
                   etag=_make_etag(body),
                   last_modified=format_http_date(modified_at),
                   deflate_body=deflated)

    def superseded_by(self, new_body: bytes, *,
                      modified_at: float = PAPER_EPOCH,
                      precompress: bool = True) -> "Resource":
        """A new version of this resource that remembers this one."""
        updated = Resource.create(self.url, self.content_type, new_body,
                                  precompress=precompress,
                                  modified_at=modified_at)
        history = dict(self.previous_versions)
        history[self.etag] = self.body
        while len(history) > self.MAX_RETAINED:
            history.pop(next(iter(history)))
        updated.previous_versions = history
        return updated


class ResourceStore:
    """URL → :class:`Resource` lookup for a server."""

    def __init__(self, resources: Iterable[Resource] = ()) -> None:
        self._resources: Dict[str, Resource] = {
            resource.url: resource for resource in resources}

    @classmethod
    def from_site(cls, site: MicroscapeSite, *,
                  precompress: bool = True) -> "ResourceStore":
        """Build the store from a Microscape site."""
        return cls(Resource.create(obj.url, obj.content_type, obj.body,
                                   precompress=precompress)
                   for obj in site.objects.values())

    def add(self, resource: Resource) -> None:
        self._resources[resource.url] = resource

    def update(self, url: str, new_body: bytes) -> Resource:
        """Replace a resource's content, retaining the old instance so
        delta-capable clients can fetch just the difference."""
        current = self._resources.get(url)
        if current is None:
            raise KeyError(f"no resource at {url}")
        updated = current.superseded_by(new_body)
        self._resources[url] = updated
        return updated

    def get(self, url: str) -> Optional[Resource]:
        return self._resources.get(url.split("?", 1)[0])

    def __len__(self) -> int:
        return len(self._resources)

    def __contains__(self, url: str) -> bool:
        return self.get(url) is not None

    def urls(self) -> Tuple[str, ...]:
        return tuple(self._resources)


def build_response(store: ResourceStore, request: Request,
                   profile: ServerProfile, *,
                   date_header: Optional[str] = None) -> Response:
    """Construct the response a 1997 server would send for ``request``.

    Handles method checks, cache validation (ETag before date, per RFC
    2068), ranges with ``If-Range``, and negotiated deflate content
    coding.  The returned response has no connection-management headers;
    the connection layer (:mod:`repro.server.base`) adds those.
    """
    version = HTTP11 if request.version >= HTTP11 else HTTP10
    headers = Headers()
    if date_header:
        headers.add("Date", date_header)
    headers.add("Server", profile.server_header)
    for name, value in profile.extra_response_headers:
        headers.add(name, value)

    if request.method not in ("GET", "HEAD"):
        body = b"<html><body>method not allowed</body></html>"
        headers.add("Content-Type", "text/html")
        headers.add("Content-Length", str(len(body)))
        return Response(405, version, headers, body,
                        request_method=request.method)

    resource = store.get(request.target)
    if resource is None:
        body = b"<html><body>not found</body></html>"
        headers.add("Content-Type", "text/html")
        headers.add("Content-Length", str(len(body)))
        return Response(404, version, headers, body,
                        request_method=request.method)

    headers.add("ETag", resource.etag)
    if profile.sends_last_modified:
        headers.add("Last-Modified", resource.last_modified)

    # The server always *compares* against its internal modification
    # date, even when the profile does not advertise Last-Modified
    # (Jigsaw knew its resources' dates; it just did not emit them).
    if is_not_modified(resource.etag, resource.last_modified,
                       request.headers.get("If-None-Match"),
                       request.headers.get("If-Modified-Since")):
        if profile.verbose_304:
            headers.add("Content-Type", resource.content_type)
            headers.add("Content-Length", str(len(resource.body)))
        return Response(304, version, headers,
                        request_method=request.method)

    # Changed: a delta-capable client holding a retained instance gets
    # just the difference (226 IM Used, paper reference [26]).
    if wants_delta(request.headers):
        stale_tag = (request.headers.get("If-None-Match") or "").strip()
        old_body = resource.previous_versions.get(stale_tag)
        if old_body is not None:
            delta = encode_delta(old_body, resource.body)
            if len(delta) < len(resource.body):
                headers.add("IM", DELTA_IM_TOKEN)
                headers.add("Delta-Base", stale_tag)
                headers.add("Content-Type", resource.content_type)
                headers.add("Content-Length", str(len(delta)))
                return Response(226, version, headers, delta,
                                request_method=request.method)

    body = resource.body
    content_coding = None
    if (resource.deflate_body is not None
            and "deflate" in accepted_codings(request.headers)):
        body = resource.deflate_body
        content_coding = "deflate"

    range_header = request.headers.get("Range")
    if range_header is not None and content_coding is None:
        if if_range_matches(request.headers.get("If-Range"),
                            resource.etag, resource.last_modified):
            try:
                ranges = parse_range_header(range_header, len(body))
            except ValueError:
                ranges = None
            if ranges is not None:
                if not ranges:
                    headers.add("Content-Range", f"bytes */{len(body)}")
                    headers.add("Content-Length", "0")
                    return Response(416, version, headers,
                                    request_method=request.method)
                if len(ranges) == 1:
                    headers.add("Content-Type", resource.content_type)
                    partial = apply_range(body, headers, ranges[0])
                    return Response(206, version, headers, partial,
                                    request_method=request.method)
                # Multiple ranges: a multipart/byteranges 206.
                multipart = encode_multipart_byteranges(
                    body, ranges, resource.content_type)
                headers.add("Content-Type",
                            "multipart/byteranges; boundary="
                            + MULTIPART_BOUNDARY)
                headers.add("Content-Length", str(len(multipart)))
                return Response(206, version, headers, multipart,
                                request_method=request.method)

    headers.add("Content-Type", resource.content_type)
    if content_coding:
        headers.add("Content-Encoding", content_coding)
    headers.add("Content-Length", str(len(body)))
    return Response(200, version, headers, body,
                    request_method=request.method)
