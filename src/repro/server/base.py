"""The simulated HTTP server: connection handling and response buffering.

Implements the server-side lessons of the paper:

* **Response buffering** — "For each connection, the server maintains a
  response buffer that it flushes either when full, or when there is no
  more requests coming in on that connection, or before it goes idle.
  This buffering enables aggregating responses (for example, cache
  validation responses) into fewer packets even on a high-speed
  network."  The per-connection buffer here flushes on exactly those
  triggers.
* **Serial CPU** — the paper's single-CPU Ultra-1 serialized request
  processing across connections; so does :class:`SimHttpServer`, which
  is what makes HTTP/1.0's four parallel connections pay the same total
  CPU while adding per-connection overhead.
* **Careful close** — half-close by default (stop sending, keep ACKing
  client data); the naive both-halves close that RSTs pipelined clients
  is available via :data:`~repro.server.profiles.NAIVE_CLOSE_SERVER`.
* **TCP_NODELAY** — buffering implementations must disable Nagle; the
  profile controls it so the Nagle ablation can turn it back on.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Set

from ..client.pipeline import FlowWindow
from ..http import (HTTP10, HTTP11, Headers, ParseError, Request,
                    RequestParser, Response, PAPER_EPOCH,
                    format_http_date)
from ..http.framing import (F_CANCEL, F_DATA, F_END_STREAM, F_HEADERS,
                            F_PUSH_PROMISE, F_WINDOW_UPDATE, FramingError,
                            FrameReader, INITIAL_STREAM_WINDOW,
                            MAX_DATA_PAYLOAD, encode_frame,
                            window_increment)
from ..simnet.engine import Simulator
from ..simnet.tcp import TcpConnection, TcpStack
from .profiles import ServerProfile
from .static import ResourceStore, build_response

__all__ = ["SimHttpServer"]


class _ServerConnection:
    """Per-connection server state."""

    def __init__(self, server: "SimHttpServer",
                 conn: TcpConnection) -> None:
        self.server = server
        self.conn = conn
        self.parser = RequestParser()
        self.out = bytearray()
        self.requests_seen = 0
        self.responses_queued = 0       # built but CPU not finished
        self.responses_sent = 0
        self.eof_received = False
        self.closed = False
        #: Fired once when the connection reaches a terminal state; the
        #: server's finite-capacity accept gate uses it to free a slot.
        self.on_closed: Optional[Callable[[], None]] = None

    def _release(self) -> None:
        callback, self.on_closed = self.on_closed, None
        if callback is not None:
            callback()

    # ------------------------------------------------------------------
    def on_data(self, _conn: TcpConnection, data: bytes) -> None:
        if self.closed:
            return
        try:
            requests = self.parser.feed(data)
        except ParseError:
            self.server._send_error(self, 400)
            return
        for request in requests:
            self.requests_seen += 1
            self.responses_queued += 1
            self.server._dispatch(self, request)

    def on_eof(self, _conn: TcpConnection) -> None:
        self.eof_received = True
        if self.responses_queued == 0:
            self.finish()

    def on_reset(self, _conn: TcpConnection) -> None:
        self.closed = True
        self._release()

    # ------------------------------------------------------------------
    def queue_bytes(self, payload: bytes) -> None:
        """Append response bytes, applying the buffer-flush policy."""
        if self.closed:
            return
        self.out.extend(payload)
        profile = self.server.profile
        if not profile.buffered:
            self.flush()
        elif len(self.out) >= profile.output_buffer_size:
            self.flush()
        elif self.responses_queued == 0:
            # No more requests pending on this connection right now.
            self.flush()

    def flush(self, close: bool = False) -> None:
        if self.out and not self.closed and self.conn.state != "CLOSED":
            self.conn.send(bytes(self.out), close=close)
            self.out.clear()
        elif close and not self.closed and self.conn.state != "CLOSED":
            self.conn.close()

    def finish(self) -> None:
        """Flush and close (per the profile's close discipline).

        The FIN rides on the final data segment when possible.
        """
        if self.closed:
            return
        self.flush(close=True)
        self.closed = True
        if not self.server.profile.half_close \
                and self.conn.state != "CLOSED":
            self.conn.shutdown_receive()
        self._release()


class _MuxServerStream:
    """One response being framed onto a MUX connection."""

    __slots__ = ("sid", "head", "body", "sent", "window")

    def __init__(self, sid: int, head: bytes, body: bytes) -> None:
        self.sid = sid
        self.head: Optional[bytes] = head
        self.body = body
        self.sent = 0
        self.window = FlowWindow(INITIAL_STREAM_WINDOW)


class _MuxServerConnection:
    """Per-connection server state for the MUX framing modes.

    Responses are emitted round-robin, at most one DATA frame per
    stream per pass, each stream throttled by its flow-control window —
    this is what interleaves the HTML body with the GIFs instead of
    serializing whole responses like pipelining does.
    """

    def __init__(self, server: "SimHttpServer", conn: TcpConnection,
                 push: bool) -> None:
        self.server = server
        self.conn = conn
        self.push_enabled = push
        self.reader = FrameReader()
        self.out = bytearray()
        self.requests_seen = 0
        self.responses_queued = 0       # built but CPU not finished
        self.responses_sent = 0
        #: Streams currently emitting, in round-robin order.
        self.active: Dict[int, _MuxServerStream] = {}
        #: Streams refused by the client while their response was still
        #: on the CPU queue.
        self.cancelled: Set[int] = set()
        self.next_push_id = 2
        self.eof_received = False
        self.closed = False
        #: Stop accepting new streams (request limit reached); finish
        #: once the queue drains.
        self.closing = False
        #: Fired once when the connection reaches a terminal state (see
        #: :class:`_ServerConnection`).
        self.on_closed: Optional[Callable[[], None]] = None

    def _release(self) -> None:
        callback, self.on_closed = self.on_closed, None
        if callback is not None:
            callback()

    # ------------------------------------------------------------------
    def on_data(self, _conn: TcpConnection, data: bytes) -> None:
        if self.closed:
            return
        try:
            frames = self.reader.feed(data)
        except FramingError:
            self.closed = True
            if self.conn.state != "CLOSED":
                self.conn.abort()
            self._release()
            return
        for frame in frames:
            self._on_frame(frame)

    def _on_frame(self, frame) -> None:
        if self.closed:
            return
        if frame.type == F_HEADERS:
            self._on_request(frame.stream, frame.payload)
        elif frame.type == F_WINDOW_UPDATE:
            stream = self.active.get(frame.stream)
            if stream is not None:
                stream.window.grant(window_increment(frame))
                self._pump()
        elif frame.type == F_CANCEL:
            self._on_cancel(frame.stream)
        # Clients send nothing else; stray frame types are ignored.

    def _on_request(self, sid: int, payload: bytes) -> None:
        if self.closing:
            # Winding down: unanswered streams die with the connection
            # and the client re-issues them (its normal recovery path).
            return
        try:
            requests = RequestParser().feed(payload)
        except ParseError:
            requests = []
        if len(requests) != 1:
            self.closed = True
            if self.conn.state != "CLOSED":
                self.conn.abort()
            self._release()
            return
        self.requests_seen += 1
        self.responses_queued += 1
        self.server._dispatch_mux(self, sid, requests[0])

    def _on_cancel(self, sid: int) -> None:
        self.server._note("cancel", f"stream {sid}")
        if sid in self.active:
            del self.active[sid]
        else:
            self.cancelled.add(sid)
        self._maybe_finish()

    def on_eof(self, _conn: TcpConnection) -> None:
        self.eof_received = True
        self._maybe_finish()

    def on_reset(self, _conn: TcpConnection) -> None:
        self.closed = True
        self._release()

    # ------------------------------------------------------------------
    def start_stream(self, sid: int, head: bytes, body: bytes) -> None:
        """CPU finished for this response: begin framing it out."""
        self.active[sid] = _MuxServerStream(sid, head, body)
        self._pump()

    def queue_frame(self, ftype: int, sid: int,
                    payload: bytes = b"") -> None:
        """Append one frame, applying the buffer-flush policy."""
        if self.closed:
            return
        tap = self.server.frame_tap
        if tap is not None:
            tap(self.server.sim.now, "s>c", ftype, sid, payload)
        self.out.extend(encode_frame(ftype, sid, payload))
        profile = self.server.profile
        if not profile.buffered:
            self.flush()
        elif len(self.out) >= profile.output_buffer_size:
            self.flush()

    def _pump(self) -> None:
        """Round-robin emission: one DATA frame per stream per pass."""
        if self.closed:
            return
        progress = True
        while progress:
            progress = False
            for sid in list(self.active):
                stream = self.active.get(sid)
                if stream is None:
                    continue
                if stream.head is not None:
                    self.queue_frame(F_HEADERS, sid, stream.head)
                    stream.head = None
                    progress = True
                remaining = len(stream.body) - stream.sent
                if remaining > 0:
                    can = stream.window.sendable(
                        min(MAX_DATA_PAYLOAD, remaining))
                    if can > 0:
                        chunk = bytes(stream.body[stream.sent:
                                                  stream.sent + can])
                        stream.window.spend(can)
                        stream.sent += can
                        self.queue_frame(F_DATA, sid, chunk)
                        progress = True
                if stream.head is None \
                        and stream.sent >= len(stream.body) \
                        and sid in self.active:
                    self.queue_frame(F_END_STREAM, sid)
                    del self.active[sid]
                    self.responses_sent += 1
                    progress = True
        if self.responses_queued == 0:
            self.flush()
        self._maybe_finish()

    def _maybe_finish(self) -> None:
        if self.closed:
            return
        if self.responses_queued or self.active:
            return
        if self.closing or self.eof_received:
            self.finish()

    # ------------------------------------------------------------------
    def flush(self, close: bool = False) -> None:
        if self.out and not self.closed and self.conn.state != "CLOSED":
            self.conn.send(bytes(self.out), close=close)
            self.out.clear()
        elif close and not self.closed and self.conn.state != "CLOSED":
            self.conn.close()

    def finish(self) -> None:
        if self.closed:
            return
        self.flush(close=True)
        self.closed = True
        if not self.server.profile.half_close \
                and self.conn.state != "CLOSED":
            self.conn.shutdown_receive()
        self._release()


class _ParkedConnection:
    """A connection accepted by TCP but waiting for a server slot.

    While parked, the client's bytes (and any EOF/RST) are buffered
    here; activation replays them into a real per-connection state in
    arrival order, so the served dialogue is indistinguishable from one
    that was merely delayed in the listen queue.
    """

    __slots__ = ("conn", "arrived_at", "buffered", "eof", "reset")

    def __init__(self, conn: TcpConnection, now: float) -> None:
        self.conn = conn
        self.arrived_at = now
        self.buffered = bytearray()
        self.eof = False
        self.reset = False

    def on_data(self, _conn: TcpConnection, data: bytes) -> None:
        self.buffered.extend(data)

    def on_eof(self, _conn: TcpConnection) -> None:
        self.eof = True

    def on_reset(self, _conn: TcpConnection) -> None:
        self.reset = True


class SimHttpServer:
    """An HTTP/1.0 + HTTP/1.1 static server on the simulated network.

    Parameters
    ----------
    sim, stack:
        Simulator and the host's TCP stack.
    store:
        The resources to serve.
    profile:
        Behavioural profile (Jigsaw / Apache / ablations).
    port:
        Listening port (default 80).
    mux, push:
        Speak the MUX framing protocol on accepted connections; with
        ``push``, speculatively push inline images after an HTML GET.
    max_concurrent:
        Finite service capacity: at most this many connections are
        handled at once; excess accepted connections park in a FIFO
        backlog (their bytes buffered) until a handled connection
        reaches a terminal state.  ``None`` (the default) is the
        paper's unbounded single-robot regime and changes nothing.
    """

    def __init__(self, sim: Simulator, stack: TcpStack,
                 store: ResourceStore, profile: ServerProfile,
                 port: int = 80, mux: bool = False,
                 push: bool = False,
                 max_concurrent: Optional[int] = None) -> None:
        self.sim = sim
        self.stack = stack
        self.store = store
        self.profile = profile
        self.port = port
        self.mux = mux
        self.push = push
        #: Finite accept/service capacity (None = unbounded).  May be
        #: assigned after construction but before the first accept.
        self.max_concurrent = max_concurrent
        self._active_connections = 0
        self._accept_backlog: "deque[_ParkedConnection]" = deque()
        #: Seconds each parked connection waited for a slot, in
        #: activation order (empty when capacity is unbounded).
        self.queue_waits: List[float] = []
        self._cpu_free_at = 0.0
        #: Optional hook observing every MUX frame the server emits:
        #: ``tap(now, "s>c", frame_type, stream_id, payload)`` (set by
        #: the experiment runner when sanitizing).
        self.frame_tap = None
        #: Statistics for tests.
        self.requests_served = 0
        self.pushes_promised = 0
        self.pushes_sent = 0
        self.connections_accepted = 0
        #: Arrival ordinal of the last request, across all connections —
        #: the key by which scripted server faults fire.
        self.requests_received = 0
        #: Optional :class:`~repro.faults.RecoveryLog` the server notes
        #: injected faults into (set by the experiment runner).
        self.recovery = None
        #: Total CPU-busy seconds consumed (the paper's future work:
        #: "the CPU time savings of HTTP/1.1 ... could now be
        #: quantified for Apache").
        self.cpu_busy_seconds = 0.0
        stack.listen(port, self._accept)

    # ------------------------------------------------------------------
    # CPU model: one serial processor
    # ------------------------------------------------------------------
    def _cpu_run(self, cost: float, callback: Callable[[], None]) -> None:
        start = max(self.sim.now, self._cpu_free_at)
        self._cpu_free_at = start + cost
        self.cpu_busy_seconds += cost
        self.sim.schedule_at(self._cpu_free_at, callback)

    # ------------------------------------------------------------------
    def _accept(self, conn: TcpConnection) -> None:
        self.connections_accepted += 1
        if self.max_concurrent is not None \
                and self._active_connections >= self.max_concurrent:
            parked = _ParkedConnection(conn, self.sim.now)
            conn.on_data = parked.on_data
            conn.on_eof = parked.on_eof
            conn.on_reset = parked.on_reset
            self._accept_backlog.append(parked)
            return
        self._activate(conn)

    def _activate(self, conn: TcpConnection,
                  parked: Optional[_ParkedConnection] = None) -> None:
        if self.mux:
            state = _MuxServerConnection(self, conn, self.push)
        else:
            state = _ServerConnection(self, conn)
        if self.max_concurrent is not None:
            self._active_connections += 1
            state.on_closed = self._connection_closed
        conn.set_nodelay(self.profile.nodelay)
        conn.on_data = state.on_data
        conn.on_eof = state.on_eof
        conn.on_reset = state.on_reset
        # Accepting a connection costs CPU (fork/thread dispatch).
        self._cpu_free_at = max(self.sim.now, self._cpu_free_at) \
            + self.profile.per_connection_cpu
        self.cpu_busy_seconds += self.profile.per_connection_cpu
        if parked is not None:
            self.queue_waits.append(self.sim.now - parked.arrived_at)
            if parked.buffered:
                state.on_data(conn, bytes(parked.buffered))
            if parked.eof:
                state.on_eof(conn)
            if parked.reset:
                state.on_reset(conn)

    def _connection_closed(self) -> None:
        self._active_connections -= 1
        while self._accept_backlog \
                and self._active_connections < self.max_concurrent:
            parked = self._accept_backlog.popleft()
            if parked.reset or parked.conn.state == "CLOSED":
                # The client gave up while waiting; no slot consumed.
                continue
            self._activate(parked.conn, parked)

    def _note(self, kind: str, detail: str = "") -> None:
        if self.recovery is not None:
            self.recovery.note(self.sim.now, "server", kind, detail)

    def _build_or_fault(self, request: Request):
        """Account the request, apply scripted faults, build the
        response.  Shared by the plain-HTTP and MUX dispatch paths;
        returns ``(response, abort_after, ordinal)``."""
        self.requests_received += 1
        ordinal = self.requests_received
        faults = getattr(self.profile, "faults", None)
        abort_after = None
        if faults is not None:
            if ordinal in faults.stall_requests:
                # The worker freezes before touching this request: the
                # serial CPU is unavailable for the stall (which is not
                # billed as useful work).
                self._cpu_free_at = max(self.sim.now, self._cpu_free_at) \
                    + faults.stall_seconds
                self._note("stall", f"request {ordinal} stalls "
                           f"{faults.stall_seconds:g}s")
            if ordinal in faults.abort_requests:
                abort_after = faults.abort_after_bytes
        if faults is not None and ordinal in faults.error_503_requests:
            self._note("503", f"request {ordinal} ({request.target})")
            error_body = b"Service Unavailable\r\n"
            response = Response(
                503, request.version,
                Headers([("Content-Type", "text/plain"),
                         ("Content-Length", str(len(error_body)))]),
                body=error_body, request_method=request.method)
        else:
            response = build_response(
                self.store, request, self.profile,
                date_header=format_http_date(PAPER_EPOCH + self.sim.now))
        return response, abort_after, ordinal

    def _dispatch(self, state: _ServerConnection,
                  request: Request) -> None:
        response, abort_after, ordinal = self._build_or_fault(request)
        self._apply_connection_headers(state, request, response)
        cost = (self.profile.base_cpu
                + len(response.body_on_wire()) * self.profile.cpu_per_byte)
        close_after = self._should_close_after(state, request, response)
        payload = response.to_bytes()
        body = response.body_on_wire()
        head = payload[:len(payload) - len(body)]

        def emit() -> None:
            if abort_after is not None:
                state.responses_queued -= 1
                self._note("abort", f"request {ordinal} RST after "
                           f"{abort_after} bytes")
                if state.closed or state.conn.state == "CLOSED":
                    return
                # Send a truncated prefix of the response, then slam the
                # connection shut with an RST mid-body.
                state.flush()
                partial = payload[:abort_after]
                if partial:
                    state.conn.send(partial)
                state.closed = True
                state.conn.abort()
                # A local abort never sees on_reset (that is the peer's
                # event), so free the accept-gate slot here.
                state._release()
                return
            state.responses_queued -= 1
            state.responses_sent += 1
            self.requests_served += 1
            closing = close_after or (state.eof_received
                                      and state.responses_queued == 0)
            if closing and not self.profile.split_header_write:
                # Append without triggering an intermediate flush so the
                # FIN can ride on the final data segment.
                if not state.closed:
                    state.out.extend(payload)
                state.finish()
                return
            if self.profile.split_header_write:
                # Pre-tuning implementation shape: the status line,
                # header block and body reach the socket as separate
                # writes.  With Nagle enabled the later small writes
                # stall until the first one is ACKed — and the peer is
                # sitting on a delayed ACK.  This is the interaction
                # the paper's "Nagle Interaction" section describes.
                status_end = payload.find(b"\r\n") + 2
                state.queue_bytes(payload[:status_end])
                if body:
                    state.queue_bytes(head[status_end:])
                    state.queue_bytes(body)
                else:
                    state.queue_bytes(payload[status_end:])
            else:
                state.queue_bytes(payload)
            if closing:
                state.finish()

        self._cpu_run(cost, emit)

    # ------------------------------------------------------------------
    # MUX dispatch path
    # ------------------------------------------------------------------
    def _dispatch_mux(self, state: _MuxServerConnection, sid: int,
                      request: Request) -> None:
        response, abort_after, ordinal = self._build_or_fault(request)
        limit = self.profile.max_requests_per_connection
        if limit is not None and state.requests_seen >= limit:
            state.closing = True
        if (state.push_enabled and not state.closing
                and request.method == "GET" and response.status == 200
                and response.headers.get("Content-Type",
                                         "").startswith("text/html")):
            self._promise_pushes(state, request)
        self._schedule_mux_response(state, sid, request, response,
                                    abort_after, ordinal, push=False)

    def _schedule_mux_response(self, state: _MuxServerConnection,
                               sid: int, request: Request,
                               response: Response,
                               abort_after: Optional[int],
                               ordinal: int, push: bool) -> None:
        cost = (self.profile.base_cpu
                + len(response.body_on_wire()) * self.profile.cpu_per_byte)
        payload = response.to_bytes()
        body = response.body_on_wire()
        head = payload[:len(payload) - len(body)]

        def emit() -> None:
            state.responses_queued -= 1
            if sid in state.cancelled:
                state.cancelled.discard(sid)
                state._maybe_finish()
                return
            if state.closed or state.conn.state == "CLOSED":
                return
            if abort_after is not None:
                self._note("abort", f"request {ordinal} RST after "
                           f"{abort_after} bytes")
                state.flush()
                framed = bytearray(encode_frame(F_HEADERS, sid, head))
                for offset in range(0, len(body), MAX_DATA_PAYLOAD):
                    framed += encode_frame(
                        F_DATA, sid, body[offset:offset + MAX_DATA_PAYLOAD])
                partial = bytes(framed[:abort_after])
                if partial:
                    state.conn.send(partial)
                state.closed = True
                state.conn.abort()
                # Same slot-release rule as the plain-HTTP abort path.
                state._release()
                return
            if push:
                self.pushes_sent += 1
            else:
                self.requests_served += 1
            state.start_stream(sid, head, body)

        self._cpu_run(cost, emit)

    def _promise_pushes(self, state: _MuxServerConnection,
                        request: Request) -> None:
        """Speculatively frame every inline image after an HTML GET.

        The promises go out ahead of the HTML body so the client knows
        not to request what is already coming; each pushed response
        then pays the normal serial-CPU cost behind the HTML.
        """
        host = request.headers.get("Host", "")
        for url in self.store.urls():
            if url == request.target:
                continue
            resource = self.store.get(url)
            if resource is None \
                    or not resource.content_type.startswith("image/"):
                continue
            sid = state.next_push_id
            state.next_push_id += 2
            self.pushes_promised += 1
            state.queue_frame(F_PUSH_PROMISE, sid,
                              url.encode("ascii", "replace"))
            push_request = Request("GET", url, HTTP11,
                                   Headers([("Host", host)]))
            response = build_response(
                self.store, push_request, self.profile,
                date_header=format_http_date(PAPER_EPOCH + self.sim.now))
            state.responses_queued += 1
            self._schedule_mux_response(state, sid, push_request,
                                        response, None, 0, push=True)

    def _apply_connection_headers(self, state: _ServerConnection,
                                  request: Request,
                                  response: Response) -> None:
        limit = self.profile.max_requests_per_connection
        closing = (limit is not None and state.requests_seen >= limit)
        if (self.profile.close_keepalive_after_head
                and request.method == "HEAD"
                and request.version < HTTP11):
            closing = True
        if request.version >= HTTP11:
            if closing or request.headers.contains_token("Connection",
                                                         "close"):
                response.headers.add("Connection", "close")
        else:
            keep = (request.headers.contains_token("Connection",
                                                   "keep-alive")
                    and not closing)
            if keep:
                response.headers.add("Connection", "Keep-Alive")

    def _should_close_after(self, state: _ServerConnection,
                            request: Request,
                            response: Response) -> bool:
        limit = self.profile.max_requests_per_connection
        if limit is not None and state.requests_seen >= limit:
            return True
        if request.version >= HTTP11:
            return request.headers.contains_token("Connection", "close")
        if (self.profile.close_keepalive_after_head
                and request.method == "HEAD"):
            return True
        return not request.headers.contains_token("Connection",
                                                  "keep-alive")

    def _send_error(self, state: _ServerConnection, status: int) -> None:
        response = Response(status, HTTP10,
                            Headers([("Content-Length", "0")]),
                            request_method="GET")
        state.queue_bytes(response.to_bytes())
        state.finish()
