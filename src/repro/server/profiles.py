"""Server behaviour profiles: Jigsaw, Apache, and ablation variants.

The paper ran two servers on the same Sun SPARC Ultra-1:

* **Jigsaw 1.06** — W3C's object-oriented server, "written entirely in
  Java" and "ran interpreted in our tests", hence slower per request;
* **Apache 1.2b10** — written in C, faster, and (after the authors'
  feedback to Dean Gaudet) with response buffering matching Jigsaw's;
* **Apache 1.2b2** — the earlier beta whose "output buffering ... was
  not yet as good" and which "processes at most five requests before
  terminating a TCP connection", kept here as an ablation profile.

CPU costs are the calibration constants of this reproduction (the paper
never reports them; they are fitted so the LAN elapsed times land near
Tables 4–5).  A request costs ``base_cpu + body_bytes * cpu_per_byte``
— cache-validation responses are cheap, full-body responses pay for the
I/O — and each accepted connection costs ``per_connection_cpu``.  The
server CPU is a *serial* resource, as on the paper's single-CPU host:
four parallel HTTP/1.0 connections still queue for the same processor.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

__all__ = ["ServerProfile", "JIGSAW", "JIGSAW_INITIAL", "APACHE",
           "APACHE_12B2", "NAIVE_CLOSE_SERVER", "NAGLE_STALL_SERVER"]


@dataclasses.dataclass(frozen=True)
class ServerProfile:
    """Tunable behaviour of a simulated HTTP server."""

    name: str
    #: Fixed CPU seconds to parse and dispatch one request.
    base_cpu: float
    #: Additional CPU seconds per body byte served.
    cpu_per_byte: float
    #: CPU seconds charged when accepting a TCP connection.
    per_connection_cpu: float
    #: Response buffer size in bytes; the buffer also flushes when the
    #: server has no further queued requests on the connection ("when
    #: there is no more requests coming in on that connection").
    output_buffer_size: int = 4096
    #: Whether responses are buffered at all (Apache 1.2b2's buffering
    #: "was not yet as good": it wrote each response immediately).
    buffered: bool = True
    #: Write response headers and body with separate ``send`` calls — a
    #: common pre-tuning implementation shape.  Combined with Nagle
    #: (``nodelay=False``) this is the classic small-write stall the
    #: paper's "Nagle Interaction" section warns about: the body write
    #: waits for the (delayed) ACK of the header segment.
    split_header_write: bool = False
    #: Close the connection after this many responses (None = never).
    max_requests_per_connection: Optional[int] = None
    #: Close carefully (half-close, keep receiving) vs naively (both
    #: directions at once, provoking RSTs against pipelined clients).
    half_close: bool = True
    #: TCP_NODELAY on accepted connections (the paper's recommendation
    #: for implementations that buffer output).
    nodelay: bool = True
    #: Server header advertised (its length shows up in the byte counts;
    #: Jigsaw's responses were a little more verbose than Apache's).
    server_header: str = "Generic/1.0"
    #: Whether responses carry a Last-Modified date in addition to the
    #: ETag.  Jigsaw 1.06 served synthesized resources with entity tags
    #: only, which is what forced date-only HTTP/1.0-era clients to
    #: re-fetch (see the browser comparison tables).
    sends_last_modified: bool = True
    #: Extra headers stamped onto every response (header verbosity is
    #: why Jigsaw's byte counts run higher than Apache's in the tables).
    extra_response_headers: tuple = ()
    #: Include Content-Type/Content-Length on 304 responses, as Jigsaw
    #: did (allowed by RFC 2068, and visible in the byte counts).
    verbose_304: bool = False
    #: Drop HTTP/1.0 keep-alive after answering a HEAD request (a
    #: Jigsaw 1.06 behaviour visible in the browser tables: Internet
    #: Explorer's HEAD-based revalidation paid a fresh connection per
    #: image against Jigsaw but not against Apache).
    close_keepalive_after_head: bool = False


#: Jigsaw as first tested (Table 3): response buffering already present
#: (which is why "in our initial tests, we did not observe significant
#: problems introduced by Nagle's algorithm"), but Nagle not yet
#: disabled.  The Table 3 elapsed-time pathology lives on the *client*
#: side (libwww's two-file disk cache); see
#: :func:`repro.core.modes.initial_tuning_client_config`.
JIGSAW_INITIAL = ServerProfile(
    name="Jigsaw-initial",
    base_cpu=0.018,             # pre-warm-up interpreted Java
    cpu_per_byte=1.6e-6,
    per_connection_cpu=0.022,
    output_buffer_size=8192,
    nodelay=False,
    server_header="Jigsaw/1.06",
    sends_last_modified=False,
)

#: The Nagle-interaction ablation: an unbuffered server that writes the
#: status line, headers and body separately, with Nagle enabled.  "In
#: later experiments in which the buffering behavior of the
#: implementations were changed, we did observe significant (sometimes
#: dramatic) transmission delays due to Nagle."  Compare against the
#: same profile with ``nodelay=True``.
NAGLE_STALL_SERVER = ServerProfile(
    name="NagleStall",
    base_cpu=0.0040,
    cpu_per_byte=1.1e-6,
    per_connection_cpu=0.0060,
    buffered=False,
    split_header_write=True,
    nodelay=False,
    server_header="Unbuffered/0.1",
)

#: Jigsaw 1.06 running interpreted Java on the Ultra-1.
JIGSAW = ServerProfile(
    name="Jigsaw",
    base_cpu=0.0070,
    cpu_per_byte=1.6e-6,
    per_connection_cpu=0.0080,
    output_buffer_size=8192,
    server_header="Jigsaw/1.06",
    sends_last_modified=False,
    extra_response_headers=(
        ("Cache-Control", "max-age=86400"),
        ("Expires", "Wed, 25 Jun 1997 00:00:00 GMT"),
    ),
    verbose_304=True,
    close_keepalive_after_head=True,
)

#: Apache 1.2b10 with the post-feedback buffering fixes.
APACHE = ServerProfile(
    name="Apache",
    base_cpu=0.0040,
    cpu_per_byte=1.1e-6,
    per_connection_cpu=0.0060,
    output_buffer_size=4096,
    server_header="Apache/1.2b10",
    extra_response_headers=(("Accept-Ranges", "bytes"),),
)

#: Apache 1.2b2: unbuffered responses, at most five requests per
#: connection — the configuration whose pipelining performance the
#: paper's authors helped diagnose.
APACHE_12B2 = ServerProfile(
    name="Apache-1.2b2",
    base_cpu=0.0040,
    cpu_per_byte=1.1e-6,
    per_connection_cpu=0.0060,
    output_buffer_size=4096,
    buffered=False,
    max_requests_per_connection=5,
    server_header="Apache/1.2b2",
)

#: A deliberately broken server that closes both connection halves at
#: once — the "Connection Management" cautionary tale.
NAIVE_CLOSE_SERVER = ServerProfile(
    name="NaiveClose",
    base_cpu=0.0040,
    cpu_per_byte=1.1e-6,
    per_connection_cpu=0.0060,
    max_requests_per_connection=5,
    half_close=False,
    server_header="Naive/0.1",
)
