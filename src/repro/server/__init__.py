"""HTTP servers: Jigsaw- and Apache-like static servers on the simulator.

:class:`~repro.server.base.SimHttpServer` implements the server-side
behaviours the paper identifies as performance-critical — response
buffering with flush-on-idle, serial CPU, careful half-close,
TCP_NODELAY — parameterized by :class:`~repro.server.profiles.ServerProfile`
(Jigsaw 1.06, Apache 1.2b10, and the Apache 1.2b2 / naive-close
ablations).
"""

from .base import SimHttpServer
from .profiles import (APACHE, APACHE_12B2, JIGSAW, JIGSAW_INITIAL,
                       NAGLE_STALL_SERVER, NAIVE_CLOSE_SERVER,
                       ServerProfile)
from .static import Resource, ResourceStore, build_response

__all__ = [
    "SimHttpServer",
    "APACHE", "APACHE_12B2", "JIGSAW", "JIGSAW_INITIAL",
    "NAIVE_CLOSE_SERVER", "NAGLE_STALL_SERVER",
    "ServerProfile",
    "Resource", "ResourceStore", "build_response",
]
