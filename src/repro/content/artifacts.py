"""Content-addressed artifact store for expensive encoder outputs.

Profiling after the PR-2 engine optimization showed the simulator is no
longer where grid sweeps spend their time: every fresh worker process
pays ~0.9 s re-synthesizing the Microscape site (the iterative
``_calibrate`` encode loops in :mod:`repro.content.microscape`, GIF LZW
in :mod:`repro.content.gif`, deflate in :mod:`repro.http.coding`)
before its first 10–80 ms simulation cell.  This module memoizes those
encodes so only the first-ever build pays for them.

Artifacts are **content addressed**: the key is a SHA-256 over the
canonical JSON of ``(builder name, parameters, seed,``
:data:`ENCODER_VERSION`\\ ``)``.  Identical inputs always map to the
same blob; any change to an encoder must bump :data:`ENCODER_VERSION`,
which atomically invalidates every stored artifact (old blobs are
simply never addressed again).  Because the stored value *is* the
encoder's exact output bytes, serving a blob from memory, from disk, or
re-encoding from scratch are byte-for-byte interchangeable — the
golden-trace bit-identity guarantee does not depend on the cache's
state.

Layout: an in-process LRU of decoded blobs in front of loose files
under ``.repro-cache/artifacts/<k[:2]>/<k>.blob``, written atomically
(unique temp name, then :func:`os.replace`) so any number of runner
processes can share one cache directory without corruption or partial
reads.

Disable with ``--no-artifact-cache`` on the CLI, the environment
variable ``REPRO_ARTIFACT_CACHE=0``, or :func:`configure`\\
``(enabled=False)``; a disabled store calls its producer every time and
touches no files.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import pickle
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional, Union

__all__ = ["ENCODER_VERSION", "DEFAULT_ARTIFACT_DIR", "ArtifactStats",
           "ArtifactStore", "get_store", "set_store", "configure",
           "store_state", "artifact_key"]

#: Version of the encoder family feeding the store.  **Bump this
#: whenever any memoized encoder changes output** (GIF/PNG/MNG codecs,
#: the Microscape generators, deflate parameters): the version is part
#: of every key, so a bump invalidates all previously stored artifacts.
ENCODER_VERSION = 1

#: Default blob directory, alongside the result cache.
DEFAULT_ARTIFACT_DIR = os.path.join(".repro-cache", "artifacts")

#: Environment switch: set to ``0`` / ``false`` / ``off`` to disable.
_ENV_FLAG = "REPRO_ARTIFACT_CACHE"

#: Process-unique suffixes for atomic temp-then-rename writes (the pid
#: alone is not enough: two stores in one process may write one key).
_TMP_COUNTER = itertools.count()


def artifact_key(builder: str, params: Mapping[str, Any],
                 seed: int) -> str:
    """Stable content hash addressing one artifact.

    ``params`` must be JSON-serializable scalars/lists/dicts; the hash
    covers the builder name, the canonicalized parameters, the seed and
    :data:`ENCODER_VERSION`.
    """
    identity = {
        "builder": builder,
        "params": dict(params),
        "seed": int(seed),
        "encoder_version": ENCODER_VERSION,
    }
    blob = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ArtifactStats:
    """Monotonic hit/miss counters for one store's lifetime."""

    __slots__ = ("hits", "memory_hits", "disk_hits", "misses", "puts",
                 "bytes_read", "bytes_written")

    def __init__(self) -> None:
        self.hits = 0
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.puts = 0
        self.bytes_read = 0
        self.bytes_written = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class ArtifactStore:
    """In-memory LRU over on-disk content-addressed blobs.

    Parameters
    ----------
    root:
        Blob directory (created on first write).  ``None`` keeps the
        store memory-only: still a useful in-process memo, nothing
        persisted.
    max_memory_entries:
        LRU capacity; the hot Microscape build touches ~200 artifacts,
        so the default comfortably holds a whole site.
    enabled:
        A disabled store is a transparent pass-through: every
        ``memoize`` calls its producer, nothing is stored.
    """

    __slots__ = ("root", "enabled", "stats", "_memory", "_max_memory",
                 "_lock")

    def __init__(self, root: Union[str, Path, None] = DEFAULT_ARTIFACT_DIR,
                 *, max_memory_entries: int = 512,
                 enabled: bool = True) -> None:
        self.root = Path(root) if root is not None else None
        self.enabled = enabled
        self.stats = ArtifactStats()
        self._memory: "OrderedDict[str, bytes]" = OrderedDict()
        self._max_memory = max(0, int(max_memory_entries))
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Raw blob access
    # ------------------------------------------------------------------
    def path(self, key: str) -> Optional[Path]:
        """On-disk location for ``key`` (None for memory-only stores)."""
        if self.root is None:
            return None
        return self.root / key[:2] / f"{key}.blob"

    def get(self, key: str) -> Optional[bytes]:
        """The blob for ``key``, or None on a miss."""
        if not self.enabled:
            return None
        with self._lock:
            cached = self._memory.get(key)
            if cached is not None:
                self._memory.move_to_end(key)
                self.stats.hits += 1
                self.stats.memory_hits += 1
                return cached
        path = self.path(key)
        if path is not None:
            try:
                blob = path.read_bytes()
            except OSError:
                blob = None
            if blob is not None:
                self.stats.hits += 1
                self.stats.disk_hits += 1
                self.stats.bytes_read += len(blob)
                self._remember(key, blob)
                return blob
        self.stats.misses += 1
        return None

    def put(self, key: str, blob: bytes) -> None:
        """Store ``blob`` under ``key`` (atomic write, last-wins).

        Concurrent writers racing on one key are safe: each writes its
        own uniquely named temp file and the final :func:`os.replace`
        is atomic, so readers only ever observe complete blobs — and
        content addressing makes every racer's content identical.
        """
        if not self.enabled:
            return
        self.stats.puts += 1
        self._remember(key, blob)
        path = self.path(key)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / (
            f".{key}.tmp.{os.getpid()}.{next(_TMP_COUNTER)}")
        tmp.write_bytes(blob)
        os.replace(tmp, path)
        self.stats.bytes_written += len(blob)

    def _remember(self, key: str, blob: bytes) -> None:
        if self._max_memory <= 0:
            return
        with self._lock:
            self._memory[key] = blob
            self._memory.move_to_end(key)
            while len(self._memory) > self._max_memory:
                self._memory.popitem(last=False)

    # ------------------------------------------------------------------
    # Memoization
    # ------------------------------------------------------------------
    def memoize(self, builder: str, params: Mapping[str, Any], seed: int,
                produce: Callable[[], bytes]) -> bytes:
        """The bytes ``produce()`` would return, cached content-addressed."""
        if not self.enabled:
            return produce()
        key = artifact_key(builder, params, seed)
        cached = self.get(key)
        if cached is not None:
            return cached
        blob = produce()
        self.put(key, blob)
        return blob

    def memoize_object(self, builder: str, params: Mapping[str, Any],
                       seed: int, produce: Callable[[], Any]) -> Any:
        """Like :meth:`memoize` for picklable objects (stored pickled).

        An unreadable or stale pickle (interpreter upgrade, truncated
        historic blob) counts as a miss and is overwritten.
        """
        if not self.enabled:
            return produce()
        key = artifact_key(builder, params, seed)
        cached = self.get(key)
        if cached is not None:
            try:
                return pickle.loads(cached)
            except Exception:
                self.stats.misses += 1
        value = produce()
        self.put(key, pickle.dumps(value, pickle.HIGHEST_PROTOCOL))
        return value

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def clear(self) -> int:
        """Drop the memory layer and delete every blob; returns count."""
        with self._lock:
            self._memory.clear()
        removed = 0
        if self.root is not None and self.root.is_dir():
            for path in sorted(self.root.glob("*/*.blob")):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        if self.root is None or not self.root.is_dir():
            return len(self._memory)
        return sum(1 for _ in self.root.glob("*/*.blob"))


# ----------------------------------------------------------------------
# The process-default store
# ----------------------------------------------------------------------
_DEFAULT_STORE: Optional[ArtifactStore] = None


def _env_enabled() -> bool:
    return os.environ.get(_ENV_FLAG, "1").lower() not in (
        "0", "false", "off", "no")


def get_store() -> ArtifactStore:
    """The process-wide default store (created lazily)."""
    global _DEFAULT_STORE
    if _DEFAULT_STORE is None:
        _DEFAULT_STORE = ArtifactStore(enabled=_env_enabled())
    return _DEFAULT_STORE


def set_store(store: Optional[ArtifactStore]) -> None:
    """Replace the process-default store (None resets to lazy default)."""
    global _DEFAULT_STORE
    _DEFAULT_STORE = store


def configure(*, enabled: Optional[bool] = None,
              root: Union[str, Path, None, type(...)] = ...) -> ArtifactStore:
    """Adjust the default store in place (building it if needed).

    ``root=...`` (the default) leaves the blob directory unchanged;
    pass a path or None to move it / go memory-only.  Used by the CLI's
    ``--no-artifact-cache`` and by pool workers applying the parent's
    configuration.
    """
    global _DEFAULT_STORE
    current = get_store()
    new_root = current.root if root is ... else (
        Path(root) if root is not None else None)
    new_enabled = current.enabled if enabled is None else bool(enabled)
    if new_root != current.root:
        _DEFAULT_STORE = ArtifactStore(new_root, enabled=new_enabled)
    else:
        current.enabled = new_enabled
    return _DEFAULT_STORE


def store_state() -> Dict[str, Any]:
    """Picklable snapshot of the default store's configuration.

    What a :class:`~repro.matrix.runner.MatrixRunner` ships to pool
    workers so their default store matches the parent's (same blob
    directory, same enabled flag).
    """
    store = get_store()
    return {
        "enabled": store.enabled,
        "root": str(store.root) if store.root is not None else None,
    }
