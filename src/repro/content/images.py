"""Synthetic raster images standing in for the Microscape artwork.

The paper's test page merged real Netscape and Microsoft home-page
artwork — 40 static GIFs plus 2 animations — which we cannot ship.
These generators produce deterministic palette-indexed images of the
same *kinds* (text banners, bullets, spacers, icons, photographic
banners, animations) whose encoded sizes can be calibrated to the
paper's size histogram.  The GIF/PNG/MNG experiments then run real
codecs over real pixels.

All images are 8-bit-or-less palette images (the dominant 1997 web
format); :class:`IndexedImage` is the common in-memory representation
shared by :mod:`repro.content.gif`, :mod:`repro.content.png` and
:mod:`repro.content.mng`.
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Optional, Tuple

__all__ = ["IndexedImage", "banner", "bullet", "spacer", "icon",
           "photo_like", "animation_frames"]

Color = Tuple[int, int, int]


@dataclasses.dataclass
class IndexedImage:
    """A palette-indexed raster image.

    ``pixels`` holds one palette index per pixel, row-major.
    """

    width: int
    height: int
    palette: List[Color]
    pixels: bytes
    #: Index of the transparent palette entry, if any.
    transparent: Optional[int] = None

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("image dimensions must be positive")
        if len(self.pixels) != self.width * self.height:
            raise ValueError(
                f"pixel count {len(self.pixels)} != "
                f"{self.width}x{self.height}")
        if not 1 <= len(self.palette) <= 256:
            raise ValueError("palette must hold 1..256 colors")
        if max(self.pixels, default=0) >= len(self.palette):
            raise ValueError("pixel index out of palette range")

    @property
    def bit_depth(self) -> int:
        """Bits per pixel needed for this palette (1, 2, 4 or 8)."""
        needed = max(1, (len(self.palette) - 1).bit_length())
        for depth in (1, 2, 4, 8):
            if needed <= depth:
                return depth
        raise AssertionError("palette larger than 256 entries")

    def row(self, y: int) -> bytes:
        """Pixel indices of scanline ``y``."""
        return self.pixels[y * self.width:(y + 1) * self.width]

    def rows(self) -> List[bytes]:
        """All scanlines, top to bottom."""
        return [self.row(y) for y in range(self.height)]


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
def _blocky_glyphs(width: int, height: int, text_length: int,
                   rng: random.Random) -> List[Tuple[int, int, int, int]]:
    """Rectangles approximating rendered text (x, y, w, h per stroke)."""
    strokes = []
    pad = max(2, height // 5)
    glyph_width = max(3, (width - 2 * pad) // max(1, text_length))
    x = pad
    for _ in range(text_length):
        n_strokes = rng.randint(2, 4)
        for _ in range(n_strokes):
            sx = x + rng.randrange(max(1, glyph_width - 2))
            sy = pad + rng.randrange(max(1, height - 2 * pad))
            sw = rng.randint(1, max(1, glyph_width // 2))
            sh = rng.randint(1, max(1, (height - 2 * pad) // 2))
            strokes.append((sx, sy, sw, sh))
        x += glyph_width
        if x >= width - pad:
            break
    return strokes


def banner(text: str, width: int = 120, height: int = 24,
           fg: Color = (255, 255, 255), bg: Color = (255, 204, 0),
           seed: int = 0, speckle: float = 0.0) -> IndexedImage:
    """A text-on-color banner like the paper's Figure 1 "solutions" GIF.

    The text is rendered as deterministic blocky strokes — visually
    meaningless but statistically similar to small anti-aliased text on
    a flat background, which is what matters for codec behaviour.
    ``speckle`` adds a fraction of anti-aliasing-style mid-tone pixels,
    as real font rendering of the era produced.
    """
    rng = random.Random((len(text) * 131) ^ seed)
    pixels = bytearray(width * height)  # all background
    for sx, sy, sw, sh in _blocky_glyphs(width, height, len(text), rng):
        for y in range(sy, min(sy + sh, height)):
            base = y * width
            for x in range(sx, min(sx + sw, width)):
                pixels[base + x] = 1
    mid = tuple((a + b) // 2 for a, b in zip(fg, bg))
    if speckle > 0:
        total = width * height
        for _ in range(int(total * speckle)):
            pixels[rng.randrange(total)] = 2
    return IndexedImage(width, height, [bg, fg, mid], bytes(pixels))


def bullet(size: int = 8, color: Color = (204, 0, 0),
           bg: Color = (255, 255, 255)) -> IndexedImage:
    """A tiny disc: the classic list-bullet GIF that CSS1 makes obsolete."""
    pixels = bytearray(size * size)
    center = (size - 1) / 2.0
    radius = size / 2.0 - 0.5
    for y in range(size):
        for x in range(size):
            if (x - center) ** 2 + (y - center) ** 2 <= radius ** 2:
                pixels[y * size + x] = 1
    return IndexedImage(size, size, [bg, color], bytes(pixels),
                        transparent=0)


def spacer(width: int = 1, height: int = 1) -> IndexedImage:
    """A transparent spacer GIF (the layout hack CSS1 eliminates)."""
    return IndexedImage(width, height, [(255, 255, 255)],
                        bytes(width * height), transparent=0)


def icon(size: int = 16, colors: int = 8, seed: int = 0,
         speckle: float = 0.0) -> IndexedImage:
    """A small multi-color icon with coherent regions (logo-like).

    ``speckle`` randomizes a fraction of pixels, modelling dithered
    edges and gradients in real icon artwork.
    """
    rng = random.Random(seed)
    palette = [(rng.randrange(256), rng.randrange(256), rng.randrange(256))
               for _ in range(colors)]
    pixels = bytearray(size * size)
    # Paint a handful of rectangles over a base color: coherent regions
    # compress the way simple flat-color artwork does.
    for _ in range(colors * 2):
        color_index = rng.randrange(colors)
        x0, y0 = rng.randrange(size), rng.randrange(size)
        w = rng.randint(1, max(1, size // 2))
        h = rng.randint(1, max(1, size // 2))
        for y in range(y0, min(y0 + h, size)):
            for x in range(x0, min(x0 + w, size)):
                pixels[y * size + x] = color_index
    if speckle > 0:
        total = size * size
        for _ in range(int(total * speckle)):
            pixels[rng.randrange(total)] = rng.randrange(colors)
    return IndexedImage(size, size, palette, bytes(pixels))


def photo_like(width: int, height: int, colors: int = 128, seed: int = 0,
               noise: float = 0.5) -> IndexedImage:
    """A dithered photographic image (hard for LZW, like big JPEG-ish GIFs).

    ``noise`` in [0, 1] mixes a smooth two-axis gradient with random
    dither; higher noise ⇒ larger encoded size.  This is the calibration
    knob :mod:`repro.content.microscape` turns to hit target byte sizes.
    """
    rng = random.Random(seed)
    palette = [(i * 255 // max(1, colors - 1),
                (i * 37) % 256,
                255 - i * 255 // max(1, colors - 1))
               for i in range(colors)]
    pixels = bytearray(width * height)
    for y in range(height):
        base = y * width
        for x in range(width):
            gradient = ((x * (colors - 1)) // max(1, width - 1)
                        + (y * (colors - 1)) // max(1, height - 1)) // 2
            if rng.random() < noise:
                value = rng.randrange(colors)
            else:
                value = gradient
            pixels[base + x] = value
    return IndexedImage(width, height, palette, bytes(pixels))


def animation_frames(width: int = 60, height: int = 40, frames: int = 8,
                     colors: int = 32, seed: int = 0, noise: float = 0.35,
                     change_fraction: float = 0.5) -> List[IndexedImage]:
    """An animation: a base frame plus per-frame deltas.

    Each frame re-randomizes a moving patch plus ``change_fraction`` of
    scattered pixels; the remainder is shared with the previous frame —
    the redundancy MNG's inter-frame encoding exploits and animated GIF
    cannot.  ``change_fraction`` calibrates how much MNG wins.
    """
    rng = random.Random(seed)
    base = photo_like(width, height, colors=colors, seed=seed, noise=noise)
    sequence = [base]
    pixels = bytearray(base.pixels)
    total = width * height
    for _ in range(frames - 1):
        patch_w = max(2, width // 4)
        patch_h = max(2, height // 4)
        x0 = rng.randrange(max(1, width - patch_w))
        y0 = rng.randrange(max(1, height - patch_h))
        for y in range(y0, y0 + patch_h):
            for x in range(x0, x0 + patch_w):
                pixels[y * width + x] = rng.randrange(colors)
        for _ in range(int(total * change_fraction)):
            pixels[rng.randrange(total)] = rng.randrange(colors)
        sequence.append(IndexedImage(width, height, list(base.palette),
                                     bytes(pixels)))
    return sequence
