"""Content transformations: GIF→PNG/MNG conversion and CSS replacement.

These implement the paper's "Impact of Changing Web Content" section:

* **Converting images from GIF to PNG and MNG** — run the real codecs
  over every Microscape image and compare encoded sizes.  The paper
  measured 103,299 → 92,096 bytes for the 40 static GIFs (saving
  11,203) and 24,988 → 16,329 for the two animations (saving 8,659),
  noting that sub-200-byte images *grow* because of PNG's fixed costs.
* **Replacing images with HTML and CSS** — for every image whose role
  CSS1 can replace (banners, bullets, spacers, rules, Unicode-symbol
  icons), swap the ``<img>`` for its HTML+CSS equivalent, sharing
  identical rules, and count the bytes and HTTP requests saved.
* **The combined page** — apply both plus deflate, the paper's "back of
  the envelope calculation" that the page "might be downloaded over a
  modem in approximately 60 % of the time of HTTP/1.0 browsers".
"""

from __future__ import annotations

import dataclasses
import re
from typing import Dict, List, Tuple

from .css import (ImageRole, REPLACEABLE_ROLES, Replacement,
                  replacement_for, shared_rule_bytes)
from .microscape import MicroscapeSite, SiteObject
from .mng import encode_mng
from .png import encode_png

__all__ = ["ConversionRecord", "PngConversionReport", "convert_site_to_png",
           "CssReplacementRecord", "CssReplacementReport",
           "css_replacement_analysis", "apply_all_transforms",
           "TransformedPage"]


# ----------------------------------------------------------------------
# GIF → PNG / MNG
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class ConversionRecord:
    """One image's before/after sizes."""

    url: str
    role: ImageRole
    gif_bytes: int
    converted_bytes: int

    @property
    def saved(self) -> int:
        """Positive when the conversion shrank the image."""
        return self.gif_bytes - self.converted_bytes


@dataclasses.dataclass
class PngConversionReport:
    """Aggregate results of the batch GIF→PNG / GIF→MNG conversion."""

    static: List[ConversionRecord]
    animations: List[ConversionRecord]

    @property
    def static_gif_total(self) -> int:
        return sum(r.gif_bytes for r in self.static)

    @property
    def static_png_total(self) -> int:
        return sum(r.converted_bytes for r in self.static)

    @property
    def static_saved(self) -> int:
        return self.static_gif_total - self.static_png_total

    @property
    def animation_gif_total(self) -> int:
        return sum(r.gif_bytes for r in self.animations)

    @property
    def animation_mng_total(self) -> int:
        return sum(r.converted_bytes for r in self.animations)

    @property
    def animation_saved(self) -> int:
        return self.animation_gif_total - self.animation_mng_total

    def grew(self) -> List[ConversionRecord]:
        """Images the conversion made larger (tiny ones, per the paper)."""
        return [r for r in self.static if r.saved < 0]


def convert_site_to_png(site: MicroscapeSite, *,
                        include_gamma: bool = True) -> PngConversionReport:
    """Convert every site image with the real codecs and tally sizes.

    ``include_gamma`` keeps the 16-byte gAMA chunk the paper's
    conversion added; pass False to measure the conversion without it.
    """
    static_records = []
    animation_records = []
    for obj in site.image_objects:
        if obj.role == ImageRole.ANIMATION:
            assert obj.frames is not None
            mng = encode_mng(obj.frames)
            animation_records.append(ConversionRecord(
                obj.url, obj.role, len(obj.body), len(mng)))
        else:
            assert obj.image is not None
            png = encode_png(obj.image, include_gamma=include_gamma)
            static_records.append(ConversionRecord(
                obj.url, obj.role, len(obj.body), len(png)))
    return PngConversionReport(static_records, animation_records)


# ----------------------------------------------------------------------
# CSS replacement
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class CssReplacementRecord:
    """One image replaced by HTML+CSS."""

    url: str
    role: ImageRole
    gif_bytes: int
    replacement: Replacement

    @property
    def replacement_bytes(self) -> int:
        return self.replacement.byte_size


@dataclasses.dataclass
class CssReplacementReport:
    """Aggregate results of the image→CSS replacement pass."""

    replaced: List[CssReplacementRecord]
    kept: List[SiteObject]

    @property
    def requests_saved(self) -> int:
        """Each replaced image is one HTTP request that never happens."""
        return len(self.replaced)

    @property
    def image_bytes_removed(self) -> int:
        return sum(r.gif_bytes for r in self.replaced)

    @property
    def markup_bytes_added(self) -> int:
        """HTML snippets plus *shared* CSS rules (rules are deduplicated)."""
        html_bytes = sum(len(r.replacement.html.encode("latin-1"))
                         for r in self.replaced)
        return html_bytes + shared_rule_bytes(
            [r.replacement for r in self.replaced])

    @property
    def net_bytes_saved(self) -> int:
        return self.image_bytes_removed - self.markup_bytes_added


def css_replacement_analysis(site: MicroscapeSite) -> CssReplacementReport:
    """Classify each image and replace the replaceable ones."""
    replaced = []
    kept = []
    for obj in site.image_objects:
        assert obj.role is not None
        replacement = None
        if obj.role in REPLACEABLE_ROLES:
            replacement = replacement_for(obj.role, text=obj.text)
        if replacement is None:
            kept.append(obj)
        else:
            replaced.append(CssReplacementRecord(
                obj.url, obj.role, len(obj.body), replacement))
    return CssReplacementReport(replaced, kept)


# ----------------------------------------------------------------------
# Everything at once
# ----------------------------------------------------------------------
@dataclasses.dataclass
class TransformedPage:
    """The Microscape page after CSS replacement and PNG conversion."""

    html: bytes
    objects: Dict[str, bytes]
    css_report: CssReplacementReport
    png_report: PngConversionReport

    @property
    def total_payload(self) -> int:
        return len(self.html) + sum(len(b) for b in self.objects.values())

    @property
    def request_count(self) -> int:
        """HTML plus each remaining embedded object."""
        return 1 + len(self.objects)


def apply_all_transforms(site: MicroscapeSite) -> TransformedPage:
    """Rewrite the page: CSS replaces what it can, PNG/MNG carry the rest.

    Returns the new page (HTML with an embedded ``<style>`` block and
    rewritten ``<img>`` references) and the surviving image objects —
    the content half of the paper's "all techniques applied" estimate.
    """
    css_report = css_replacement_analysis(site)
    png_report = convert_site_to_png(site)
    converted: Dict[str, Tuple[str, bytes]] = {}
    for record, encoder in _conversions(site):
        converted[record.url] = (record.url.replace(".gif", ".png")
                                 if record.role != ImageRole.ANIMATION
                                 else record.url.replace(".gif", ".mng"),
                                 encoder)
    replaced_by_url = {r.url: r for r in css_report.replaced}
    html = site.html.body.decode("latin-1")

    def rewrite(match: "re.Match[str]") -> str:
        tag = match.group(0)
        url_match = re.search(r'src="([^"]+)"', tag)
        if not url_match:
            return tag
        url = url_match.group(1)
        if url in replaced_by_url:
            return replaced_by_url[url].replacement.html
        if url in converted:
            return tag.replace(url, converted[url][0])
        return tag

    html = re.sub(r"<img\b[^>]*>", rewrite, html)
    style_rules = shared_style_block(css_report)
    html = html.replace("</head>", style_rules + "\n</head>", 1)
    objects = {}
    for obj in site.image_objects:
        if obj.url in replaced_by_url:
            continue
        new_url, body = converted[obj.url]
        objects[new_url] = body
    return TransformedPage(html.encode("latin-1"), objects, css_report,
                           png_report)


def _conversions(site: MicroscapeSite):
    for obj in site.image_objects:
        if obj.role == ImageRole.ANIMATION:
            assert obj.frames is not None
            body = encode_mng(obj.frames)
        else:
            assert obj.image is not None
            body = encode_png(obj.image)
        yield (ConversionRecord(obj.url, obj.role, len(obj.body),
                                len(body)), body)


def shared_style_block(report: CssReplacementReport) -> str:
    """One ``<style>`` element holding each distinct rule once."""
    seen = {}
    for record in report.replaced:
        rule_text = record.replacement.css.serialize(compact=True)
        seen[rule_text] = None
    return "<style>" + "".join(seen) + "</style>"
