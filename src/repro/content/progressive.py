"""Progressive-rendering analysis: image area painted vs. bytes received.

The paper's future-work section: "PNG also provides time to render
benefits relative to GIF", and its range-request discussion assumes
browsers fetch "enough of each object to allow for progressive display".
This module quantifies both: given a prefix of an encoded image, how
much of the display *area* can already be painted (at any resolution)?

* **baseline** streams paint strictly top-to-bottom: coverage grows
  linearly with decoded rows;
* **GIF interlace** (4 passes) paints every 8th row first — a browser
  replicates each pass-1 row over the following 7, so a quarter of the
  data covers the whole canvas coarsely;
* **PNG Adam7** starts with one pixel per 8x8 block: ~2 % of the data
  already covers 100 % of the area.

Coverage is the fraction of pixels having at least a coarse
approximation (nearest received ancestor in the pass structure), the
standard progressive-display replication rule.
"""

from __future__ import annotations

import struct
import zlib
from typing import List, Tuple

from .gif import GIF_INTERLACE_PASSES, lzw_decode
from .png import ADAM7_PASSES, PNG_SIGNATURE

__all__ = ["gif_area_coverage", "png_area_coverage", "coverage_curve",
           "bytes_for_coverage"]


# ----------------------------------------------------------------------
# GIF
# ----------------------------------------------------------------------
def _gif_available_pixels(wire: bytes, prefix_len: int
                          ) -> Tuple[int, int, int, bool]:
    """(decoded pixels, width, height, interlaced) for a GIF prefix."""
    if prefix_len < 13 or wire[:3] != b"GIF":
        return 0, 0, 0, False
    width, height, packed, _bg, _ar = struct.unpack_from("<HHBBB", wire, 6)
    pos = 13
    if packed & 0x80:
        pos += 3 * (2 << (packed & 0x07))
    interlaced = False
    # Walk blocks to the first image descriptor.
    while pos < min(prefix_len, len(wire)):
        marker = wire[pos]
        if marker == 0x21:                      # extension: skip
            pos += 2
            while pos < len(wire) and wire[pos] != 0:
                pos += 1 + wire[pos]
            pos += 1
            continue
        if marker != 0x2C:
            return 0, width, height, False
        img_packed = wire[pos + 9]
        interlaced = bool(img_packed & 0x40)
        pos += 10
        if img_packed & 0x80:
            pos += 3 * (2 << (img_packed & 0x07))
        if pos >= prefix_len:
            return 0, width, height, interlaced
        min_code_size = wire[pos]
        pos += 1
        # Collect LZW bytes from sub-blocks fully inside the prefix.
        data = bytearray()
        while pos < min(prefix_len, len(wire)):
            length = wire[pos]
            pos += 1
            if length == 0:
                break
            chunk = wire[pos:pos + length]
            pos += length
            if pos > prefix_len:
                usable = length - (pos - prefix_len)
                data.extend(chunk[:max(0, usable)])
                break
            data.extend(chunk)
        pixels = lzw_decode(bytes(data), min_code_size, strict=False)
        return min(len(pixels), width * height), width, height, interlaced
    return 0, width, height, interlaced


def gif_area_coverage(wire: bytes, prefix_len: int) -> float:
    """Display-area fraction paintable from the first ``prefix_len`` bytes."""
    pixels, width, height, interlaced = _gif_available_pixels(
        wire, prefix_len)
    if not width or not height or not pixels:
        return 0.0
    rows = pixels // width
    total = width * height
    if not interlaced:
        return min(1.0, rows * width / total)
    covered = 0
    remaining = rows
    for _start, step in GIF_INTERLACE_PASSES:
        pass_rows = (height + step - 1) // step if step == 8 else \
            max(0, (height - _start + step - 1) // step)
        take = min(remaining, pass_rows)
        # A pass-k row stands in for `step` display rows (replication),
        # but never beyond what earlier passes already covered finer.
        covered += take * width * step
        remaining -= take
        if remaining <= 0:
            break
    return min(1.0, covered / total)


# ----------------------------------------------------------------------
# PNG
# ----------------------------------------------------------------------
def _png_raw_prefix(wire: bytes, prefix_len: int) -> Tuple[bytes, dict]:
    """Inflate whatever IDAT bytes fall inside the prefix."""
    if prefix_len < len(PNG_SIGNATURE) + 25 \
            or wire[:8] != PNG_SIGNATURE:
        return b"", {}
    info = {}
    idat = bytearray()
    pos = 8
    while pos + 8 <= min(prefix_len, len(wire)):
        (length,) = struct.unpack_from(">I", wire, pos)
        chunk_type = wire[pos + 4:pos + 8]
        body_start = pos + 8
        body_end = body_start + length
        available = min(body_end, prefix_len)
        if chunk_type == b"IHDR" and available >= body_start + 13:
            width, height, depth, _ct, _c, _f, interlace = \
                struct.unpack_from(">IIBBBBB", wire, body_start)
            info = {"width": width, "height": height, "depth": depth,
                    "interlaced": interlace == 1}
        elif chunk_type == b"IDAT":
            idat.extend(wire[body_start:available])
        pos = body_end + 4
    if not info:
        return b"", {}
    inflater = zlib.decompressobj()
    try:
        raw = inflater.decompress(bytes(idat))
    except zlib.error:
        raw = b""
    return raw, info


def png_area_coverage(wire: bytes, prefix_len: int) -> float:
    """Display-area fraction paintable from the first ``prefix_len`` bytes."""
    raw, info = _png_raw_prefix(wire, prefix_len)
    if not info or not raw:
        return 0.0
    width, height = info["width"], info["height"]
    depth = info["depth"]
    total = width * height
    if not info["interlaced"]:
        bytes_per_row = 1 + (width * depth + 7) // 8
        rows = len(raw) // bytes_per_row
        return min(1.0, rows * width / total)
    covered = 0
    pos = 0
    for x0, y0, dx, dy in ADAM7_PASSES:
        pass_width = (width - x0 + dx - 1) // dx
        pass_rows = (height - y0 + dy - 1) // dy
        if pass_width <= 0 or pass_rows <= 0:
            continue
        bytes_per_row = 1 + (pass_width * depth + 7) // 8
        for _row in range(pass_rows):
            if pos + bytes_per_row > len(raw):
                return min(1.0, covered / total)
            pos += bytes_per_row
            # One pass row approximates a dy-tall, full-width band at
            # dx-pixel granularity.
            covered += pass_width * dx * dy
            covered = min(covered, total)
    return min(1.0, covered / total)


# ----------------------------------------------------------------------
# Curves
# ----------------------------------------------------------------------
def coverage_curve(wire: bytes, coverage_fn, points: int = 20
                   ) -> List[Tuple[float, float]]:
    """(bytes fraction, area coverage) samples across the whole file."""
    out = []
    for index in range(1, points + 1):
        fraction = index / points
        prefix = int(len(wire) * fraction)
        out.append((fraction, coverage_fn(wire, prefix)))
    return out


def bytes_for_coverage(wire: bytes, coverage_fn, target: float,
                       resolution: int = 64) -> float:
    """Smallest byte *fraction* reaching ``target`` area coverage."""
    for index in range(1, resolution + 1):
        fraction = index / resolution
        if coverage_fn(wire, int(len(wire) * fraction)) >= target:
            return fraction
    return 1.0
