"""An incremental HTML tokenizer (the browser-parser substrate).

The robot's image discovery originally pattern-matched ``<img src>``;
this tokenizer does the job the way a 1997 browser parser did: a
streaming state machine over text / tags / comments / declarations that
tolerates attribute quoting styles, newlines inside tags, and tags
split across arbitrary chunk boundaries — and that does *not* fetch
images referenced inside comments or quoted attribute values of other
tags.

Only tokenization is implemented (no tree building): enough for
discovery, the CSS-replacement rewriter, and the paper's incremental
"first segment triggers the next request batch" behaviour.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Dict, List, Optional

__all__ = ["Token", "HtmlTokenizer", "tokenize"]

#: Attribute syntax inside a complete tag: name[=value] with double-,
#: single- or un-quoted values.
_ATTRIBUTE = re.compile(
    r"""([a-zA-Z_:][-a-zA-Z0-9_:.]*)       # name
        (?:\s*=\s*
           (?:"([^"]*)" | '([^']*)' | ([^\s>]+)))?""",
    re.VERBOSE)

_NAME = re.compile(r"[a-zA-Z][-a-zA-Z0-9_:.]*")


@dataclasses.dataclass(frozen=True)
class Token:
    """One lexical unit of the HTML stream."""

    kind: str                 # "text" | "start" | "end" | "comment" |
    #                           "declaration"
    data: str                 # text content, tag name, or raw body
    attrs: Optional[Dict[str, str]] = None

    def get(self, attribute: str, default: Optional[str] = None
            ) -> Optional[str]:
        """Case-insensitive attribute lookup for tag tokens."""
        if not self.attrs:
            return default
        return self.attrs.get(attribute.lower(), default)


#: Memoized tag classifications.  The robot re-parses the same 42 KB
#: page once per simulated run, and the matrix multiplies runs, so the
#: same raw tag strings recur endlessly; classification (two regexes +
#: attribute dict) is by far the tokenizer's hottest work.  Tokens are
#: frozen and no caller mutates ``attrs``, so sharing them is safe.
_CLASSIFY_CACHE: Dict[str, Token] = {}
_CLASSIFY_CACHE_MAX = 8192


class HtmlTokenizer:
    """Streaming tokenizer: feed chunks, receive completed tokens.

    Text tokens may be split at chunk boundaries (they are emitted as
    soon as available — a browser renders text incrementally); tags,
    comments and declarations are held until complete.

    The scanner walks the buffer with an index (``_pos``) and compacts
    only when fed the next chunk, so tokenizing an N-byte document costs
    O(N) instead of the O(N·tags) of re-slicing the remaining buffer
    after every tag.
    """

    def __init__(self) -> None:
        self._buffer = ""
        self._pos = 0
        self._state = "text"       # text | markup | comment

    def feed(self, chunk: str) -> List[Token]:
        """Consume a chunk; return the tokens it completed."""
        if self._pos:
            self._buffer = self._buffer[self._pos:]
            self._pos = 0
        self._buffer += chunk
        tokens: List[Token] = []
        while True:
            if self._state == "text":
                if not self._take_text(tokens):
                    return tokens
            elif self._state == "markup":
                if not self._take_markup(tokens):
                    return tokens
            else:   # comment
                if not self._take_comment(tokens):
                    return tokens

    def finish(self) -> List[Token]:
        """Flush any trailing text at end of input."""
        if self._state == "text" and self._pos < len(self._buffer):
            token = Token("text", self._buffer[self._pos:])
            self._buffer = ""
            self._pos = 0
            return [token]
        return []

    # ------------------------------------------------------------------
    def _take_text(self, tokens: List[Token]) -> bool:
        buf = self._buffer
        pos = self._pos
        lt = buf.find("<", pos)
        if lt == -1:
            if pos < len(buf):
                tokens.append(Token("text", buf[pos:]))
                self._buffer = ""
                self._pos = 0
            return False
        if lt > pos:
            tokens.append(Token("text", buf[pos:lt]))
            self._pos = pos = lt
        if buf.startswith("<!--", pos):
            self._state = "comment"
        elif len(buf) - pos < 4 and buf[pos:] in ("<", "<!", "<!-"):
            return False    # not enough lookahead to rule out a comment
        else:
            self._state = "markup"
        return True

    def _take_markup(self, tokens: List[Token]) -> bool:
        buf = self._buffer
        pos = self._pos
        gt = buf.find(">", pos)
        if gt == -1:
            return False
        raw = buf[pos + 1:gt]
        self._pos = gt + 1
        self._state = "text"
        token = _CLASSIFY_CACHE.get(raw)
        if token is None:
            if len(_CLASSIFY_CACHE) >= _CLASSIFY_CACHE_MAX:
                _CLASSIFY_CACHE.clear()
            token = self._classify(raw)
            _CLASSIFY_CACHE[raw] = token
        tokens.append(token)
        return True

    def _take_comment(self, tokens: List[Token]) -> bool:
        buf = self._buffer
        pos = self._pos
        end = buf.find("-->", pos + 4)
        if end == -1:
            return False
        tokens.append(Token("comment", buf[pos + 4:end]))
        self._pos = end + 3
        self._state = "text"
        return True

    @staticmethod
    def _classify(raw: str) -> Token:
        if raw.startswith("!"):
            return Token("declaration", raw[1:].strip())
        if raw.startswith("/"):
            match = _NAME.match(raw[1:].strip())
            name = match.group(0).lower() if match else ""
            return Token("end", name)
        work = raw.strip()
        match = _NAME.match(work)
        if match is None:
            return Token("text", "<" + raw + ">")     # junk, keep as text
        name = match.group(0).lower()
        attrs: Dict[str, str] = {}
        for found in _ATTRIBUTE.finditer(work[match.end():]):
            key = found.group(1).lower()
            value = next((g for g in found.groups()[1:]
                          if g is not None), "")
            attrs.setdefault(key, value)
        return Token("start", name, attrs)


def tokenize(html: str) -> List[Token]:
    """One-shot tokenization of a complete document."""
    tokenizer = HtmlTokenizer()
    tokens = tokenizer.feed(html)
    tokens.extend(tokenizer.finish())
    return tokens
