"""HTML generation and scanning utilities.

Three jobs:

* generate deterministic 1997-flavour HTML filler for the synthetic
  Microscape page (tables, font tags, nav bars, inlined images),
* scan HTML for ``<img src=...>`` references — what a browser's parser
  does to discover the embedded objects it must fetch (and what drives
  the pipelined request batches in the paper's delayed-ACK analysis),
* re-case tags for the paper's observation that uniformly lowercase
  tags deflate better than mixed-case ones (0.27 vs 0.35).
"""

from __future__ import annotations

import random
import re
from typing import List

__all__ = ["find_image_urls", "change_tag_case", "filler_paragraphs",
           "nav_table"]

_TAG = re.compile(r"(</?)([a-zA-Z][a-zA-Z0-9]*)")

#: Plausible 1997 home-page vocabulary; repetition is realistic and is
#: what gives HTML its ~3x deflate ratio.
_WORDS = (
    "internet software solutions download products support developer "
    "network server browser communicator explorer windows free trial "
    "news events partners search contact international security java "
    "technology standards members conference online services business "
    "enterprise intranet webmaster feedback copyright reserved rights "
    "home page site index new updated information resources directory "
    "announcing available version release beta preview featuring plugin "
    "multimedia audio video channels push content publishing authoring "
    "editor composer messenger mail collabra netcaster calendar admin "
    "professional edition suite platform component object activex applet "
    "script dynamic frames tables style sheets graphics images animation "
    "press investor careers training certification consulting reseller "
    "distributor order purchase pricing upgrade register subscribe "
    "newsletter archive faq documentation manual reference tutorial "
    "gallery showcase awards reviews benchmark performance speed secure "
    "transaction commerce shopping catalog worldwide regional localized"
).split()


def find_image_urls(html: str) -> List[str]:
    """All ``<img src>`` URLs in document order (duplicates preserved).

    Uses the real tokenizer (:mod:`repro.content.htmlparse`), so images
    inside comments are correctly ignored and any attribute quoting
    style works.  Duplicates matter: a browser requests each *distinct*
    URL once, so callers dedupe when building request lists, but the
    raw occurrence order is what the paper's "first segment" analysis
    depends on.
    """
    from .htmlparse import tokenize
    urls = []
    for token in tokenize(html):
        if token.kind == "start" and token.data == "img":
            src = token.get("src")
            if src:
                urls.append(src)
    return urls


def distinct_image_urls(html: str) -> List[str]:
    """Distinct image URLs in first-occurrence order."""
    seen = set()
    out = []
    for url in find_image_urls(html):
        if url not in seen:
            seen.add(url)
            out.append(url)
    return out


__all__.append("distinct_image_urls")


def change_tag_case(html: str, mode: str = "upper", seed: int = 0) -> str:
    """Re-case every tag name (attributes and text are untouched).

    ``mode`` is ``"lower"``, ``"upper"`` or ``"mixed"``.  Mixed case —
    each occurrence cased inconsistently, as hand-edited 1997 HTML was —
    is the condition the paper measured: "Compression is significantly
    worse (.35 rather than .27) if mixed case HTML tags are used...  The
    best compression was found if all HTML tags were uniformly lower
    case (since the compression dictionary can reuse what are common
    English words)."
    """
    if mode not in ("lower", "upper", "mixed"):
        raise ValueError(f"unknown mode {mode!r}")
    rng = random.Random(seed)

    def recase(match: "re.Match[str]") -> str:
        name = match.group(2)
        if mode == "upper":
            name = name.upper()
        elif mode == "lower":
            name = name.lower()
        else:
            choice = rng.randrange(3)
            if choice == 0:
                name = name.upper()
            elif choice == 1:
                name = name.lower()
            else:
                name = name.capitalize()
        return match.group(1) + name

    return _TAG.sub(recase, html)


def filler_paragraphs(count: int, words_per_paragraph: int,
                      seed: int = 0) -> str:
    """Deterministic English-ish filler in 1997 markup style."""
    rng = random.Random(seed)
    out = []
    for index in range(count):
        words = [rng.choice(_WORDS) for _ in range(words_per_paragraph)]
        words[0] = words[0].capitalize()
        # Sprinkle commas, version numbers and dates so the text has the
        # entropy of real prose rather than a flat word soup.
        for i in range(4, len(words) - 1, rng.randint(5, 9)):
            words[i] += ","
        if rng.random() < 0.6:
            slot = rng.randrange(1, len(words))
            words[slot] = (f"{rng.randint(1, 9)}."
                           f"{rng.randint(0, 99):02d}{rng.choice('ab ')}"
                           .strip())
        if rng.random() < 0.3:
            slot = rng.randrange(1, len(words))
            words[slot] = (f"{rng.choice(['June', 'July', 'August'])} "
                           f"{rng.randint(1, 30)}, 1997")
        text = " ".join(words)
        template = rng.randrange(5)
        if template == 0:
            out.append(f'<p><font size="{rng.randint(1, 4)}" '
                       f'face="helvetica,arial">{text}.</font></p>')
        elif template == 1:
            out.append(f"<p><b>{words[0]}</b> {' '.join(words[1:])}.</p>")
        elif template == 2:
            items = "".join(f"<li>{w}</li>"
                            for w in rng.sample(_WORDS, 4))
            out.append(f"<p>{text}.</p><ul>{items}</ul>")
        else:
            out.append(f"<p>{text}.</p>")
    return "\n".join(out)


def nav_table(links: List[str], seed: int = 0) -> str:
    """A table-based navigation bar, the 1997 layout workhorse."""
    rng = random.Random(seed)
    cells = []
    for link in links:
        label = link.strip("/").replace("/", " ").replace("_", " ") or "home"
        width = rng.choice((80, 90, 100, 110))
        cells.append(f'<td align="center" width="{width}">'
                     f'<a href="{link}"><font size="1">{label}'
                     f"</font></a></td>")
    return ('<table border="0" cellpadding="2" cellspacing="0" '
            'width="100%"><tr>' + "".join(cells) + "</tr></table>")
