"""GIF encoder and decoder (GIF87a / GIF89a, real LZW).

A complete, self-contained GIF codec: logical screen descriptor, global
color table, graphic-control extensions (transparency, frame delays),
the Netscape looping application extension for animations, and genuine
variable-code-width LZW with dictionary reset — the compression whose
limits the paper's PNG comparison exposes.

The GIF→PNG experiment needs *actual* encoded sizes on both sides, so
nothing here is stubbed; the decoder exists so property tests can prove
the encoder's output is self-consistent.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Sequence, Tuple

from .images import IndexedImage

__all__ = ["encode_gif", "decode_gif", "encode_animated_gif",
           "decode_animated_gif", "GifError"]

MAX_CODE_WIDTH = 12
MAX_CODES = 1 << MAX_CODE_WIDTH


class GifError(ValueError):
    """Raised for malformed GIF data."""


# ----------------------------------------------------------------------
# LZW with GIF's variable code width and sub-block framing
# ----------------------------------------------------------------------
class _BitWriter:
    """Packs variable-width codes LSB-first, as GIF requires."""

    def __init__(self) -> None:
        self.out = bytearray()
        self._acc = 0
        self._nbits = 0

    def write(self, code: int, width: int) -> None:
        self._acc |= code << self._nbits
        self._nbits += width
        while self._nbits >= 8:
            self.out.append(self._acc & 0xFF)
            self._acc >>= 8
            self._nbits -= 8

    def flush(self) -> bytes:
        if self._nbits:
            self.out.append(self._acc & 0xFF)
            self._acc = 0
            self._nbits = 0
        return bytes(self.out)


class _BitReader:
    """Reads variable-width codes LSB-first."""

    def __init__(self, data: bytes) -> None:
        self.data = data
        self._pos = 0
        self._acc = 0
        self._nbits = 0

    def read(self, width: int) -> Optional[int]:
        while self._nbits < width:
            if self._pos >= len(self.data):
                return None
            self._acc |= self.data[self._pos] << self._nbits
            self._pos += 1
            self._nbits += 8
        code = self._acc & ((1 << width) - 1)
        self._acc >>= width
        self._nbits -= width
        return code


def lzw_encode(data: bytes, min_code_size: int) -> bytes:
    """GIF-flavour LZW: clear/end codes, 12-bit cap, dictionary reset."""
    clear = 1 << min_code_size
    end = clear + 1
    writer = _BitWriter()

    def fresh_dict() -> dict:
        return {bytes([i]): i for i in range(clear)}

    table = fresh_dict()
    next_code = end + 1
    width = min_code_size + 1
    writer.write(clear, width)
    prefix = b""
    for i in range(len(data)):
        byte = data[i:i + 1]
        candidate = prefix + byte
        if candidate in table:
            prefix = candidate
            continue
        writer.write(table[prefix], width)
        if next_code < MAX_CODES:
            table[candidate] = next_code
            next_code += 1
            if next_code == (1 << width) + 1 and width < MAX_CODE_WIDTH:
                width += 1
        else:
            writer.write(clear, width)
            table = fresh_dict()
            next_code = end + 1
            width = min_code_size + 1
        prefix = byte
    if prefix:
        writer.write(table[prefix], width)
    writer.write(end, width)
    return writer.flush()


def lzw_decode(data: bytes, min_code_size: int,
               strict: bool = True) -> bytes:
    """Inverse of :func:`lzw_encode`.

    ``strict=False`` decodes a *truncated* stream as far as it goes —
    what a progressive renderer does with a partially downloaded GIF.
    """
    clear = 1 << min_code_size
    end = clear + 1
    reader = _BitReader(data)
    out = bytearray()

    def fresh_entries() -> dict:
        return {i: bytes([i]) for i in range(clear)}

    entries = fresh_entries()
    next_code = end + 1
    width = min_code_size + 1
    previous: Optional[bytes] = None
    while True:
        code = reader.read(width)
        if code is None or code == end:
            break
        if code == clear:
            entries = fresh_entries()
            next_code = end + 1
            width = min_code_size + 1
            previous = None
            continue
        if code in entries:
            entry = entries[code]
        elif code == next_code and previous is not None:
            entry = previous + previous[:1]
        else:
            if strict:
                raise GifError(f"corrupt LZW stream: code {code}")
            break
        out.extend(entry)
        if previous is not None and next_code < MAX_CODES:
            entries[next_code] = previous + entry[:1]
            next_code += 1
            if next_code == (1 << width) and width < MAX_CODE_WIDTH:
                width += 1
        previous = entry
    return bytes(out)


def _sub_blocks(data: bytes) -> bytes:
    """Frame ``data`` into GIF sub-blocks (≤255 bytes + length prefix)."""
    out = bytearray()
    for offset in range(0, len(data), 255):
        piece = data[offset:offset + 255]
        out.append(len(piece))
        out.extend(piece)
    out.append(0)
    return bytes(out)


def _read_sub_blocks(data: bytes, pos: int) -> Tuple[bytes, int]:
    out = bytearray()
    while True:
        if pos >= len(data):
            raise GifError("truncated sub-blocks")
        length = data[pos]
        pos += 1
        if length == 0:
            return bytes(out), pos
        out.extend(data[pos:pos + length])
        pos += length


# ----------------------------------------------------------------------
# Container
# ----------------------------------------------------------------------
def _color_table(palette: Sequence[Tuple[int, int, int]]) -> Tuple[bytes, int]:
    """Pad the palette to a power of two; return (table bytes, size field)."""
    size_field = 0
    while (2 << size_field) < len(palette):
        size_field += 1
    entries = 2 << size_field
    table = bytearray()
    for i in range(entries):
        r, g, b = palette[i] if i < len(palette) else (0, 0, 0)
        table.extend((r, g, b))
    return bytes(table), size_field


def _graphic_control(transparent: Optional[int],
                     delay_cs: int = 0) -> bytes:
    packed = 0x01 if transparent is not None else 0x00
    return struct.pack("<BBBBHBB", 0x21, 0xF9, 4, packed, delay_cs,
                       transparent or 0, 0)


#: GIF's four interlace passes: (first row, row step).
GIF_INTERLACE_PASSES = ((0, 8), (4, 8), (2, 4), (1, 2))


def _interlace_row_order(height: int) -> List[int]:
    """Storage order of rows in an interlaced GIF."""
    order = []
    for start, step in GIF_INTERLACE_PASSES:
        order.extend(range(start, height, step))
    return order


def encode_gif(image: IndexedImage, *, interlace: bool = False) -> bytes:
    """Encode a single-frame GIF (89a when transparency is used).

    ``interlace=True`` stores rows in GIF's four-pass order so a
    browser can paint a coarse image from the first quarter of the
    data — the era's progressive-rendering trick.
    """
    version = b"GIF89a" if image.transparent is not None else b"GIF87a"
    table, size_field = _color_table(image.palette)
    out = bytearray()
    out.extend(version)
    packed = 0x80 | (7 << 4) | size_field   # global table, 8-bit resolution
    out.extend(struct.pack("<HHBBB", image.width, image.height, packed,
                           0, 0))
    out.extend(table)
    if image.transparent is not None:
        out.extend(_graphic_control(image.transparent))
    out.extend(_image_block(image, include_local_table=False,
                            interlace=interlace))
    out.append(0x3B)
    return bytes(out)


def _image_block(image: IndexedImage, include_local_table: bool,
                 interlace: bool = False) -> bytes:
    out = bytearray()
    packed = 0x40 if interlace else 0
    table = b""
    if include_local_table:
        table, size_field = _color_table(image.palette)
        packed |= 0x80 | size_field
    out.extend(struct.pack("<BHHHHB", 0x2C, 0, 0, image.width,
                           image.height, packed))
    out.extend(table)
    min_code_size = max(2, image.bit_depth)
    out.append(min_code_size)
    pixels = image.pixels
    if interlace:
        reordered = bytearray()
        for y in _interlace_row_order(image.height):
            reordered.extend(image.row(y))
        pixels = bytes(reordered)
    out.extend(_sub_blocks(lzw_encode(pixels, min_code_size)))
    return bytes(out)


NETSCAPE_LOOP = (b"\x21\xFF\x0BNETSCAPE2.0\x03\x01\x00\x00\x00")


def encode_animated_gif(frames: Sequence[IndexedImage],
                        delay_cs: int = 10) -> bytes:
    """Encode an animated GIF89a with the Netscape loop extension.

    All frames share the first frame's palette as the global color
    table (the common authoring-tool output the paper's animations used).
    """
    if not frames:
        raise ValueError("animation needs at least one frame")
    first = frames[0]
    table, size_field = _color_table(first.palette)
    out = bytearray()
    out.extend(b"GIF89a")
    packed = 0x80 | (7 << 4) | size_field
    out.extend(struct.pack("<HHBBB", first.width, first.height, packed,
                           0, 0))
    out.extend(table)
    out.extend(NETSCAPE_LOOP)
    for frame in frames:
        out.extend(_graphic_control(frame.transparent, delay_cs))
        out.extend(_image_block(frame, include_local_table=False))
    out.append(0x3B)
    return bytes(out)


# ----------------------------------------------------------------------
# Decoder
# ----------------------------------------------------------------------
def decode_gif(data: bytes) -> IndexedImage:
    """Decode a single-frame GIF produced by :func:`encode_gif`."""
    frames = decode_animated_gif(data)
    if len(frames) != 1:
        raise GifError(f"expected 1 frame, found {len(frames)}")
    return frames[0]


def decode_animated_gif(data: bytes) -> List[IndexedImage]:
    """Decode all frames of a GIF."""
    if data[:6] not in (b"GIF87a", b"GIF89a"):
        raise GifError("bad GIF signature")
    width, height, packed, _bg, _aspect = struct.unpack_from("<HHBBB",
                                                             data, 6)
    pos = 13
    global_palette: List[Tuple[int, int, int]] = []
    if packed & 0x80:
        entries = 2 << (packed & 0x07)
        for _ in range(entries):
            global_palette.append((data[pos], data[pos + 1], data[pos + 2]))
            pos += 3
    frames: List[IndexedImage] = []
    transparent: Optional[int] = None
    while pos < len(data):
        marker = data[pos]
        pos += 1
        if marker == 0x3B:                      # trailer
            break
        if marker == 0x21:                      # extension
            label = data[pos]
            pos += 1
            if label == 0xF9:                   # graphic control
                block, pos = _read_sub_blocks(data, pos)
                if len(block) >= 4 and block[0] & 0x01:
                    transparent = block[3]
                else:
                    transparent = None
            else:                               # skip other extensions
                _block, pos = _read_sub_blocks(data, pos)
            continue
        if marker == 0x2C:                      # image descriptor
            (_left, _top, img_w, img_h,
             img_packed) = struct.unpack_from("<HHHHB", data, pos)
            pos += 9
            palette = global_palette
            if img_packed & 0x80:
                entries = 2 << (img_packed & 0x07)
                palette = []
                for _ in range(entries):
                    palette.append((data[pos], data[pos + 1],
                                    data[pos + 2]))
                    pos += 3
            min_code_size = data[pos]
            pos += 1
            compressed, pos = _read_sub_blocks(data, pos)
            pixels = lzw_decode(compressed, min_code_size)
            if len(pixels) != img_w * img_h:
                raise GifError("LZW data does not match image size")
            if img_packed & 0x40:               # interlaced
                straight = bytearray(len(pixels))
                for stored, y in enumerate(_interlace_row_order(img_h)):
                    straight[y * img_w:(y + 1) * img_w] = \
                        pixels[stored * img_w:(stored + 1) * img_w]
                pixels = bytes(straight)
            frames.append(IndexedImage(img_w, img_h, list(palette), pixels,
                                       transparent=transparent))
            transparent = None
            continue
        raise GifError(f"unknown block marker 0x{marker:02x}")
    if not frames:
        raise GifError("no image data")
    return frames
