"""MNG-style animation container (delta-encoded PNG frames).

The paper converted its two GIF animations to MNG (the Multiple-image
Network Graphics draft of 1997-04-27) and measured 24,988 → 16,329
bytes.  MNG's advantage over animated GIF comes from two mechanisms,
both implemented here:

1. shared structure — one signature/header/palette for the whole
   animation rather than per-frame color tables, and
2. **delta frames** — later frames are stored as differences against
   the previous frame and deflate-compressed, so the mostly-unchanged
   pixels cost almost nothing, where animated GIF must LZW-encode every
   frame from scratch.

The container implemented here is a documented *simplification* of the
MNG draft: real MNG chunk names (MHDR / FRAM / DHDR / IDAT / MEND) with
CRC framing, but the delta encoding is a plain byte-wise difference of
palette indices rather than the draft's full delta-PNG machinery.  The
size behaviour — which is what the experiment measures — is preserved.
"""

from __future__ import annotations

import struct
import zlib
from typing import List, Sequence

from .images import IndexedImage
from .png import PngError, _chunk, _iter_chunks

__all__ = ["encode_mng", "decode_mng", "MngError", "MNG_SIGNATURE"]

MNG_SIGNATURE = b"\x8aMNG\r\n\x1a\n"


class MngError(ValueError):
    """Raised for malformed MNG data."""


def encode_mng(frames: Sequence[IndexedImage], *, ticks_per_second: int = 10,
               compress_level: int = -1) -> bytes:
    """Encode an animation as a delta-frame MNG stream.

    All frames must share dimensions and palette (as our animated GIFs
    do — they use one global color table).
    """
    if not frames:
        raise ValueError("animation needs at least one frame")
    first = frames[0]
    for frame in frames:
        if (frame.width, frame.height) != (first.width, first.height):
            raise ValueError("all frames must share dimensions")
    out = bytearray(MNG_SIGNATURE)
    mhdr = struct.pack(">IIIIIII", first.width, first.height,
                       ticks_per_second, 0, len(frames), 0, 1)
    out.extend(_chunk(b"MHDR", mhdr))
    plte = b"".join(bytes(color) for color in first.palette)
    out.extend(_chunk(b"PLTE", plte))
    # gAMA once for the whole animation (PNG pays it per image).
    out.extend(_chunk(b"gAMA", struct.pack(">I", 45455)))
    previous = None
    for index, frame in enumerate(frames):
        out.extend(_chunk(b"FRAM", struct.pack(">B", 1)))
        if previous is None:
            ihdr = struct.pack(">IIBBBBB", frame.width, frame.height,
                               8, 3, 0, 0, 0)
            out.extend(_chunk(b"IHDR", ihdr))
            idat = zlib.compress(frame.pixels, compress_level)
            out.extend(_chunk(b"IDAT", idat))
        else:
            delta = bytes((a - b) & 0xFF
                          for a, b in zip(frame.pixels, previous.pixels))
            out.extend(_chunk(b"DHDR", struct.pack(">IB", index, 0)))
            out.extend(_chunk(b"IDAT", zlib.compress(delta,
                                                     compress_level)))
        previous = frame
    out.extend(_chunk(b"MEND", b""))
    return bytes(out)


def decode_mng(data: bytes) -> List[IndexedImage]:
    """Decode an animation encoded by :func:`encode_mng`."""
    if data[:8] != MNG_SIGNATURE:
        raise MngError("bad MNG signature")
    width = height = None
    palette = []
    frames: List[IndexedImage] = []
    try:
        chunks = list(_iter_chunks(data))
    except PngError as exc:
        raise MngError(str(exc)) from exc
    pending_delta = False
    for chunk_type, body in chunks:
        if chunk_type == b"MHDR":
            width, height = struct.unpack_from(">II", body)
        elif chunk_type == b"PLTE":
            palette = [(body[i], body[i + 1], body[i + 2])
                       for i in range(0, len(body), 3)]
        elif chunk_type == b"DHDR":
            pending_delta = True
        elif chunk_type == b"IDAT":
            if width is None or not palette:
                raise MngError("IDAT before MHDR/PLTE")
            raw = zlib.decompress(body)
            if len(raw) != width * height:
                raise MngError("frame size mismatch")
            if pending_delta:
                if not frames:
                    raise MngError("delta frame without base frame")
                base = frames[-1].pixels
                raw = bytes((d + b) & 0xFF for d, b in zip(raw, base))
                pending_delta = False
            frames.append(IndexedImage(width, height, list(palette), raw))
        elif chunk_type == b"MEND":
            break
    if not frames:
        raise MngError("no frames")
    return frames
