"""CSS1 subset: parsing, serialization and image replacement.

The paper's CSS experiment ("Replacing Images with HTML and CSS")
estimates how many of the Microscape page's 40 static GIFs can be
replaced by markup once Cascading Style Sheets, level 1 (Lie & Bos,
W3C Recommendation, Dec 1996) deploy.  Figure 1 shows the canonical
example: a 682-byte "solutions" banner GIF versus ~150 bytes of
HTML+CSS.

This module implements

* a small CSS1 object model (:class:`Declaration`, :class:`Rule`,
  :class:`Stylesheet`) with a parser and byte-exact serializer — enough
  of CSS1 for the replacement idioms the paper uses (fonts, colors,
  backgrounds, padding, borders, list styles),
* an :class:`ImageRole` taxonomy for decorative web images, and
* the replacement generator: given an image's role and parameters, the
  HTML+CSS equivalent and its byte cost.

Replaceability assumptions (the paper's own bullet list is truncated in
the surviving text; these are documented in DESIGN.md): text banners,
bullets, spacers and horizontal rules are replaceable; simple symbol
icons are replaceable by Unicode characters styled with CSS (the paper
explicitly mentions "symbols ... that appear in fonts for the Unicode
character set"); logos, photographs and animations are not replaceable.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Optional, Sequence

__all__ = ["Declaration", "Rule", "Stylesheet", "parse_css", "CssError",
           "ImageRole", "Replacement", "replacement_for", "REPLACEABLE_ROLES",
           "banner_replacement"]


class CssError(ValueError):
    """Raised for malformed CSS."""


@dataclasses.dataclass(frozen=True)
class Declaration:
    """One ``property: value`` pair."""

    prop: str
    value: str

    def serialize(self) -> str:
        return f"{self.prop}: {self.value}"


@dataclasses.dataclass
class Rule:
    """A selector list with its declaration block."""

    selectors: List[str]
    declarations: List[Declaration]

    def serialize(self, compact: bool = False) -> str:
        """Render the rule; ``compact`` skips pretty-printing whitespace."""
        selector_text = ", ".join(self.selectors)
        if compact:
            body = ";".join(f"{d.prop}:{d.value}"
                            for d in self.declarations)
            return f"{selector_text}{{{body}}}"
        body = "".join(f"  {d.serialize()};\n" for d in self.declarations)
        return f"{selector_text} {{\n{body}}}"

    def get(self, prop: str) -> Optional[str]:
        """Value of the last declaration of ``prop`` (cascade order)."""
        value = None
        for declaration in self.declarations:
            if declaration.prop.lower() == prop.lower():
                value = declaration.value
        return value


@dataclasses.dataclass
class Stylesheet:
    """An ordered list of rules."""

    rules: List[Rule] = dataclasses.field(default_factory=list)

    def serialize(self, compact: bool = False) -> str:
        joiner = "" if compact else "\n"
        return joiner.join(rule.serialize(compact) for rule in self.rules)

    @property
    def byte_size(self) -> int:
        """Size of the compact serialization in bytes."""
        return len(self.serialize(compact=True).encode("latin-1"))

    def rules_for(self, selector: str) -> List[Rule]:
        """All rules whose selector list contains ``selector`` exactly."""
        return [rule for rule in self.rules if selector in rule.selectors]


def _strip_comments(text: str) -> str:
    out = []
    pos = 0
    while True:
        start = text.find("/*", pos)
        if start == -1:
            out.append(text[pos:])
            return "".join(out)
        out.append(text[pos:start])
        end = text.find("*/", start + 2)
        if end == -1:
            raise CssError("unterminated comment")
        pos = end + 2


def parse_css(text: str) -> Stylesheet:
    """Parse a CSS1 stylesheet (rules and declarations; no @-rules)."""
    text = _strip_comments(text)
    sheet = Stylesheet()
    pos = 0
    while True:
        brace = text.find("{", pos)
        if brace == -1:
            if text[pos:].strip():
                raise CssError(f"trailing junk: {text[pos:].strip()!r}")
            return sheet
        selector_text = text[pos:brace].strip()
        if not selector_text:
            raise CssError("rule without selector")
        end = text.find("}", brace)
        if end == -1:
            raise CssError("unterminated declaration block")
        declarations = []
        for piece in text[brace + 1:end].split(";"):
            piece = piece.strip()
            if not piece:
                continue
            prop, sep, value = piece.partition(":")
            if not sep:
                raise CssError(f"malformed declaration: {piece!r}")
            declarations.append(Declaration(prop.strip(),
                                            " ".join(value.split())))
        selectors = [s.strip() for s in selector_text.split(",")]
        sheet.rules.append(Rule(selectors, declarations))
        pos = end + 1


# ----------------------------------------------------------------------
# Image replacement
# ----------------------------------------------------------------------
class ImageRole(enum.Enum):
    """What a decorative web image is *for* (decides replaceability)."""

    TEXT_BANNER = "text-banner"     # words rendered in a font/color
    BULLET = "bullet"               # list bullet / arrow glyph
    SPACER = "spacer"               # invisible layout spacer
    RULE = "rule"                   # horizontal divider
    SYMBOL_ICON = "symbol-icon"     # simple glyph replaceable by Unicode
    LOGO = "logo"                   # brand artwork
    PHOTO = "photo"                 # photographic content
    ANIMATION = "animation"         # animated GIF


#: Roles that HTML+CSS can replace (see module docstring).
REPLACEABLE_ROLES = frozenset({
    ImageRole.TEXT_BANNER, ImageRole.BULLET, ImageRole.SPACER,
    ImageRole.RULE, ImageRole.SYMBOL_ICON,
})


@dataclasses.dataclass(frozen=True)
class Replacement:
    """The HTML+CSS equivalent of one decorative image."""

    html: str
    css: Rule

    @property
    def byte_size(self) -> int:
        """Combined size of the snippet and its rule, as the paper counts."""
        return (len(self.html.encode("latin-1"))
                + len(self.css.serialize(compact=True).encode("latin-1")))


def banner_replacement(text: str = "solutions",
                       class_name: str = "banner",
                       color: str = "white",
                       background: str = "#FC0",
                       font: str = "bold oblique 20px sans-serif"
                       ) -> Replacement:
    """The paper's Figure 1 replacement, byte for byte in spirit.

    The paper's snippet (a ``P.banner`` rule plus ``<P CLASS=banner>``)
    "only takes up around 150 bytes" against the 682-byte GIF.
    """
    rule = Rule([f"p.{class_name}"], [
        Declaration("color", color),
        Declaration("background", background),
        Declaration("font", font),
        Declaration("padding", "0.2em 10em 0.2em 1em"),
    ])
    html = f'<p class={class_name}>{text}</p>'
    return Replacement(html, rule)


def replacement_for(role: ImageRole, *, text: str = "",
                    color: str = "#C00") -> Optional[Replacement]:
    """HTML+CSS replacement for an image of ``role``, or None.

    Returns None for roles CSS cannot replace (logos, photos,
    animations) — those images stay on the page.
    """
    if role == ImageRole.TEXT_BANNER:
        return banner_replacement(text or "solutions")
    if role == ImageRole.BULLET:
        rule = Rule(["ul.c"], [
            Declaration("list-style-type", "disc"),
            Declaration("color", color),
        ])
        return Replacement('<ul class=c>', rule)
    if role == ImageRole.SPACER:
        rule = Rule([".sp"], [Declaration("padding-left", "1em")])
        return Replacement('<span class=sp></span>', rule)
    if role == ImageRole.RULE:
        rule = Rule(["hr.r"], [
            Declaration("border", f"1px solid {color}"),
            Declaration("width", "100%"),
        ])
        return Replacement('<hr class=r>', rule)
    if role == ImageRole.SYMBOL_ICON:
        rule = Rule([".sym"], [
            Declaration("font", "14px sans-serif"),
            Declaration("color", color),
        ])
        return Replacement(f'<span class=sym>{text or "&#8226;"}</span>',
                           rule)
    return None


def shared_rule_bytes(replacements: Sequence[Replacement]) -> int:
    """Total CSS bytes when identical rules are shared across uses.

    "Modularity in style sheets means that the same style sheet may
    apply to many documents" — and the same rule to many elements; each
    distinct rule is paid for once.
    """
    seen = {}
    for replacement in replacements:
        key = replacement.css.serialize(compact=True)
        seen[key] = len(key.encode("latin-1"))
    return sum(seen.values())


__all__.append("shared_rule_bytes")
