"""The synthetic "Microscape" test web site.

The paper synthesized its test site by merging the Netscape and
Microsoft home pages: "a single page containing typical HTML totaling
42KB with 42 inlined GIF images totaling 125KB.  The embedded images
range in size from 70B to 40KB; most are small, with 19 images less
than 1KB, 7 images between 1KB and 2KB, and 6 images between 2KB and
3KB."  Elsewhere: the 40 *static* GIFs total 103,299 bytes, the two
animations 24,988 bytes, and "over half of the data was contained in a
single image and two animations".

This module rebuilds that site deterministically from synthetic pixels:
each manifest entry has a target GIF size and a role (text banner,
bullet, spacer, rule, symbol icon, logo, photo, animation); generators
are calibrated by iterative re-encoding until the real encoded GIF
lands near its target.  Roles drive the CSS-replacement analysis
(:mod:`repro.content.css`), and the stored pixel data drives the
GIF→PNG/MNG conversion (:mod:`repro.content.transform`).
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import math
import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from . import artifacts
from . import html as html_mod
from .css import ImageRole
from .gif import encode_animated_gif, encode_gif
from .images import (IndexedImage, animation_frames, banner, bullet, icon,
                     photo_like, spacer)

__all__ = ["SiteObject", "MicroscapeSite", "build_microscape_site",
           "HTML_URL"]

HTML_URL = "/home.html"

#: Paper's headline content numbers, used as calibration targets.
TARGET_HTML_BYTES = 42 * 1024
TARGET_STATIC_GIF_BYTES = 103_299
TARGET_ANIMATION_BYTES = 24_988


@dataclasses.dataclass
class SiteObject:
    """One retrievable object of the site."""

    url: str
    content_type: str
    body: bytes
    role: Optional[ImageRole] = None
    #: Pixel data for static images (None for the HTML page).
    image: Optional[IndexedImage] = None
    #: Frames for animations.
    frames: Optional[List[IndexedImage]] = None
    #: The text a TEXT_BANNER image depicts (for CSS replacement).
    text: str = ""

    @property
    def size(self) -> int:
        return len(self.body)


@dataclasses.dataclass
class MicroscapeSite:
    """The whole site: one HTML page plus its embedded images."""

    objects: Dict[str, SiteObject]
    html_url: str = HTML_URL
    #: Memoized (html body digest, parsed URL list); the HTML is parsed
    #: lazily and re-parsed only when the body's *content* changes.
    #: Every experiment run consults the URL list (request planning and
    #: result verification), so parsing 42 KB per call was a hot path.
    #: Keyed by hash rather than object identity so equal-but-distinct
    #: bodies (artifact-store round-trips, unpickled sites) still hit.
    _embedded_cache: Optional[Tuple[bytes, List[str]]] = dataclasses.field(
        default=None, init=False, repr=False, compare=False)

    @property
    def html(self) -> SiteObject:
        return self.objects[self.html_url]

    @property
    def image_objects(self) -> List[SiteObject]:
        """All embedded images in page order."""
        return [self.objects[url] for url in self.embedded_urls()]

    def embedded_urls(self) -> List[str]:
        """Distinct embedded URLs in page order (the 42 GETs' targets)."""
        body = self.html.body
        digest = hashlib.sha256(body).digest()
        cache = self._embedded_cache
        if cache is None or cache[0] != digest:
            cache = (digest, html_mod.distinct_image_urls(
                body.decode("latin-1")))
            self._embedded_cache = cache
        return list(cache[1])

    def all_urls(self) -> List[str]:
        """HTML first, then embedded objects: the 43 request targets."""
        return [self.html_url] + self.embedded_urls()

    @property
    def static_images(self) -> List[SiteObject]:
        return [o for o in self.image_objects
                if o.role != ImageRole.ANIMATION]

    @property
    def animations(self) -> List[SiteObject]:
        return [o for o in self.image_objects
                if o.role == ImageRole.ANIMATION]

    @property
    def total_image_bytes(self) -> int:
        return sum(o.size for o in self.image_objects)


# ----------------------------------------------------------------------
# Calibration
# ----------------------------------------------------------------------
def _memoized_builder(name: str, params: Dict[str, object], seed: int,
                      build: Callable[[int], bytes]
                      ) -> Callable[[int], bytes]:
    """Content-address each trial encode of a calibration loop.

    ``_calibrate`` probes a builder at several pixel budgets; every
    probe is a full GIF encode.  Keying each (builder, params, seed,
    budget) probe in the artifact store makes a repeat calibration —
    same manifest entry, warm store — pure blob reads, including the
    final encoding the probe sequence converges on.
    """
    store = artifacts.get_store()

    def cached(pixel_budget: int) -> bytes:
        return store.memoize(
            name, {**params, "budget": pixel_budget}, seed,
            lambda: build(pixel_budget))
    return cached


def _calibrate(builder: Callable[[int], bytes], target: int,
               initial_budget: int, max_rounds: int = 6,
               tolerance: float = 0.08) -> Tuple[bytes, int]:
    """Adjust a generator's pixel budget until its encoding nears target.

    ``builder`` maps a pixel budget to encoded bytes; encoded size is
    monotone-ish in the budget, so multiplicative correction converges
    in a few rounds.  Returns (encoded bytes, final budget).
    """
    budget = max(16, initial_budget)
    encoded = builder(budget)
    for _ in range(max_rounds):
        error = len(encoded) / target
        if abs(error - 1.0) <= tolerance:
            break
        budget = max(16, int(budget / error))
        encoded = builder(budget)
    return encoded, budget


def _photo_builder(colors: int, noise: float, seed: int,
                   aspect: float = 1.5) -> Callable[[int], bytes]:
    def build(pixel_budget: int) -> bytes:
        width = max(4, int(math.sqrt(pixel_budget * aspect)))
        height = max(4, pixel_budget // width)
        return encode_gif(photo_like(width, height, colors=colors,
                                     seed=seed, noise=noise))
    return build


def _speckle_for(target_bytes: int) -> float:
    """Anti-aliasing speckle grows with artwork size (bigger banners and
    icons of the era were anti-aliased and dithered)."""
    if target_bytes < 600:
        return 0.0
    if target_bytes < 1500:
        return 0.01
    return 0.015


def _banner_builder(text: str, seed: int,
                    speckle: float) -> Callable[[int], bytes]:
    def build(pixel_budget: int) -> bytes:
        width = max(30, int(math.sqrt(pixel_budget * 5)))
        height = max(12, pixel_budget // width)
        return encode_gif(banner(text, width=width, height=height,
                                 seed=seed, speckle=speckle))
    return build


def _icon_builder(colors: int, seed: int,
                  speckle: float) -> Callable[[int], bytes]:
    def build(pixel_budget: int) -> bytes:
        size = max(6, int(math.sqrt(pixel_budget)))
        return encode_gif(icon(size=size, colors=colors, seed=seed,
                               speckle=speckle))
    return build


def _animation_builder(frames: int, colors: int, noise: float,
                       seed: int) -> Callable[[int], bytes]:
    def build(pixel_budget: int) -> bytes:
        per_frame = max(64, pixel_budget // frames)
        width = max(8, int(math.sqrt(per_frame * 1.5)))
        height = max(8, per_frame // width)
        return encode_animated_gif(animation_frames(
            width, height, frames=frames, colors=colors, seed=seed,
            noise=noise))
    return build


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class _ImageSpec:
    name: str
    role: ImageRole
    target_bytes: Optional[int]    # None: accept the natural size
    kind: str                      # spacer|bullet|rule|banner|icon|photo|anim
    text: str = ""
    colors: int = 8
    noise: float = 0.5
    frames: int = 8


def _manifest() -> List[_ImageSpec]:
    """The 42-image manifest matching the paper's size histogram.

    19 images under 1 KB, 7 in 1–2 KB, 6 in 2–3 KB, 8 larger statics
    (including the single ~35 KB hero image), plus 2 animations; static
    targets sum to ≈103 KB, animations to ≈25 KB.
    """
    specs: List[_ImageSpec] = []
    # --- under 1 KB (19) ------------------------------------------------
    for index, (w, h) in enumerate([(1, 1), (10, 2), (50, 1), (120, 1)]):
        specs.append(_ImageSpec(f"spacer{index}", ImageRole.SPACER, None,
                                "spacer", text=f"{w}x{h}"))
    for index, size in enumerate([7, 8, 9, 10, 12]):
        specs.append(_ImageSpec(f"bullet{index}", ImageRole.BULLET, None,
                                "bullet", text=str(size)))
    for index in range(2):
        specs.append(_ImageSpec(f"rule{index}", ImageRole.RULE, None,
                                "rule"))
    for index, target in enumerate([150, 200, 260, 330]):
        specs.append(_ImageSpec(f"sym{index}", ImageRole.SYMBOL_ICON,
                                target, "icon", colors=4))
    for index, (target, text) in enumerate(
            [(480, "new"), (600, "go"), (682, "solutions"), (880, "search")]):
        specs.append(_ImageSpec(f"minibanner{index}", ImageRole.TEXT_BANNER,
                                target, "banner", text=text))
    # --- 1–2 KB (7) -----------------------------------------------------
    for index, (target, text) in enumerate(
            [(1120, "products"), (1250, "download now"),
             (1500, "developer zone"), (1800, "free trial")]):
        specs.append(_ImageSpec(f"banner{index}", ImageRole.TEXT_BANNER,
                                target, "banner", text=text))
    for index, target in enumerate([1150, 1450, 1750]):
        specs.append(_ImageSpec(f"icon{index}", ImageRole.SYMBOL_ICON,
                                target, "icon", colors=16))
    # --- 2–3 KB (6) -----------------------------------------------------
    for index, (target, text) in enumerate(
            [(2300, "internet solutions"), (2650, "communicator suite")]):
        specs.append(_ImageSpec(f"bigbanner{index}", ImageRole.TEXT_BANNER,
                                target, "banner", text=text))
    for index, target in enumerate([2300, 2700]):
        specs.append(_ImageSpec(f"bigicon{index}", ImageRole.SYMBOL_ICON,
                                target, "icon", colors=32))
    for index, target in enumerate([2200, 2900]):
        specs.append(_ImageSpec(f"smalllogo{index}", ImageRole.LOGO,
                                target, "photo", colors=32, noise=0.25))
    # --- larger statics (8), incl. the ~35 KB hero ----------------------
    for index, target in enumerate([3500, 3900, 4400]):
        specs.append(_ImageSpec(f"logo{index}", ImageRole.LOGO, target,
                                "photo", colors=64, noise=0.3))
    for index, target in enumerate([4800, 5400, 6200, 7000]):
        specs.append(_ImageSpec(f"photo{index}", ImageRole.PHOTO, target,
                                "photo", colors=128, noise=0.3))
    specs.append(_ImageSpec("hero", ImageRole.PHOTO, 36_800, "photo",
                            colors=128, noise=0.3))
    # --- animations (2) --------------------------------------------------
    specs.append(_ImageSpec("anim0", ImageRole.ANIMATION, 12_500, "anim",
                            colors=32, noise=0.35, frames=8))
    specs.append(_ImageSpec("anim1", ImageRole.ANIMATION, 12_488, "anim",
                            colors=32, noise=0.35, frames=10))
    return specs


# ----------------------------------------------------------------------
# Site assembly
# ----------------------------------------------------------------------
def _build_image(spec: _ImageSpec, seed: int) -> SiteObject:
    """One manifest entry's object, memoized whole in the artifact store.

    The stored value is the finished :class:`SiteObject` (encoded body,
    pixels, role, text), so a warm store skips generation, calibration
    and encoding entirely; on a miss the inner per-probe memoization in
    :func:`_memoized_builder` still salvages whatever trial encodes an
    earlier partial build left behind.
    """
    params = dataclasses.asdict(spec)
    params["role"] = spec.role.value
    return artifacts.get_store().memoize_object(
        "microscape.image", params, seed,
        lambda: _generate_image(spec, seed))


def _generate_image(spec: _ImageSpec, seed: int) -> SiteObject:
    url = f"/gifs/{spec.name}.gif"
    if spec.kind == "spacer":
        w, _, h = spec.text.partition("x")
        image = spacer(int(w), int(h))
        return SiteObject(url, "image/gif", encode_gif(image), spec.role,
                          image=image)
    if spec.kind == "bullet":
        image = bullet(int(spec.text))
        return SiteObject(url, "image/gif", encode_gif(image), spec.role,
                          image=image)
    if spec.kind == "rule":
        image = banner("", width=468, height=3, seed=seed)
        return SiteObject(url, "image/gif", encode_gif(image), spec.role,
                          image=image)
    assert spec.target_bytes is not None
    if spec.kind == "banner":
        speckle = _speckle_for(spec.target_bytes)
        builder = _memoized_builder(
            "gif.banner", {"text": spec.text, "speckle": speckle}, seed,
            _banner_builder(spec.text, seed, speckle))
        body, budget = _calibrate(builder, spec.target_bytes,
                                  spec.target_bytes * 6)
        width = max(30, int(math.sqrt(budget * 5)))
        height = max(12, budget // width)
        image = banner(spec.text, width=width, height=height, seed=seed,
                       speckle=speckle)
        return SiteObject(url, "image/gif", body, spec.role, image=image,
                          text=spec.text)
    if spec.kind == "icon":
        speckle = _speckle_for(spec.target_bytes)
        builder = _memoized_builder(
            "gif.icon", {"colors": spec.colors, "speckle": speckle},
            seed, _icon_builder(spec.colors, seed, speckle))
        body, budget = _calibrate(builder, spec.target_bytes,
                                  spec.target_bytes * 2)
        image = icon(size=max(6, int(math.sqrt(budget))),
                     colors=spec.colors, seed=seed, speckle=speckle)
        return SiteObject(url, "image/gif", body, spec.role, image=image)
    if spec.kind == "photo":
        builder = _memoized_builder(
            "gif.photo", {"colors": spec.colors, "noise": spec.noise},
            seed, _photo_builder(spec.colors, spec.noise, seed))
        body, budget = _calibrate(builder, spec.target_bytes,
                                  int(spec.target_bytes / 1.2))
        width = max(4, int(math.sqrt(budget * 1.5)))
        height = max(4, budget // width)
        image = photo_like(width, height, colors=spec.colors, seed=seed,
                           noise=spec.noise)
        return SiteObject(url, "image/gif", body, spec.role, image=image)
    if spec.kind == "anim":
        builder = _memoized_builder(
            "gif.anim", {"frames": spec.frames, "colors": spec.colors,
                         "noise": spec.noise}, seed,
            _animation_builder(spec.frames, spec.colors, spec.noise,
                               seed))
        body, budget = _calibrate(builder, spec.target_bytes,
                                  spec.target_bytes)
        per_frame = max(64, budget // spec.frames)
        width = max(8, int(math.sqrt(per_frame * 1.5)))
        height = max(8, per_frame // width)
        frames = animation_frames(width, height, frames=spec.frames,
                                  colors=spec.colors, seed=seed,
                                  noise=spec.noise)
        return SiteObject(url, "image/gif", body, spec.role, frames=frames)
    raise AssertionError(f"unknown image kind {spec.kind}")


def _build_html(image_objects: Sequence[SiteObject], seed: int) -> bytes:
    """Assemble the 42 KB page referencing every image once."""
    rng = random.Random(seed)
    parts: List[str] = [
        "<html>",
        "<head>",
        "<title>Microscape - the internet starts here</title>",
        '<meta name="description" content="Microscape home page: '
        'products, downloads, developer resources and support.">',
        "</head>",
        '<body bgcolor="#ffffff" text="#000000" link="#0000cc">',
    ]
    nav_links = ["/products", "/download", "/support", "/developer",
                 "/search", "/company/about", "/international"]
    parts.append(html_mod.nav_table(nav_links, seed=seed))
    # Interleave images with filler so references spread through the
    # document the way a real home page does.
    images = list(image_objects)
    sections = 12
    per_section = max(1, (len(images) + sections - 1) // sections)
    section_index = 0
    while images:
        section_index += 1
        parts.append(f"<h2>Section {section_index}: "
                     f"{rng.choice(['news', 'products', 'events', 'tips'])}"
                     f"</h2>")
        for obj in images[:per_section]:
            image = obj.image or (obj.frames[0] if obj.frames else None)
            width = image.width if image else 0
            height = image.height if image else 0
            alt = obj.text or obj.url.rsplit("/", 1)[-1].split(".")[0]
            parts.append(f'<img src="{obj.url}" width="{width}" '
                         f'height="{height}" alt="{alt}" border="0">')
        del images[:per_section]
        parts.append(html_mod.filler_paragraphs(
            3, 60, seed=seed + section_index))
    parts.append(html_mod.nav_table(nav_links, seed=seed + 1))
    parts.append("<address>copyright 1997 microscape corporation; "
                 "all rights reserved</address>")
    parts.append("</body>")
    parts.append("</html>")
    html = "\n".join(parts)
    # Pad with more filler paragraphs to reach the 42 KB target.
    filler_index = 100
    while len(html) < TARGET_HTML_BYTES:
        extra = html_mod.filler_paragraphs(2, 60, seed=seed + filler_index)
        html = html.replace("</body>", extra + "\n</body>", 1)
        filler_index += 1
    return html.encode("latin-1")


@functools.lru_cache(maxsize=4)
def build_microscape_site(seed: int = 1997) -> MicroscapeSite:
    """Build (and cache) the deterministic Microscape site.

    Three cache layers, outermost first: the :func:`functools.lru_cache`
    gives repeat in-process calls the *same object* (which downstream
    memos key on); the artifact store serves the whole pickled site so
    the second-ever build in any process is one blob read instead of
    ~0.9 s of calibration encodes; and on a whole-site miss the
    per-image / per-probe memos inside :func:`_build_image` reuse
    whatever finer-grained artifacts exist.  All layers return
    byte-identical content — the store holds the builders' exact
    outputs — so golden traces cannot observe which layer answered.
    """
    return artifacts.get_store().memoize_object(
        "microscape.site", {}, seed, lambda: _assemble_site(seed))


def _assemble_site(seed: int) -> MicroscapeSite:
    objects: Dict[str, SiteObject] = {}
    image_objects = []
    for index, spec in enumerate(_manifest()):
        obj = _build_image(spec, seed=seed * 131 + index)
        objects[obj.url] = obj
        image_objects.append(obj)
    html_body = _build_html(image_objects, seed)
    objects[HTML_URL] = SiteObject(HTML_URL, "text/html", html_body)
    return MicroscapeSite(objects=objects)
