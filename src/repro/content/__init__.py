"""Web content: the Microscape site, image codecs, HTML and CSS1.

Everything the paper's "Changing Web Content" experiments need:

* :mod:`~repro.content.microscape` — the synthetic 42 KB page with 42
  inlined GIFs matching the paper's size histogram,
* :mod:`~repro.content.gif` / :mod:`~repro.content.png` /
  :mod:`~repro.content.mng` — real codecs (LZW, deflate+filters,
  delta frames),
* :mod:`~repro.content.css` — a CSS1 subset and the image→HTML+CSS
  replacement generator,
* :mod:`~repro.content.transform` — the batch conversion and
  replacement analyses behind the paper's content tables,
* :mod:`~repro.content.artifacts` — the content-addressed artifact
  store memoizing the expensive encodes across processes and runs.
"""

from .artifacts import (ENCODER_VERSION, ArtifactStats, ArtifactStore,
                        artifact_key)
from .css import (CssError, Declaration, ImageRole, REPLACEABLE_ROLES,
                  Replacement, Rule, Stylesheet, banner_replacement,
                  parse_css, replacement_for, shared_rule_bytes)
from .gif import (GifError, decode_animated_gif, decode_gif,
                  encode_animated_gif, encode_gif)
from .html import (change_tag_case, distinct_image_urls, filler_paragraphs,
                   find_image_urls, nav_table)
from .htmlparse import HtmlTokenizer, Token, tokenize
from .progressive import (bytes_for_coverage, coverage_curve,
                          gif_area_coverage, png_area_coverage)
from .images import (IndexedImage, animation_frames, banner, bullet, icon,
                     photo_like, spacer)
from .microscape import (HTML_URL, MicroscapeSite, SiteObject,
                         build_microscape_site)
from .mng import MngError, decode_mng, encode_mng
from .png import PngError, decode_png, encode_png
from .transform import (ConversionRecord, CssReplacementRecord,
                        CssReplacementReport, PngConversionReport,
                        TransformedPage, apply_all_transforms,
                        convert_site_to_png, css_replacement_analysis)

__all__ = [
    "ENCODER_VERSION", "ArtifactStats", "ArtifactStore", "artifact_key",
    "CssError", "Declaration", "ImageRole", "REPLACEABLE_ROLES",
    "Replacement", "Rule", "Stylesheet", "banner_replacement", "parse_css",
    "replacement_for", "shared_rule_bytes",
    "GifError", "decode_animated_gif", "decode_gif", "encode_animated_gif",
    "encode_gif",
    "change_tag_case", "distinct_image_urls", "filler_paragraphs",
    "find_image_urls", "nav_table",
    "HtmlTokenizer", "Token", "tokenize",
    "bytes_for_coverage", "coverage_curve", "gif_area_coverage",
    "png_area_coverage",
    "IndexedImage", "animation_frames", "banner", "bullet", "icon",
    "photo_like", "spacer",
    "HTML_URL", "MicroscapeSite", "SiteObject", "build_microscape_site",
    "MngError", "decode_mng", "encode_mng",
    "PngError", "decode_png", "encode_png",
    "ConversionRecord", "CssReplacementRecord", "CssReplacementReport",
    "PngConversionReport", "TransformedPage", "apply_all_transforms",
    "convert_site_to_png", "css_replacement_analysis",
]
