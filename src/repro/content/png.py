"""PNG encoder and decoder (RFC 2083 subset: palette images).

Implements the format the paper's image-conversion experiment targets:
8/4/2/1-bit palette PNGs with

* CRC-checked chunk framing (IHDR / PLTE / tRNS / gAMA / IDAT / IEND),
* zlib (deflate) compression of filtered scanlines — the same code base
  as the HTTP ``deflate`` coding and libpng, as the paper points out,
* all five scanline filters with a minimum-sum-of-absolute-differences
  selection heuristic on the encoder side,
* the gAMA chunk the paper calls out: "the converted PNG ... files
  contain gamma information, so that they display the same on all
  platforms; this adds 16 bytes per image".

The per-image fixed costs (signature, IHDR, checksums, gamma) are what
make tiny PNGs *larger* than their GIF counterparts while deflate beats
LZW on everything bigger — both effects the paper reports, and both
emerge here from the real formats rather than from modelling.
"""

from __future__ import annotations

import struct
import zlib
from typing import List, Optional, Tuple

from .images import IndexedImage

__all__ = ["encode_png", "decode_png", "PngError", "PNG_SIGNATURE"]

PNG_SIGNATURE = b"\x89PNG\r\n\x1a\n"

#: sRGB-ish gamma stored in the gAMA chunk (1/2.2, scaled by 100000).
DEFAULT_GAMMA = 45455


class PngError(ValueError):
    """Raised for malformed PNG data."""


# ----------------------------------------------------------------------
# Chunk framing
# ----------------------------------------------------------------------
def _chunk(chunk_type: bytes, data: bytes) -> bytes:
    crc = zlib.crc32(chunk_type + data) & 0xFFFFFFFF
    return struct.pack(">I", len(data)) + chunk_type + data + struct.pack(
        ">I", crc)


def _iter_chunks(data: bytes):
    pos = len(PNG_SIGNATURE)
    while pos < len(data):
        if pos + 8 > len(data):
            raise PngError("truncated chunk header")
        (length,) = struct.unpack_from(">I", data, pos)
        chunk_type = data[pos + 4:pos + 8]
        body = data[pos + 8:pos + 8 + length]
        if len(body) != length:
            raise PngError("truncated chunk body")
        (crc,) = struct.unpack_from(">I", data, pos + 8 + length)
        if crc != (zlib.crc32(chunk_type + body) & 0xFFFFFFFF):
            raise PngError(f"bad CRC in {chunk_type!r} chunk")
        yield chunk_type, body
        pos += 12 + length


# ----------------------------------------------------------------------
# Scanline packing and filters
# ----------------------------------------------------------------------
def _pack_row(row: bytes, bit_depth: int) -> bytes:
    """Pack palette indices into ``bit_depth``-bit samples (big-endian)."""
    if bit_depth == 8:
        return row
    per_byte = 8 // bit_depth
    out = bytearray()
    for offset in range(0, len(row), per_byte):
        value = 0
        group = row[offset:offset + per_byte]
        for i in range(per_byte):
            sample = group[i] if i < len(group) else 0
            value |= sample << (8 - (i + 1) * bit_depth)
        out.append(value)
    return bytes(out)


def _unpack_row(packed: bytes, bit_depth: int, width: int) -> bytes:
    if bit_depth == 8:
        return packed[:width]
    per_byte = 8 // bit_depth
    mask = (1 << bit_depth) - 1
    out = bytearray()
    for byte in packed:
        for i in range(per_byte):
            out.append((byte >> (8 - (i + 1) * bit_depth)) & mask)
            if len(out) == width:
                return bytes(out)
    if len(out) < width:
        raise PngError("scanline too short")
    return bytes(out)


def _paeth(a: int, b: int, c: int) -> int:
    p = a + b - c
    pa, pb, pc = abs(p - a), abs(p - b), abs(p - c)
    if pa <= pb and pa <= pc:
        return a
    if pb <= pc:
        return b
    return c


def _filter_row(filter_type: int, row: bytes, prior: bytes,
                bpp: int) -> bytes:
    out = bytearray(len(row))
    for i in range(len(row)):
        left = row[i - bpp] if i >= bpp else 0
        up = prior[i] if prior else 0
        up_left = prior[i - bpp] if (prior and i >= bpp) else 0
        if filter_type == 0:
            out[i] = row[i]
        elif filter_type == 1:
            out[i] = (row[i] - left) & 0xFF
        elif filter_type == 2:
            out[i] = (row[i] - up) & 0xFF
        elif filter_type == 3:
            out[i] = (row[i] - (left + up) // 2) & 0xFF
        else:
            out[i] = (row[i] - _paeth(left, up, up_left)) & 0xFF
    return bytes(out)


def _unfilter_row(filter_type: int, filtered: bytes, prior: bytes,
                  bpp: int) -> bytes:
    out = bytearray(len(filtered))
    for i in range(len(filtered)):
        left = out[i - bpp] if i >= bpp else 0
        up = prior[i] if prior else 0
        up_left = prior[i - bpp] if (prior and i >= bpp) else 0
        if filter_type == 0:
            out[i] = filtered[i]
        elif filter_type == 1:
            out[i] = (filtered[i] + left) & 0xFF
        elif filter_type == 2:
            out[i] = (filtered[i] + up) & 0xFF
        elif filter_type == 3:
            out[i] = (filtered[i] + (left + up) // 2) & 0xFF
        elif filter_type == 4:
            out[i] = (filtered[i] + _paeth(left, up, up_left)) & 0xFF
        else:
            raise PngError(f"unknown filter type {filter_type}")
    return bytes(out)


def _choose_filter(row: bytes, prior: bytes, bpp: int) -> Tuple[int, bytes]:
    """Minimum-sum-of-absolute-differences filter heuristic (libpng's)."""
    best_type = 0
    best_data = _filter_row(0, row, prior, bpp)
    best_score = sum(min(b, 256 - b) for b in best_data)
    for filter_type in (1, 2, 3, 4):
        candidate = _filter_row(filter_type, row, prior, bpp)
        score = sum(min(b, 256 - b) for b in candidate)
        if score < best_score:
            best_type, best_data, best_score = (filter_type, candidate,
                                                score)
    return best_type, best_data


# ----------------------------------------------------------------------
# Public codec
# ----------------------------------------------------------------------
#: Adam7 interlace passes: (x_start, y_start, x_step, y_step).
ADAM7_PASSES = (
    (0, 0, 8, 8), (4, 0, 8, 8), (0, 4, 4, 8), (2, 0, 4, 4),
    (0, 2, 2, 4), (1, 0, 2, 2), (0, 1, 1, 2),
)


def _adam7_pass_pixels(image: IndexedImage, pass_spec) -> list:
    """Rows of an Adam7 pass as lists of palette indices."""
    x0, y0, dx, dy = pass_spec
    rows = []
    for y in range(y0, image.height, dy):
        row = image.pixels[y * image.width + x0:
                           (y + 1) * image.width:dx]
        if row:
            rows.append(row)
    return rows


def _filtered_scanlines(rows, bit_depth: int) -> bytes:
    """Pack and filter a sequence of scanlines (one pass or the image)."""
    raw = bytearray()
    prior = b""
    for row in rows:
        packed = _pack_row(bytes(row), bit_depth)
        filter_type, filtered = _choose_filter(packed, prior, 1)
        raw.append(filter_type)
        raw.extend(filtered)
        prior = packed
    return bytes(raw)


def encode_png(image: IndexedImage, *, include_gamma: bool = True,
               interlace: bool = False,
               compress_level: int = -1) -> bytes:
    """Encode a palette PNG (color type 3).

    ``interlace=True`` writes Adam7 interlacing — the progressive
    format the paper's "poor man's multiplexing" discussion relies on:
    the first ~1/64 of the data already covers the whole image area.
    """
    bit_depth = image.bit_depth
    ihdr = struct.pack(">IIBBBBB", image.width, image.height, bit_depth,
                       3, 0, 0, 1 if interlace else 0)
    plte = b"".join(bytes(color) for color in image.palette)
    if interlace:
        raw = bytearray()
        for pass_spec in ADAM7_PASSES:
            raw.extend(_filtered_scanlines(
                _adam7_pass_pixels(image, pass_spec), bit_depth))
        raw = bytes(raw)
    else:
        raw = _filtered_scanlines(image.rows(), bit_depth)
    idat = zlib.compress(raw, compress_level)
    out = bytearray(PNG_SIGNATURE)
    out.extend(_chunk(b"IHDR", ihdr))
    if include_gamma:
        out.extend(_chunk(b"gAMA", struct.pack(">I", DEFAULT_GAMMA)))
    out.extend(_chunk(b"PLTE", plte))
    if image.transparent is not None:
        alphas = bytes(0 if i == image.transparent else 255
                       for i in range(image.transparent + 1))
        out.extend(_chunk(b"tRNS", alphas))
    out.extend(_chunk(b"IDAT", idat))
    out.extend(_chunk(b"IEND", b""))
    return bytes(out)


def decode_png(data: bytes) -> IndexedImage:
    """Decode a palette PNG produced by :func:`encode_png`."""
    if data[:8] != PNG_SIGNATURE:
        raise PngError("bad PNG signature")
    width = height = bit_depth = None
    interlaced = False
    palette: List[Tuple[int, int, int]] = []
    transparent: Optional[int] = None
    idat = bytearray()
    for chunk_type, body in _iter_chunks(data):
        if chunk_type == b"IHDR":
            width, height, bit_depth, color_type, _c, _f, interlace = \
                struct.unpack(">IIBBBBB", body)
            if color_type != 3:
                raise PngError("only palette PNGs are supported")
            if interlace not in (0, 1):
                raise PngError(f"unknown interlace method {interlace}")
            interlaced = interlace == 1
        elif chunk_type == b"PLTE":
            palette = [(body[i], body[i + 1], body[i + 2])
                       for i in range(0, len(body), 3)]
        elif chunk_type == b"tRNS":
            for index, alpha in enumerate(body):
                if alpha == 0:
                    transparent = index
                    break
        elif chunk_type == b"IDAT":
            idat.extend(body)
        elif chunk_type == b"IEND":
            break
    if width is None or not palette:
        raise PngError("missing IHDR or PLTE")
    raw = zlib.decompress(bytes(idat))
    if interlaced:
        pixels = _decode_adam7(raw, width, height, bit_depth)
    else:
        pixels = bytearray()
        prior = b""
        pos = 0
        bytes_per_row = (width * bit_depth + 7) // 8
        for _y in range(height):
            filter_type = raw[pos]
            pos += 1
            filtered = raw[pos:pos + bytes_per_row]
            pos += bytes_per_row
            packed = _unfilter_row(filter_type, filtered, prior, 1)
            pixels.extend(_unpack_row(packed, bit_depth, width))
            prior = packed
    return IndexedImage(width, height, palette, bytes(pixels),
                        transparent=transparent)


def _decode_adam7(raw: bytes, width: int, height: int,
                  bit_depth: int) -> bytearray:
    """Reassemble Adam7 passes into the full pixel grid."""
    pixels = bytearray(width * height)
    pos = 0
    for x0, y0, dx, dy in ADAM7_PASSES:
        pass_width = (width - x0 + dx - 1) // dx
        pass_rows = (height - y0 + dy - 1) // dy
        if pass_width <= 0 or pass_rows <= 0:
            continue
        bytes_per_row = (pass_width * bit_depth + 7) // 8
        prior = b""
        for row_index in range(pass_rows):
            filter_type = raw[pos]
            pos += 1
            filtered = raw[pos:pos + bytes_per_row]
            pos += bytes_per_row
            packed = _unfilter_row(filter_type, filtered, prior, 1)
            samples = _unpack_row(packed, bit_depth, pass_width)
            y = y0 + row_index * dy
            for index, sample in enumerate(samples):
                pixels[y * width + x0 + index * dx] = sample
            prior = packed
    return pixels
