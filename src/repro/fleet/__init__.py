"""Population-scale experiments: cohort-sharded robot fleets.

The paper measured one robot against one server.  This package scales
that regime to whole populations: a :class:`FleetSpec` compiles a
deterministic arrival process and protocol-mode mix into cohorts of
robot sessions; each cohort runs as one simulator (N clients + a
finite-capacity server behind a shared bottleneck link) dispatched as
a cacheable, journaled matrix unit; and across cohorts the parent runs
an analytic fixed-point exchange of per-epoch bottleneck capacity
shares.  Results are byte-identical across job counts and resumes.

Importing this package registers the cohort-result codec with the
matrix cache, so journals and caches written by a fleet run hydrate in
any process that imported :mod:`repro.fleet`.
"""

from .engine import CohortResult, SessionStats, run_cohort
from .runner import FleetResult, run_fleet
from .spec import (DEFAULT_MODE_MIX, FLEET_CACHE_KEY_FIELDS, FleetSpec,
                   FleetUnitSpec, UserPlan)

__all__ = [
    "FLEET_CACHE_KEY_FIELDS", "DEFAULT_MODE_MIX",
    "UserPlan", "FleetSpec", "FleetUnitSpec",
    "SessionStats", "CohortResult", "run_cohort",
    "FleetResult", "run_fleet",
]
