"""Declarative population specifications for fleet runs.

A :class:`FleetSpec` describes a whole robot *population*: how many
users, how they arrive (a seeded Poisson process), which protocol
modes they run (a weighted mix), how they think between pages, and the
shared-bottleneck regime they contend under (cohort count, per-epoch
capacity schedule, finite server capacity).  :meth:`compile_population`
expands the spec into per-user :class:`UserPlan` rows — every draw
comes from one seeded ``random.Random`` stream in user-index order, so
the schedule is a pure function of the spec and identical across
``--jobs 1`` / ``--jobs N`` / ``--resume``.

A :class:`FleetUnitSpec` is one *cohort* of that population at one
fixed-point round: the unit of work the matrix engine dispatches,
caches and journals.  Its cache identity covers every
:class:`FleetSpec` field (:data:`FLEET_CACHE_KEY_FIELDS`) plus the
cohort index and the integer-quantized per-epoch capacity shares, so
each fixed-point round is a distinct cacheable unit and a resumed run
hydrates byte-identically.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Any, Dict, List, Optional, Tuple

from ..core.registry import (resolve_environment, resolve_mode,
                             resolve_profile, resolve_scenario)
from ..core.transport import MuxTransport, ShardedTransport

__all__ = ["FLEET_CACHE_KEY_FIELDS", "DEFAULT_MODE_MIX", "UserPlan",
           "FleetSpec", "FleetUnitSpec"]

#: Every field of :class:`FleetSpec`, in canonical order.  The deep
#: linter's cache-key pass checks this tuple stays complete, exactly as
#: it does for ``ExperimentSpec.CACHE_KEY_FIELDS``: a field missing
#: here would let two different populations share a cache entry.
FLEET_CACHE_KEY_FIELDS: Tuple[str, ...] = (
    "users", "cohorts", "environment", "scenario", "server", "modes",
    "arrival_rate", "think_time", "pages_per_user", "jitter",
    "server_capacity", "backbone_bps", "epoch", "rounds",
    "max_sim_time", "fastpath", "seed",
)

#: The default population: mostly tuned HTTP/1.1 users with an
#: HTTP/1.0 legacy tail (plain-HTTP modes only — a fleet cohort shares
#: one port-80 listener, so MUX/sharded modes are rejected).
DEFAULT_MODE_MIX: Tuple[Tuple[str, float], ...] = (
    ("HTTP/1.1 Pipelined", 0.5),
    ("HTTP/1.1", 0.3),
    ("HTTP/1.0", 0.2),
)


@dataclasses.dataclass(frozen=True)
class UserPlan:
    """One user's compiled schedule: when they arrive, what they run."""

    index: int
    cohort: int
    arrival: float
    mode: str
    #: Think-time before each follow-up page (``pages_per_user - 1``
    #: entries).
    think_times: Tuple[float, ...]


@dataclasses.dataclass(frozen=True)
class FleetSpec:
    """A population of robot sessions contending for one bottleneck."""

    users: int = 200
    cohorts: int = 4
    environment: str = "WAN"
    scenario: str = "first-time"
    server: str = "Apache"
    #: Weighted (mode name, weight) mix; plain-HTTP transports only.
    modes: Tuple[Tuple[str, float], ...] = DEFAULT_MODE_MIX
    #: Poisson arrival rate, users per second of simulated time.
    arrival_rate: float = 2.0
    #: Mean exponential think-time between a user's pages (seconds);
    #: 0 disables thinking (back-to-back pages).
    think_time: float = 5.0
    pages_per_user: int = 2
    jitter: float = 0.0
    #: Finite server capacity: concurrent connections handled before
    #: excess accepts park in the FIFO backlog (None = unbounded).
    server_capacity: Optional[int] = 32
    #: Shared backbone capacity split across cohorts (bits/second);
    #: None = the environment's own link bandwidth.
    backbone_bps: Optional[float] = None
    #: Capacity-share epoch: the granularity (simulated seconds) at
    #: which cohorts exchange bottleneck shares.
    epoch: float = 30.0
    #: Fixed-point rounds of the share exchange (1 = static equal split).
    rounds: int = 2
    max_sim_time: float = 600.0
    fastpath: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "environment",
                           resolve_environment(self.environment).name)
        object.__setattr__(self, "scenario",
                           resolve_scenario(self.scenario))
        object.__setattr__(self, "server",
                           resolve_profile(self.server).name)
        if self.users <= 0:
            raise ValueError("a fleet needs at least one user")
        if not 0 < self.cohorts <= self.users:
            raise ValueError(f"cohorts must be in 1..users "
                             f"({self.cohorts} vs {self.users} users)")
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if self.think_time < 0:
            raise ValueError("think_time must be >= 0")
        if self.pages_per_user < 1:
            raise ValueError("pages_per_user must be >= 1")
        if self.server_capacity is not None and self.server_capacity < 1:
            raise ValueError("server_capacity must be >= 1 (or None)")
        if self.backbone_bps is not None and self.backbone_bps <= 0:
            raise ValueError("backbone_bps must be positive (or None)")
        if self.epoch <= 0:
            raise ValueError("epoch must be positive")
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if self.max_sim_time <= 0:
            raise ValueError("max_sim_time must be positive")
        if not self.modes:
            raise ValueError("the mode mix is empty")
        resolved: List[Tuple[str, float]] = []
        for name, weight in self.modes:
            mode = resolve_mode(name)
            if isinstance(mode.transport, (MuxTransport,
                                           ShardedTransport)):
                raise ValueError(
                    f"fleet cohorts share one plain-HTTP listener; "
                    f"mode {mode.name!r} needs its own server wiring")
            if not weight > 0:
                raise ValueError(f"mode weight for {mode.name!r} "
                                 f"must be positive")
            resolved.append((mode.name, float(weight)))
        object.__setattr__(self, "modes", tuple(resolved))

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def n_epochs(self) -> int:
        """How many capacity epochs cover ``max_sim_time``."""
        return max(1, int(math.ceil(self.max_sim_time / self.epoch)))

    def backbone_bandwidth(self) -> float:
        """The shared capacity cohorts split (bits per second)."""
        if self.backbone_bps is not None:
            return float(self.backbone_bps)
        return resolve_environment(self.environment).bandwidth_bps

    @property
    def label(self) -> str:
        return (f"fleet {self.users}u/{self.cohorts}c "
                f"{self.environment} seed={self.seed}")

    # ------------------------------------------------------------------
    # Population compilation
    # ------------------------------------------------------------------
    def compile_population(self) -> List[UserPlan]:
        """Expand the spec into per-user plans, deterministically.

        One seeded RNG stream, consumed strictly in user-index order
        (arrival gap, then mode, then think-times), so the schedule
        never depends on job count, dispatch order or resume state.
        """
        seed = self.seed
        rng = random.Random(seed)
        names = [name for name, _ in self.modes]
        weights = [weight for _, weight in self.modes]
        arrival = 0.0
        plans: List[UserPlan] = []
        for index in range(self.users):
            arrival += rng.expovariate(self.arrival_rate)
            mode = rng.choices(names, weights)[0]
            if self.think_time > 0:
                thinks = tuple(rng.expovariate(1.0 / self.think_time)
                               for _ in range(self.pages_per_user - 1))
            else:
                thinks = (0.0,) * (self.pages_per_user - 1)
            plans.append(UserPlan(index=index,
                                  cohort=index % self.cohorts,
                                  arrival=arrival, mode=mode,
                                  think_times=thinks))
        return plans

    def cohort_plans(self, cohort: int) -> List[UserPlan]:
        """The plans of one cohort, in user-index order."""
        if not 0 <= cohort < self.cohorts:
            raise ValueError(f"cohort {cohort} out of range "
                             f"0..{self.cohorts - 1}")
        return [plan for plan in self.compile_population()
                if plan.cohort == cohort]

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def canonical_dict(self) -> Dict[str, Any]:
        """JSON-stable identity covering every population dimension."""
        payload: Dict[str, Any] = {}
        for name in FLEET_CACHE_KEY_FIELDS:
            value = getattr(self, name)
            if name == "modes":
                value = [[mode, weight] for mode, weight in value]
            payload[name] = value
        return payload

    def replace(self, **changes: Any) -> "FleetSpec":
        return dataclasses.replace(self, **changes)


@dataclasses.dataclass(frozen=True)
class FleetUnitSpec:
    """One cohort at one fixed-point round: a matrix work unit.

    Duck-types the :class:`~repro.matrix.spec.ExperimentSpec` surface
    the matrix engine relies on (``label`` / ``seeds`` / ``runs`` /
    ``max_sim_time`` / ``canonical_dict`` / picklability) and carries
    ``execute_unit`` so :func:`~repro.matrix.runner.run_unit`
    dispatches here instead of :func:`~repro.core.runner
    .run_experiment`.  ``shares`` are integer-quantized bits/second per
    epoch — quantized *before* unit construction, so the cache key and
    the simulated schedule can never disagree.
    """

    fleet: FleetSpec
    cohort: int
    #: Per-epoch downlink capacity granted to this cohort (bps).
    shares: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not 0 <= self.cohort < self.fleet.cohorts:
            raise ValueError(f"cohort {self.cohort} out of range")
        if len(self.shares) != self.fleet.n_epochs:
            raise ValueError(
                f"need {self.fleet.n_epochs} epoch shares, "
                f"got {len(self.shares)}")
        quantized = tuple(float(int(round(share)))
                          for share in self.shares)
        for share in quantized:
            if share <= 0:
                raise ValueError("capacity shares must be positive")
        object.__setattr__(self, "shares", quantized)

    @property
    def label(self) -> str:
        return f"{self.fleet.label} cohort {self.cohort}"

    @property
    def seeds(self) -> Tuple[int, ...]:
        return (self.fleet.seed,)

    @property
    def runs(self) -> int:
        return 1

    @property
    def max_sim_time(self) -> float:
        return self.fleet.max_sim_time

    def canonical_dict(self) -> Dict[str, Any]:
        return {
            "kind": "fleet-cohort",
            "fleet": self.fleet.canonical_dict(),
            "cohort": self.cohort,
            "shares": [int(share) for share in self.shares],
        }

    def execute_unit(self, seed: int) -> Any:
        """Simulate this cohort (the matrix engine's dispatch hook)."""
        from .engine import run_cohort
        return run_cohort(self, seed)
