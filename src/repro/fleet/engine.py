"""Cohort execution: one simulator hosts a whole slice of the fleet.

:func:`run_cohort` is the fleet's work unit.  It builds one
:class:`~repro.simnet.network.FleetNetwork` — N client stacks and one
server stack on a shared bottleneck link whose per-epoch capacity
schedule encodes the shares other cohorts claim — starts a single
plain-HTTP :class:`~repro.server.base.SimHttpServer` with finite
service capacity, and drives every user of the cohort through their
compiled :class:`~repro.fleet.spec.UserPlan`: arrive, fetch a page,
think, fetch the next.

The result is a :class:`CohortResult`: per-session page-load times,
per-epoch downlink demand (what the parent's fixed-point pass feeds
on), and the server's queueing record.  A JSON codec is registered
with the matrix cache at import, so cohort results ride the result
cache and the run journal byte-identically.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Tuple

from ..client.robot import REVALIDATE
from ..core.registry import (resolve_environment, resolve_mode,
                             resolve_profile)
from ..core.runner import _default_site_and_store
from ..core.scenarios import prefill_cache
from ..http.cache import MemoryCache
from ..matrix.cache import register_result_codec
from ..server.base import SimHttpServer
from ..simnet.network import SERVER_HOST, FleetNetwork
from ..simnet.tcp import TcpConfig
from .spec import FleetUnitSpec, UserPlan

__all__ = ["SessionStats", "CohortResult", "run_cohort"]

#: The one plain-HTTP port every cohort member talks to.
_FLEET_PORT = 80


@dataclasses.dataclass(frozen=True)
class SessionStats:
    """One user's measured session."""

    user: int
    mode: str
    arrival: float
    #: Completed page-load times, in page order.
    page_times: Tuple[float, ...]
    pages_started: int
    #: Pages that failed or never finished before the deadline.
    errors: int

    @property
    def mean_page_time(self) -> float:
        if not self.page_times:
            return float("nan")
        return sum(self.page_times) / len(self.page_times)


@dataclasses.dataclass(frozen=True)
class CohortResult:
    """Everything one cohort simulation measured."""

    cohort: int
    users: int
    sessions: Tuple[SessionStats, ...]
    epoch: float
    #: Server→clients wire bytes per capacity epoch (the downlink
    #: demand signal the fixed-point share exchange consumes).
    epoch_bytes_down: Tuple[float, ...]
    #: Accept-backlog waits, one per connection that had to park.
    queue_waits: Tuple[float, ...]
    server_cpu_seconds: float
    connections_accepted: int
    requests_served: int
    packets: int
    sim_time: float
    fastforward_spans: int

    @property
    def page_times(self) -> List[float]:
        """Completed page-load times across the cohort, session order."""
        return [elapsed for session in self.sessions
                for elapsed in session.page_times]

    @property
    def errors(self) -> int:
        return sum(session.errors for session in self.sessions)


class _Session:
    """One user's page-fetch loop inside the cohort simulator."""

    __slots__ = ("sim", "stack", "plan", "fleet", "site", "store",
                 "page_times", "pages_started", "errors", "_robot")

    def __init__(self, sim, stack, plan: UserPlan, fleet, site,
                 store) -> None:
        self.sim = sim
        self.stack = stack
        self.plan = plan
        self.fleet = fleet
        self.site = site
        self.store = store
        self.page_times: List[float] = []
        self.pages_started = 0
        self.errors = 0
        self._robot = None

    def start(self) -> None:
        self._fetch_page()

    def _fetch_page(self) -> None:
        self.pages_started += 1
        mode = resolve_mode(self.plan.mode)
        config = mode.client_config()
        cache = MemoryCache()
        if self.fleet.scenario == REVALIDATE:
            profile = resolve_profile(self.fleet.server)
            prefill_cache(cache, self.store, self.site, profile)
        robot = mode.transport.create_client(
            self.sim, self.stack, SERVER_HOST, _FLEET_PORT, config,
            cache)
        robot.on_complete = self._page_done
        self._robot = robot
        known = (self.site.all_urls()
                 if self.fleet.scenario == REVALIDATE else None)
        robot.fetch(self.site.html_url, self.fleet.scenario,
                    known_urls=known)

    def _page_done(self, result) -> None:
        self._robot = None
        if not result.complete:
            # A failed page ends the session: real users give up.
            self.errors += 1
            return
        self.page_times.append(result.elapsed)
        if self.pages_started < self.fleet.pages_per_user:
            think = self.plan.think_times[self.pages_started - 1]
            self.sim.schedule(think, self._fetch_page)

    def stats(self) -> SessionStats:
        # Pages still in flight when the deadline hit never fired
        # on_complete; they count as errors so totals reconcile.
        unfinished = (self.pages_started - len(self.page_times)
                      - self.errors)
        return SessionStats(
            user=self.plan.index, mode=self.plan.mode,
            arrival=self.plan.arrival,
            page_times=tuple(self.page_times),
            pages_started=self.pages_started,
            errors=self.errors + max(0, unfinished))


def run_cohort(unit: FleetUnitSpec, seed: int) -> CohortResult:
    """Simulate one cohort under its granted capacity shares."""
    fleet = unit.fleet
    environment = resolve_environment(fleet.environment)
    profile = resolve_profile(fleet.server)
    site, store = _default_site_and_store()
    plans = fleet.cohort_plans(unit.cohort)
    net = FleetNetwork(
        environment, len(plans), seed=seed, jitter=fleet.jitter,
        # Same Solaris 2.5 server stack as the single-robot runner.
        server_config=TcpConfig(mss=environment.mss,
                                delack_delay=0.050),
        fastpath=fleet.fastpath,
        capacity_epoch=fleet.epoch, capacity_shares=unit.shares)
    server = SimHttpServer(net.sim, net.server, store, profile,
                           port=_FLEET_PORT,
                           max_concurrent=fleet.server_capacity)
    sessions: List[_Session] = []
    for slot, plan in enumerate(plans):
        session = _Session(net.sim, net.clients[slot], plan, fleet,
                           site, store)
        sessions.append(session)
        net.sim.schedule_at(plan.arrival, session.start)
    # The deadline is *hard* (unlike the single-robot runner's drain):
    # an overloaded population would otherwise run for unbounded
    # simulated time.  Pages still in flight count as session errors.
    net.run(until=fleet.max_sim_time)
    n_epochs = len(unit.shares)
    buckets = [0.0] * n_epochs
    trace = net.trace
    times, srcs, wires = trace._times, trace._srcs, trace._wire_sizes
    epoch = fleet.epoch
    for i in range(len(times)):
        if srcs[i] == SERVER_HOST:
            index = int(times[i] / epoch)
            if index >= n_epochs:
                index = n_epochs - 1
            buckets[index] += wires[i]
    return CohortResult(
        cohort=unit.cohort,
        users=len(plans),
        sessions=tuple(session.stats() for session in sessions),
        epoch=epoch,
        epoch_bytes_down=tuple(buckets),
        queue_waits=tuple(server.queue_waits),
        server_cpu_seconds=server.cpu_busy_seconds,
        connections_accepted=server.connections_accepted,
        requests_served=server.requests_served,
        packets=len(times),
        sim_time=net.sim.now,
        fastforward_spans=net.sim.perf.fastforward_spans)


# ----------------------------------------------------------------------
# Cache / journal codec
# ----------------------------------------------------------------------

def _cohort_to_payload(result: CohortResult) -> Dict[str, Any]:
    payload = dataclasses.asdict(result)
    payload["sessions"] = [dataclasses.asdict(session)
                           for session in result.sessions]
    return payload


def _cohort_from_payload(payload: Dict[str, Any]) -> CohortResult:
    sessions = tuple(
        SessionStats(user=row["user"], mode=row["mode"],
                     arrival=row["arrival"],
                     page_times=tuple(row["page_times"]),
                     pages_started=row["pages_started"],
                     errors=row["errors"])
        for row in payload["sessions"])
    return CohortResult(
        cohort=payload["cohort"], users=payload["users"],
        sessions=sessions, epoch=payload["epoch"],
        epoch_bytes_down=tuple(payload["epoch_bytes_down"]),
        queue_waits=tuple(payload["queue_waits"]),
        server_cpu_seconds=payload["server_cpu_seconds"],
        connections_accepted=payload["connections_accepted"],
        requests_served=payload["requests_served"],
        packets=payload["packets"], sim_time=payload["sim_time"],
        fastforward_spans=payload["fastforward_spans"])


register_result_codec("fleet-cohort", CohortResult,
                      _cohort_to_payload, _cohort_from_payload)
