"""The ``python -m repro fleet`` verb.

Wires a :class:`~repro.fleet.spec.FleetSpec` from command-line flags,
builds the matrix machinery (jobs / cache / journal / supervisor), runs
the population through :func:`~repro.fleet.runner.run_fleet` and prints
the tail-latency / fairness / server-queueing report.

The journal run id derives from the spec's canonical identity, so
``--resume`` without an explicit run id continues the same population
(machinery flags like ``--jobs`` never change the id).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys

from ..matrix import (DEFAULT_RETRY_BUDGET, CellEvent, MatrixRunner,
                      ResultCache)
from .runner import run_fleet
from .spec import FleetSpec

__all__ = ["add_fleet_parser"]


def _print_progress(event: CellEvent) -> None:
    if event.status == "hit":
        tag = "cache"
    elif event.status == "failed":
        tag = f"FAIL attempt {event.attempt}"
    elif event.status == "retried":
        tag = f"retry attempt {event.attempt}"
    else:
        tag = f"{event.wall_time:5.2f}s"
    print(f"  [{event.completed}/{event.total}] {event.label} "
          f"seed={event.seed} ({tag})", file=sys.stderr)


def _fleet_run_id(spec: FleetSpec) -> str:
    blob = json.dumps(spec.canonical_dict(), sort_keys=True,
                      separators=(",", ":"))
    return f"fleet-{hashlib.sha256(blob.encode()).hexdigest()[:10]}"


def _make_runner(args: argparse.Namespace,
                 spec: FleetSpec) -> MatrixRunner:
    cache = None
    if args.cache or args.cache_dir is not None:
        cache = (ResultCache(args.cache_dir) if args.cache_dir
                 else ResultCache())
    journal = None
    if args.resume is not None or args.journal:
        from ..matrix import RunJournal
        journal = RunJournal(args.resume or _fleet_run_id(spec))
        print(f"journal: {journal.run_id}", file=sys.stderr)
    return MatrixRunner(
        jobs=args.jobs, cache=cache,
        progress=_print_progress if args.progress else None,
        journal=journal, retry_budget=args.retry_budget,
        unit_deadline=args.unit_deadline)


def _cmd_fleet(args: argparse.Namespace) -> int:
    spec = FleetSpec(
        users=args.users, cohorts=args.cohorts,
        environment=args.environment, scenario=args.scenario,
        server=args.server, arrival_rate=args.arrival_rate,
        think_time=args.think_time, pages_per_user=args.pages_per_user,
        server_capacity=(None if args.server_capacity == 0
                         else args.server_capacity),
        backbone_bps=args.backbone_bps, epoch=args.epoch,
        rounds=args.rounds, max_sim_time=args.max_sim_time,
        fastpath=not args.no_fastpath, seed=args.seed)
    runner = _make_runner(args, spec)
    with runner:
        result = run_fleet(spec, runner=runner)
    from ..analysis.report import format_fleet_report
    print(format_fleet_report(result))
    print(runner.stats.summary(), file=sys.stderr)
    if result.failures and not any(
            cohort is not None for cohort in result.cohorts):
        # Nothing simulated at all: loud failure, not an empty table.
        return 1
    return 0


def add_fleet_parser(sub) -> None:
    """Register the ``fleet`` subcommand on the CLI's subparsers."""
    fleet = sub.add_parser(
        "fleet",
        help="population-scale runs: cohorts of robot sessions on a "
             "shared bottleneck")
    fleet.add_argument("--users", type=int, default=200, metavar="N",
                       help="population size (default 200)")
    fleet.add_argument("--cohorts", type=int, default=4, metavar="K",
                       help="cohorts the population shards into; one "
                            "simulator (= one matrix unit) per cohort "
                            "per round (default 4)")
    fleet.add_argument("--environment", default="WAN",
                       choices=("LAN", "WAN", "PPP",
                                "lan", "wan", "ppp"))
    fleet.add_argument("--scenario",
                       choices=("first-time", "revalidate"),
                       default="first-time")
    fleet.add_argument("--server", choices=("jigsaw", "apache"),
                       default="apache")
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--arrival-rate", type=float, default=2.0,
                       metavar="R",
                       help="Poisson arrivals per simulated second "
                            "(default 2.0)")
    fleet.add_argument("--think-time", type=float, default=5.0,
                       metavar="S",
                       help="mean exponential think-time between a "
                            "user's pages (default 5.0 s)")
    fleet.add_argument("--pages-per-user", type=int, default=2,
                       metavar="N")
    fleet.add_argument("--server-capacity", type=int, default=32,
                       metavar="N",
                       help="concurrent connections the server handles "
                            "before parking accepts (0 = unbounded; "
                            "default 32)")
    fleet.add_argument("--backbone-bps", type=float, default=None,
                       metavar="BPS",
                       help="shared backbone capacity split across "
                            "cohorts (default: the environment's link "
                            "bandwidth)")
    fleet.add_argument("--epoch", type=float, default=30.0,
                       metavar="S",
                       help="capacity-share epoch in simulated seconds "
                            "(default 30)")
    fleet.add_argument("--rounds", type=int, default=2, metavar="N",
                       help="fixed-point share-exchange rounds "
                            "(default 2; 1 = static equal split)")
    fleet.add_argument("--max-sim-time", type=float, default=600.0,
                       metavar="S")
    fleet.add_argument("--no-fastpath", action="store_true",
                       help="force per-segment execution (results are "
                            "byte-identical either way)")
    fleet.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes (0 = one per CPU)")
    fleet.add_argument("--cache", action="store_true",
                       help="reuse cached cohort results "
                            "(.repro-cache/)")
    fleet.add_argument("--cache-dir", default=None, metavar="PATH",
                       help="cache directory (implies --cache)")
    fleet.add_argument("--progress", action="store_true",
                       help="print per-cohort progress to stderr")
    fleet.add_argument("--retry-budget", type=int,
                       default=DEFAULT_RETRY_BUDGET, metavar="N",
                       help="re-dispatches allowed per failing cohort "
                            f"(default {DEFAULT_RETRY_BUDGET})")
    fleet.add_argument("--unit-deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="wall-clock budget per cohort in a worker")
    fleet.add_argument("--journal", action="store_true",
                       help="record resolved cohorts into a crash-safe "
                            "run journal (.repro-cache/runs/)")
    fleet.add_argument("--resume", default=None, nargs="?",
                       const="", metavar="RUN_ID",
                       help="resume a journaled fleet run (no RUN_ID = "
                            "the id derived from this spec)")
    fleet.set_defaults(fn=_cmd_fleet)
