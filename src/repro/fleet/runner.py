"""The fleet driver: fixed-point bottleneck sharing across cohorts.

:func:`run_fleet` turns a :class:`~repro.fleet.spec.FleetSpec` into a
batch of cohort units per fixed-point round and runs each batch
through a :class:`~repro.matrix.runner.MatrixRunner` — so cohorts ride
the warm worker pool, the result cache, the supervisor and the run
journal exactly like table cells do.  Between rounds the parent runs a
purely analytic share exchange: each cohort's measured per-epoch
downlink demand feeds a deterministic max-min water-fill over the
backbone capacity, and the next round re-simulates every cohort under
its new shares.  Cross-cohort interaction therefore never crosses a
process boundary mid-simulation; a 10k-user run is just a grid of
cacheable, journaled units.

Determinism: shares are integer-quantized bits/second computed from
cohort results that are themselves byte-reproducible, and every
aggregation below iterates in (cohort, session) order — so percentiles,
fairness and queueing stats are byte-identical across ``--jobs 1``,
``--jobs N`` and a ``--resume`` of a killed run.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Tuple

from ..core.runner import UnitFailure, nearest_rank
from ..matrix.runner import MatrixRunner
from .engine import CohortResult, SessionStats
from .spec import FleetSpec, FleetUnitSpec

__all__ = ["FleetResult", "run_fleet"]

#: A cohort using at least this fraction of its granted share is
#: treated as saturated (unbounded demand) in the next water-fill.
_SATURATION = 0.9

#: Headroom multiplier on measured demand, so an under-utilized cohort
#: is never strangled exactly at its last observed rate.
_HEADROOM = 1.25

#: Demand floor as a fraction of the equal split: an epoch with no
#: arrivals yet still reserves enough capacity to start flows.
_MIN_DEMAND_FRACTION = 0.05


def _quantize(share: float) -> float:
    """Integer bits/second, floored at 1 — the cache-key granularity."""
    return float(max(1, int(round(share))))


def _waterfill(capacity: float, demands: List[float]) -> List[float]:
    """Deterministic max-min fair allocation of ``capacity``.

    Bounded demands are granted in full when they fit under the
    current fair share; the remainder splits equally among the still-
    unsatisfied (including infinite-demand) cohorts.
    """
    count = len(demands)
    shares = [0.0] * count
    active = list(range(count))
    remaining = capacity
    while active:
        fair = remaining / len(active)
        bounded = [k for k in active if demands[k] <= fair]
        if not bounded:
            for k in active:
                shares[k] = fair
            break
        for k in bounded:
            shares[k] = demands[k]
            remaining -= demands[k]
        active = [k for k in active if demands[k] > fair]
    return shares


def _rebalance(spec: FleetSpec, shares: List[Tuple[float, ...]],
               results: List[Optional[CohortResult]],
               backbone: float,
               bits_per_byte: float) -> List[Tuple[float, ...]]:
    """Next-round shares from this round's measured demands."""
    n_epochs = spec.n_epochs
    floor = _MIN_DEMAND_FRACTION * backbone / spec.cohorts
    rebalanced: List[List[float]] = []
    for _ in range(spec.cohorts):
        rebalanced.append([0.0] * n_epochs)
    for e in range(n_epochs):
        demands: List[float] = []
        for k in range(spec.cohorts):
            result = results[k]
            if result is None:
                # A quarantined cohort keeps its old share: the grid
                # stays stable and a later resume slots right in.
                demands.append(shares[k][e])
                continue
            measured = (result.epoch_bytes_down[e] * bits_per_byte
                        / spec.epoch)
            if measured >= _SATURATION * shares[k][e]:
                demands.append(math.inf)
            else:
                demands.append(max(measured * _HEADROOM, floor))
        granted = _waterfill(backbone, demands)
        for k in range(spec.cohorts):
            rebalanced[k][e] = _quantize(granted[k])
    return [tuple(row) for row in rebalanced]


@dataclasses.dataclass
class FleetResult:
    """Everything a fleet run measured, in deterministic order."""

    spec: FleetSpec
    #: One entry per cohort (None when every round of it quarantined).
    cohorts: Tuple[Optional[CohortResult], ...]
    failures: Tuple[UnitFailure, ...]
    #: The shares the last simulated round ran under.
    final_shares: Tuple[Tuple[float, ...], ...]

    # ------------------------------------------------------------------
    # Sessions and page times
    # ------------------------------------------------------------------
    @property
    def sessions(self) -> List[SessionStats]:
        """Every simulated session, cohort-major then user order."""
        return [session for result in self.cohorts if result is not None
                for session in result.sessions]

    @property
    def page_times(self) -> List[float]:
        """Completed page-load times in (cohort, session) order."""
        return [elapsed for session in self.sessions
                for elapsed in session.page_times]

    def percentile(self, p: float) -> float:
        """Nearest-rank population percentile of page-load time."""
        return nearest_rank(self.page_times, p)

    @property
    def mean_page_time(self) -> float:
        times = self.page_times
        if not times:
            return float("nan")
        return sum(times) / len(times)

    def per_mode_page_times(self) -> Dict[str, List[float]]:
        """Page times split by protocol mode, in mode-mix order."""
        split: Dict[str, List[float]] = {
            name: [] for name, _ in self.spec.modes}
        for session in self.sessions:
            split[session.mode].extend(session.page_times)
        return split

    # ------------------------------------------------------------------
    # Fairness / errors / queueing
    # ------------------------------------------------------------------
    @property
    def fairness_index(self) -> float:
        """Jain's index over per-session mean page-load times.

        1.0 = perfectly even service; 1/n = one session got
        everything.  Sessions with no completed page are skipped.
        """
        means = [session.mean_page_time for session in self.sessions
                 if session.page_times]
        if not means:
            return float("nan")
        square_of_sum = sum(means) ** 2
        sum_of_squares = sum(mean * mean for mean in means)
        if sum_of_squares == 0.0:
            return 1.0
        return square_of_sum / (len(means) * sum_of_squares)

    @property
    def users_simulated(self) -> int:
        return sum(result.users for result in self.cohorts
                   if result is not None)

    @property
    def errors(self) -> int:
        return sum(result.errors for result in self.cohorts
                   if result is not None)

    @property
    def queue_waits(self) -> List[float]:
        """Server accept-backlog waits, cohort order."""
        return [wait for result in self.cohorts if result is not None
                for wait in result.queue_waits]

    @property
    def server_cpu_seconds(self) -> float:
        return sum(result.server_cpu_seconds for result in self.cohorts
                   if result is not None)


def run_fleet(spec: FleetSpec, *,
              runner: Optional[MatrixRunner] = None) -> FleetResult:
    """Run a whole population and aggregate its tail statistics.

    ``runner`` carries the parallel/cache/journal machinery; when None
    a plain serial runner is built (and closed) here.  Each fixed-point
    round dispatches one unit per cohort; results are byte-identical
    for any job count because cohorts only interact through the
    quantized shares computed between rounds in this parent process.
    """
    owns_runner = runner is None
    if runner is None:
        runner = MatrixRunner()
    try:
        from ..core.registry import resolve_environment
        environment = resolve_environment(spec.environment)
        backbone = spec.backbone_bandwidth()
        n_epochs = spec.n_epochs
        equal = _quantize(backbone / spec.cohorts)
        shares: List[Tuple[float, ...]] = [
            (equal,) * n_epochs for _ in range(spec.cohorts)]
        results: List[Optional[CohortResult]] = [None] * spec.cohorts
        failures: List[UnitFailure] = []
        for round_index in range(spec.rounds):
            units = [FleetUnitSpec(fleet=spec, cohort=k,
                                   shares=shares[k])
                     for k in range(spec.cohorts)]
            cells = runner.run_many(units)
            for k, cell in enumerate(cells):
                if cell.runs:
                    results[k] = cell.runs[0]
                failures.extend(cell.failures)
            if round_index + 1 < spec.rounds:
                shares = _rebalance(spec, shares, results, backbone,
                                    environment.bits_per_byte)
        return FleetResult(spec=spec, cohorts=tuple(results),
                           failures=tuple(failures),
                           final_shares=tuple(shares))
    finally:
        if owns_runner:
            runner.close()
