"""repro — reproduction of "Network Performance Effects of HTTP/1.1, CSS1, and PNG".

A full reimplementation of the SIGCOMM '97 measurement study by Nielsen,
Gettys, Baird-Smith, Prud'hommeaux, Lie and Lilley: HTTP/1.0 and
HTTP/1.1 clients and servers (persistent connections, pipelining,
deflate transport compression) running over a deterministic TCP
simulator, plus the content-level experiments (CSS1 image replacement,
GIF→PNG/MNG conversion) with real codecs.

Subpackages
-----------
``repro.simnet``
    Discrete-event TCP/IP simulator (slow start, Nagle, delayed ACKs,
    half-close) with LAN / WAN / PPP environments and trace capture.
``repro.http``
    HTTP/1.0 and HTTP/1.1 message model: parsing, headers, chunked
    coding, content codings, caching validators, byte ranges.
``repro.client``
    The libwww-robot-like clients: HTTP/1.0 with parallel connections,
    HTTP/1.1 persistent and pipelined with buffered output.
``repro.server``
    Jigsaw- and Apache-like buffered static servers.
``repro.content``
    The synthetic "Microscape" test site, GIF/PNG/MNG codecs, CSS1
    subset, and content-transformation analyses.
``repro.core``
    Experiment runner, scenarios, protocol modes, metrics.
``repro.realnet``
    Real-socket HTTP server/client for localhost integration tests.
``repro.analysis``
    Table formatting and paper-vs-measured reporting.
"""

__version__ = "1.4.0"

__all__ = ["__version__"]
