"""Named fault plans: the grid swept by ``python -m repro chaos``.

A :class:`FaultPlan` bundles a link-fault config and a server-fault
config under a stable name, so experiment specs can reference faults as
a plain string dimension (cache-key friendly) and a failing chaos cell
can be reproduced from its ``plan:mode:environment`` coordinates alone.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Union

from .injector import LinkFaultConfig
from .server import ServerFaultConfig

__all__ = ["FaultPlan", "FAULT_PLANS", "resolve_fault_plan"]


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """One named combination of link and server faults."""

    name: str
    description: str
    link: LinkFaultConfig = LinkFaultConfig()
    server: ServerFaultConfig = ServerFaultConfig()


#: Gilbert–Elliott bursty loss: ~2 % chance per segment of entering a
#: burst that drops ~30 % of segments until it ends (mean burst length
#: ~3 segments).  Pure transport adversity — exercises RTO and
#: fast-retransmit without any application-level fault.
_BURSTY_LOSS = FaultPlan(
    name="bursty-loss",
    description="Gilbert-Elliott bursty segment loss (congested path)",
    link=LinkFaultConfig(p_good_to_bad=0.02, p_bad_to_good=0.3,
                         loss_good=0.005, loss_bad=0.3),
)

#: Everything wrong with the wire at once, lightly: a little loss plus
#: reordering, duplication and payload corruption.  Corruption lands on
#: the receiver's checksum check, so it turns into loss the sender must
#: repair.
_WIRE_CHAOS = FaultPlan(
    name="wire-chaos",
    description="light loss + reordering + duplication + corruption",
    link=LinkFaultConfig(loss_good=0.01, reorder_rate=0.05,
                         reorder_max_delay=0.02, duplicate_rate=0.03,
                         corrupt_rate=0.03),
)

#: An unreliable application: scattered 503s and two mid-body aborts.
#: The robot must retry the 503s and re-fetch the aborted resources on
#: fresh connections.
_FLAKY_SERVER = FaultPlan(
    name="flaky-server",
    description="deterministic 503s and mid-response aborts",
    server=ServerFaultConfig(error_503_requests=(3, 11, 27),
                             abort_requests=(7, 19),
                             abort_after_bytes=512),
)

#: A pipeline-hostile server: one response per connection (beyond even
#: Apache 1.2b2's cap of five) plus a long stall early on, forcing the
#: watchdog and the downgrade ladder to engage.
_HOSTILE_SERVER = FaultPlan(
    name="hostile-server",
    description="close-after-one-response + an early long stall",
    server=ServerFaultConfig(stall_requests=(2,), stall_seconds=25.0,
                             close_after_one=True),
)

#: Registry of the chaos grid's fault plans.
FAULT_PLANS: Dict[str, FaultPlan] = {
    plan.name: plan for plan in (_BURSTY_LOSS, _WIRE_CHAOS,
                                 _FLAKY_SERVER, _HOSTILE_SERVER)
}


def resolve_fault_plan(
        faults: Union[None, str, FaultPlan]) -> Optional[FaultPlan]:
    """Accept a plan name, a plan, or None; return the plan or None."""
    if faults is None or isinstance(faults, FaultPlan):
        return faults
    try:
        return FAULT_PLANS[faults]
    except KeyError:
        known = ", ".join(sorted(FAULT_PLANS))
        raise ValueError(
            f"unknown fault plan {faults!r} (known: {known})") from None
