"""Misbehaving-server profiles: deterministic application-level faults.

The paper's implementation-lessons section is a catalogue of server
misbehaviour — naive both-halves close RST'ing pipelined clients,
Apache 1.2b2's five-request cap breaking pipelines, servers stalling
under load.  :class:`ServerFaultConfig` scripts those behaviours
deterministically by *request ordinal* (the Nth request the server
receives), so a seeded run always hits the same faults:

* ``error_503_requests`` — answer those ordinals with a 503 instead of
  the real resource (the robot retries them);
* ``abort_requests`` — send ``abort_after_bytes`` of the real response,
  then RST the connection mid-body;
* ``stall_requests`` — freeze the serial server CPU for
  ``stall_seconds`` before answering (the robot's watchdog fires);
* ``close_after_one`` — cap every connection at one response, the
  pipeline-hostile extreme of Apache 1.2b2's cap of five.

:class:`FaultyProfile` is a :class:`ServerProfile` subclass, so the
whole server stack (response building, buffering, CPU model) works
unchanged; ``SimHttpServer`` consults ``profile.faults`` at dispatch.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

from ..server.profiles import ServerProfile

__all__ = ["ServerFaultConfig", "FaultyProfile"]


@dataclasses.dataclass(frozen=True)
class ServerFaultConfig:
    """Scripted application-level faults, keyed by request ordinal
    (1-based, counted across all connections in arrival order)."""

    #: Ordinals answered with a 503 Service Unavailable.
    error_503_requests: Tuple[int, ...] = ()
    #: Ordinals whose response is cut off by an RST mid-body.
    abort_requests: Tuple[int, ...] = ()
    #: Body bytes sent before the abort.
    abort_after_bytes: int = 512
    #: Ordinals that stall the serial server CPU before answering.
    stall_requests: Tuple[int, ...] = ()
    stall_seconds: float = 5.0
    #: Close every connection after a single response.
    close_after_one: bool = False

    def __post_init__(self) -> None:
        if self.abort_after_bytes < 0:
            raise ValueError("abort_after_bytes cannot be negative")
        if self.stall_seconds < 0:
            raise ValueError("stall_seconds cannot be negative")

    @property
    def active(self) -> bool:
        return bool(self.error_503_requests or self.abort_requests
                    or self.stall_requests or self.close_after_one)


@dataclasses.dataclass(frozen=True)
class FaultyProfile(ServerProfile):
    """A :class:`ServerProfile` with scripted faults attached."""

    faults: ServerFaultConfig = ServerFaultConfig()

    @classmethod
    def wrap(cls, base: ServerProfile,
             faults: ServerFaultConfig) -> "FaultyProfile":
        """Clone ``base`` with ``faults`` attached (name gains a
        ``+faults`` suffix so reports and cache keys distinguish it)."""
        fields = {f.name: getattr(base, f.name)
                  for f in dataclasses.fields(ServerProfile)}
        fields["name"] = f"{base.name}+faults"
        if faults.close_after_one:
            fields["max_requests_per_connection"] = 1
        return cls(faults=faults, **fields)
