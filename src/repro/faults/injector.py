"""Deterministic link-level fault injection.

A :class:`FaultInjector` installs itself as ``link.fault_injector`` and
takes over delivery scheduling for every segment that survives the
link's own serialization / loss / drop-tail model.  It can then

* **drop** segments with Gilbert–Elliott bursty loss (a two-state
  Markov chain: a *good* state with light independent loss and a *bad*
  state with heavy loss, matching the clustered losses of congested
  1997 WAN paths far better than the link's independent ``loss_rate``);
* **corrupt** payload bytes — the corrupted copy carries a CRC32 of the
  *original* payload, so the receiving TCP discards it as a checksum
  failure and the sender's RTO / fast-retransmit machinery repairs it;
* **duplicate** segments (delivered twice, slightly apart), and
* **reorder** segments by a bounded extra delay.

Everything draws from one private ``random.Random(seed)``, independent
of the link's jitter RNG, so a fault schedule is reproducible from its
seed alone and adding fault injection never perturbs a clean run's
random stream.

The injector runs once per delivered segment, so it lives on the
simulator's hot path and uses ``__slots__``; the config is a frozen
dataclass (exempt from the hot-path slots rule, like ``TcpConfig``).
"""

from __future__ import annotations

import dataclasses
import random
import zlib
from typing import Optional

from .recovery import RecoveryLog

__all__ = ["LinkFaultConfig", "FaultInjector"]


@dataclasses.dataclass(frozen=True)
class LinkFaultConfig:
    """Probabilities of the composable link faults (all default off).

    The Gilbert–Elliott chain transitions per *segment*: with
    ``p_good_to_bad`` the link enters a burst, with ``p_bad_to_good`` it
    leaves one; ``loss_good`` / ``loss_bad`` are the per-segment drop
    probabilities inside each state.  Defaults give a degenerate chain
    that never leaves the good state.
    """

    p_good_to_bad: float = 0.0
    p_bad_to_good: float = 1.0
    loss_good: float = 0.0
    loss_bad: float = 0.0
    #: Per-segment probability of a bounded reordering delay, drawn
    #: uniform in (0, reorder_max_delay].
    reorder_rate: float = 0.0
    reorder_max_delay: float = 0.02
    #: Per-segment probability the segment arrives twice.
    duplicate_rate: float = 0.0
    #: Per-segment probability of payload corruption (data segments
    #: only; pure control segments cannot fail a payload checksum).
    corrupt_rate: float = 0.0

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if field.name == "reorder_max_delay":
                if value <= 0.0:
                    raise ValueError("reorder_max_delay must be positive")
            elif not 0.0 <= value <= 1.0:
                raise ValueError(f"{field.name} must be in [0, 1]")

    @property
    def active(self) -> bool:
        """Whether any fault can ever fire."""
        return bool(self.p_good_to_bad or self.loss_good
                    or self.reorder_rate or self.duplicate_rate
                    or self.corrupt_rate)


class FaultInjector:
    """Owns delivery of every segment crossing one :class:`Link`."""

    __slots__ = ("link", "config", "rng", "recovery", "_bad",
                 "injected_loss", "injected_reorder", "injected_duplicate",
                 "injected_corrupt")

    def __init__(self, link, config: LinkFaultConfig, seed: int,
                 recovery: Optional[RecoveryLog] = None) -> None:
        self.link = link
        self.config = config
        self.rng = random.Random(seed)
        self.recovery = recovery
        self._bad = False        # Gilbert–Elliott state
        self.injected_loss = 0
        self.injected_reorder = 0
        self.injected_duplicate = 0
        self.injected_corrupt = 0
        link.fault_injector = self

    # ------------------------------------------------------------------
    def handle(self, segment, deliver_at: float) -> None:
        """Decide the fate of ``segment`` due at ``deliver_at``."""
        link = self.link
        config = self.config
        rng = self.rng
        # Gilbert–Elliott state transition, then the state's loss draw.
        if self._bad:
            if rng.random() < config.p_bad_to_good:
                self._bad = False
        elif config.p_good_to_bad and rng.random() < config.p_good_to_bad:
            self._bad = True
        loss = config.loss_bad if self._bad else config.loss_good
        if loss and rng.random() < loss:
            self.injected_loss += 1
            link.segments_dropped += 1
            link.dropped_loss += 1
            self._note("loss", f"{segment!r} in "
                       f"{'bad' if self._bad else 'good'} state")
            return
        if (config.corrupt_rate and segment.payload_len
                and rng.random() < config.corrupt_rate):
            # Flip one payload byte; stamp the checksum of the ORIGINAL
            # payload so the receiver's verification fails and drops it.
            index = rng.randrange(segment.payload_len)
            mutated = bytearray(segment.payload)
            mutated[index] ^= 0xFF
            original_crc = zlib.crc32(segment.payload)
            segment = segment.replace(payload=bytes(mutated),
                                      checksum=original_crc)
            self.injected_corrupt += 1
            self._note("corrupt", f"byte {index} of {segment!r}")
        if config.duplicate_rate and rng.random() < config.duplicate_rate:
            self.injected_duplicate += 1
            self._note("duplicate", repr(segment))
            link.sim.schedule_at(deliver_at + 1e-4, link._deliver,
                                 segment.replace())
        if config.reorder_rate and rng.random() < config.reorder_rate:
            self.injected_reorder += 1
            delay = rng.uniform(0.0, config.reorder_max_delay)
            deliver_at += delay
            self._note("reorder", f"+{delay * 1000.0:.1f}ms {segment!r}")
        link.sim.schedule_at(deliver_at, link._deliver, segment)

    def _note(self, kind: str, detail: str) -> None:
        if self.recovery is not None:
            self.recovery.note(self.link.sim.now, "link", kind, detail)
