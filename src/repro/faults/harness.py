"""Harness-level fault injection: hostile-machine faults for the engine.

:mod:`repro.faults` attacks the simulated *network* and *server*;
this module attacks the experiment harness itself — the worker
processes of the :class:`~repro.matrix.runner.MatrixRunner` pool.  A
:class:`HarnessFaultPlan` scripts three machine faults against the
units of a dispatched grid:

* **worker kill** — the worker SIGKILLs itself just before running a
  designated unit (an OOM-killed or segfaulted worker);
* **hung cell** — the worker stalls on a designated unit long past any
  reasonable wall-clock budget (a wedged syscall, a livelocked run);
* **poison cell** — a designated unit raises on every attempt,
  optionally restricted to one seed (a deterministic software bug).

Determinism mirrors :mod:`repro.faults.injector`: faults are scripted
by *unit ordinal* (the unit's slot index in the dispatched batch),
seed and attempt number — no clocks, no randomness — so a chaotic run
replays exactly from its plan and grid alone.  Kill and hang model
*transient* machine faults: they fire on the first attempt only, and
only inside a pool worker (never in the parent, where a self-SIGKILL
would take the whole run down).  Poison models a *deterministic* bug:
it raises in workers and in the parent's serial rung alike, so the
retry ladder exhausts and the unit is quarantined as a
:class:`~repro.core.runner.UnitFailure`.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import signal
import time
from typing import Dict, Optional, Tuple, Union

__all__ = ["HarnessPoisonError", "HarnessFaultPlan", "HARNESS_PLANS",
           "resolve_harness_plan"]


class HarnessPoisonError(RuntimeError):
    """The scripted failure a poison cell raises on every attempt."""


@dataclasses.dataclass(frozen=True)
class HarnessFaultPlan:
    """A deterministic script of machine faults against grid units."""

    name: str
    #: SIGKILL the executing worker before running this unit ordinal
    #: (first attempt only, workers only).
    kill_unit: Optional[int] = None
    #: Stall this unit ordinal for :attr:`hang_seconds` (first attempt
    #: only, workers only) — long enough that the supervisor's
    #: per-unit deadline fires first and respawns the pool.
    hang_unit: Optional[int] = None
    hang_seconds: float = 3600.0
    #: Unit ordinals that raise :class:`HarnessPoisonError` on *every*
    #: attempt, in workers and in the parent's serial retry alike.
    poison_units: Tuple[int, ...] = ()
    #: Restrict the poison to one seed (None poisons every seed of the
    #: listed ordinals).
    poison_seed: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "poison_units",
                           tuple(int(u) for u in self.poison_units))

    def apply(self, index: int, seed: int, attempt: int) -> None:
        """Fire the fault scripted for this (unit, seed, attempt).

        Called by the worker chunk entry (and the serial execution
        path) immediately before the unit runs.  Returns normally when
        nothing is scripted; raises for poison; never returns for a
        kill; blocks for a hang.
        """
        if index in self.poison_units and (
                self.poison_seed is None or seed == self.poison_seed):
            raise HarnessPoisonError(
                f"harness plan {self.name!r}: poison unit {index} "
                f"(seed {seed}, attempt {attempt})")
        if attempt > 1 or multiprocessing.parent_process() is None:
            # Kill and hang are transient machine faults: first attempt
            # only, and only where dying is survivable (a pool worker).
            return
        if self.kill_unit is not None and index == self.kill_unit:
            os.kill(os.getpid(), signal.SIGKILL)
        if self.hang_unit is not None and index == self.hang_unit:
            time.sleep(self.hang_seconds)


#: Named plans, mirroring :data:`repro.faults.plan.FAULT_PLANS`.  The
#: ordinals target small smoke grids (a dozen units); larger grids can
#: construct plans directly.
HARNESS_PLANS: Dict[str, HarnessFaultPlan] = {
    "worker-kill": HarnessFaultPlan(name="worker-kill", kill_unit=3),
    "hung-cell": HarnessFaultPlan(name="hung-cell", hang_unit=2),
    "poison-cell": HarnessFaultPlan(name="poison-cell",
                                    poison_units=(5,), poison_seed=1),
}


def resolve_harness_plan(
        plan: Union[None, str, HarnessFaultPlan]
) -> Optional[HarnessFaultPlan]:
    """None, a plan name, or a plan object → the plan (or None)."""
    if plan is None or isinstance(plan, HarnessFaultPlan):
        return plan
    try:
        return HARNESS_PLANS[plan]
    except KeyError:
        raise KeyError(
            f"unknown harness fault plan {plan!r} (choose from: "
            f"{', '.join(sorted(HARNESS_PLANS))})") from None
