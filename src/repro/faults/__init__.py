"""repro.faults: deterministic fault injection and recovery logging.

Three layers of adversity for the simulated testbed, all seeded and
reproducible:

* :mod:`~repro.faults.injector` — link faults (Gilbert–Elliott bursty
  loss, bounded reordering, duplication, payload corruption);
* :mod:`~repro.faults.server` — misbehaving-server profiles (503s,
  mid-response aborts, stalls, close-after-one-response);
* :mod:`~repro.faults.plan` — named plans combining both, swept by the
  ``python -m repro chaos`` verb (:mod:`~repro.faults.chaos`, imported
  only by the CLI to keep this package free of runner dependencies);
* :mod:`~repro.faults.harness` — machine faults against the experiment
  harness itself (worker kills, hung cells, poison cells), consumed by
  the matrix supervisor and the chaos smokes.

:mod:`~repro.faults.recovery` holds the shared :class:`RecoveryLog`
that every layer writes fault hits and recovery actions into.
"""

from .harness import (HARNESS_PLANS, HarnessFaultPlan,
                      HarnessPoisonError, resolve_harness_plan)
from .injector import FaultInjector, LinkFaultConfig
from .plan import FAULT_PLANS, FaultPlan, resolve_fault_plan
from .recovery import RecoveryEvent, RecoveryLog
from .server import FaultyProfile, ServerFaultConfig

__all__ = [
    "FaultInjector",
    "LinkFaultConfig",
    "FaultPlan",
    "FAULT_PLANS",
    "resolve_fault_plan",
    "HarnessFaultPlan",
    "HarnessPoisonError",
    "HARNESS_PLANS",
    "resolve_harness_plan",
    "RecoveryEvent",
    "RecoveryLog",
    "FaultyProfile",
    "ServerFaultConfig",
]
