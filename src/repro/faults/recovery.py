"""Structured record of fault hits and recovery actions.

Every layer that injects or survives a fault — the link-level
:class:`~repro.faults.injector.FaultInjector`, the faulty server
profiles, and the hardened robot — notes what happened into one shared
:class:`RecoveryLog`.  The log rides on ``FetchResult.recovery`` and
``TraceSummary.recovery`` so tests and the chaos sweep can assert not
just *that* a run completed but *how* it recovered.

The event list is bounded (a pathological run could log thousands of
drops); the per-kind counters are exact regardless.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

__all__ = ["RecoveryEvent", "RecoveryLog"]

#: Events kept verbatim; counts stay exact past this.
MAX_EVENTS = 256


@dataclasses.dataclass(frozen=True)
class RecoveryEvent:
    """One fault hit or recovery action."""

    time: float
    #: Which layer logged it: "link", "server", or "client".
    source: str
    #: Short machine-readable kind, e.g. "loss", "corrupt", "retry",
    #: "watchdog", "downgrade", "503".
    kind: str
    detail: str = ""


class RecoveryLog:
    """Append-only log of :class:`RecoveryEvent` with per-kind counts."""

    __slots__ = ("events", "counts", "truncated")

    def __init__(self) -> None:
        self.events: List[RecoveryEvent] = []
        #: Exact counts keyed ``"source.kind"``.
        self.counts: Dict[str, int] = {}
        self.truncated = False

    def note(self, time: float, source: str, kind: str,
             detail: str = "") -> None:
        key = f"{source}.{kind}"
        self.counts[key] = self.counts.get(key, 0) + 1
        if len(self.events) < MAX_EVENTS:
            self.events.append(RecoveryEvent(time, source, kind, detail))
        else:
            self.truncated = True

    @property
    def total(self) -> int:
        """Total events noted (including any past the event cap)."""
        return sum(self.counts.values())

    def count(self, source: str, kind: str) -> int:
        return self.counts.get(f"{source}.{kind}", 0)

    def summary(self) -> str:
        """One-line ``source.kind=N`` summary, sorted for determinism."""
        if not self.counts:
            return "clean"
        return " ".join(f"{key}={n}"
                        for key, n in sorted(self.counts.items()))

    def __len__(self) -> int:
        return self.total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RecoveryLog {self.summary()}>"
