"""The ``python -m repro chaos`` verb: sweep a seeded fault grid.

The grid is every registered fault plan × {pipelined, persistent,
HTTP/1.0, MUX, MUX+push, sharded} × {WAN, PPP} against Apache on a
first-time fetch — 48 cells by default.  Every cell must complete: the run verifier checks that all
43 Microscape resources arrive with status 200 and byte-identical
bodies, within the robot's retry budget.  The grid is deterministic in
``--seed``, so a failing cell reproduces from its coordinates alone;
``--only plan:mode:env`` reruns exactly one cell.

LAN is excluded on purpose: its sub-millisecond RTT makes stall/abort
timings trivial, and the paper's robustness lessons are about slow
paths.  Seeds are derived per-cell (stable hash of the coordinates plus
the base seed) so no two cells share a fault schedule.

``--journal`` records each completed cell's printed row into a
crash-safe :class:`~repro.matrix.journal.RunJournal` (keyed by a
stable hash of the cell coordinates, seed and package version);
``--resume RUN_ID`` replays recorded rows verbatim and simulates only
the missing cells.  Failed cells are never journaled, so a resume
always re-attempts them.
"""

from __future__ import annotations

import argparse
import hashlib
import sys
import zlib
from typing import List, Optional, Tuple

from .. import __version__
from ..core.runner import ExperimentError, run_experiment
from .plan import FAULT_PLANS

__all__ = ["chaos_cells", "run_chaos", "add_chaos_parser"]

#: Protocol modes and environments swept by the grid.  The post-paper
#: transports (MUX, MUX+push, sharded) are in the grid so every fault
#: plan also exercises frame recovery, push cancellation under loss,
#: and multi-origin re-dials.
CHAOS_MODES: Tuple[str, ...] = ("pipelined", "http/1.1", "http/1.0",
                                "mux", "mux-push", "sharded")
CHAOS_ENVIRONMENTS: Tuple[str, ...] = ("WAN", "PPP")
CHAOS_SERVER = "Apache"
CHAOS_SCENARIO = "first-time"


def chaos_cells() -> List[Tuple[str, str, str]]:
    """The (plan, mode, environment) grid, in stable order."""
    return [(plan, mode, environment)
            for plan in sorted(FAULT_PLANS)
            for mode in CHAOS_MODES
            for environment in CHAOS_ENVIRONMENTS]


def _cell_seed(base_seed: int, plan: str, mode: str,
               environment: str) -> int:
    """A stable per-cell seed (so no two cells share fault draws)."""
    tag = f"{plan}:{mode}:{environment}".encode("ascii")
    return base_seed + zlib.crc32(tag) % 100_000


def _chaos_cell_key(seed: int, plan: str, mode: str,
                    environment: str) -> str:
    """Stable journal key for one chaos cell (versioned, seed-bound)."""
    tag = f"{__version__}:chaos:{seed}:{plan}:{mode}:{environment}"
    return hashlib.sha256(tag.encode("utf-8")).hexdigest()


def run_chaos(seed: int = 1997, only: Optional[str] = None,
              out=None, journal=None) -> int:
    """Run the chaos grid; returns a process exit status.

    ``journal`` (a :class:`~repro.matrix.journal.RunJournal`) makes the
    sweep resumable at cell granularity: completed cells store their
    printed row and are replayed verbatim on the next run.
    """
    if out is None:
        out = sys.stdout
    journal_records = {}
    if journal is not None:
        journal.begin()
        journal_records = journal.load()
    cells = chaos_cells()
    if only is not None:
        try:
            plan, mode, environment = only.split(":")
        except ValueError:
            print(f"--only wants PLAN:MODE:ENV, got {only!r}",
                  file=sys.stderr)
            return 2
        cells = [(p, m, e) for p, m, e in cells
                 if p == plan and m.lower() == mode.lower()
                 and e.upper() == environment.upper()]
        if not cells:
            print(f"no chaos cell matches {only!r}", file=sys.stderr)
            return 2
    header = (f"{'plan':15s} {'mode':20s} {'env':4s} {'elapsed':>8s} "
              f"{'retries':>7s} {'retx':>5s} {'drops':>6s} recovery")
    print(header, file=out)
    print("-" * len(header), file=out)
    failures = 0
    replayed = 0
    for plan, mode, environment in cells:
        cell_key = _chaos_cell_key(seed, plan, mode, environment)
        record = journal_records.get(cell_key)
        if record is not None and record.get("status") == "ok" \
                and isinstance(record.get("row"), str):
            print(record["row"], file=out)
            replayed += 1
            continue
        cell_seed = _cell_seed(seed, plan, mode, environment)
        try:
            result = run_experiment(
                mode, CHAOS_SCENARIO, environment=environment,
                profile=CHAOS_SERVER, seed=cell_seed, faults=plan)
        except ExperimentError as exc:
            failures += 1
            print(f"{plan:15s} {mode:20s} {environment:4s} "
                  f"{'FAILED':>8s}  {exc}", file=out)
            print(f"  reproduce: python -m repro chaos --seed {seed} "
                  f"--only {plan}:{mode}:{environment}", file=out)
            continue
        trace = result.trace
        drops = trace.dropped_loss + trace.dropped_overflow
        recovery = trace.recovery.summary() if trace.recovery else "clean"
        row = (f"{plan:15s} {mode:20s} {environment:4s} "
               f"{result.elapsed:8.2f} {result.retries:7d} "
               f"{trace.retransmissions:5d} {drops:6d} {recovery}")
        print(row, file=out)
        if journal is not None:
            journal.record(cell_key, {"status": "ok", "row": row})
    if replayed:
        print(f"({replayed} cells replayed from journal "
              f"{journal.run_id})", file=sys.stderr)
    total = len(cells)
    if failures:
        print(f"\n{failures}/{total} cells FAILED (seed {seed})",
              file=out)
        return 1
    print(f"\nall {total} cells recovered every resource byte-identical "
          f"(seed {seed})", file=out)
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    journal = None
    if args.resume or args.journal:
        from ..matrix.journal import RunJournal
        journal = RunJournal(args.resume or f"chaos-{args.seed}")
        print(f"journal: {journal.run_id}", file=sys.stderr)
    return run_chaos(seed=args.seed, only=args.only, journal=journal)


def add_chaos_parser(sub) -> None:
    """Register the ``chaos`` subcommand on an argparse subparsers."""
    chaos = sub.add_parser(
        "chaos",
        help="sweep the fault-injection grid (plans x modes x envs)")
    chaos.add_argument("--seed", type=int, default=1997,
                       help="base seed for the deterministic fault grid")
    chaos.add_argument("--only", default=None, metavar="PLAN:MODE:ENV",
                       help="run a single cell, e.g. "
                            "bursty-loss:pipelined:WAN")
    chaos.add_argument("--journal", action="store_true",
                       help="record completed cells into a crash-safe "
                            "run journal (.repro-cache/runs/chaos-SEED)")
    chaos.add_argument("--resume", default=None, metavar="RUN_ID",
                       help="resume a journaled sweep: replay recorded "
                            "cells verbatim, run only the rest")
    chaos.set_defaults(fn=_cmd_chaos)
