"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``table N``
    Reproduce one of the paper's tables (3–11) and print it next to the
    published numbers.
``run``
    Run a single experiment cell with explicit mode / scenario /
    environment / server.
``modem``
    The §8.2.1 modem-compression comparison.
``content``
    The CSS1 / PNG / MNG / deflate content experiments.
``site``
    Print the synthetic Microscape site inventory.
``report``
    Regenerate the full paper-vs-measured report (EXPERIMENTS.md body).
``bench``
    Time one representative cell per (mode, environment) pair and write
    ``BENCH_simnet.json`` (see DESIGN.md, "Engine internals and
    performance").
``fleet``
    Population-scale runs: cohorts of robot sessions contending for a
    shared bottleneck and a finite-capacity server, with nearest-rank
    tail percentiles, Jain fairness and server-queueing stats
    (byte-identical across ``--jobs`` counts and ``--resume``).
``chaos``
    Sweep the deterministic fault-injection grid (fault plans × modes ×
    environments) and assert every run still retrieves the full site
    byte-identical within the retry budget.
``lint``
    Run the determinism linter over the source tree and (with
    ``--sanitize-traces``) replay captured traces through the TCP
    protocol sanitizer.

``table``, ``modem`` and ``report`` accept ``--jobs N`` (parallel
worker processes), ``--cache`` (reuse results from ``.repro-cache/``)
and ``--cache-dir PATH``; these plus ``run`` and ``bench`` accept
``--no-artifact-cache`` (disable the content-addressed encode memo
under ``.repro-cache/artifacts/``).  ``bench --matrix`` times a
24-cell grid cold vs. warm through the persistent worker pool;
``bench --fleet`` times the 1000-user population workload.

Supervised execution (``table`` / ``modem`` / ``report``):
``--retry-budget N`` caps per-unit re-dispatches after a failure,
``--unit-deadline S`` bounds a unit's wall-clock time in a worker, and
``--journal`` records every resolved unit into a crash-safe run
journal under ``.repro-cache/runs/``; ``--resume RUN_ID`` replays a
recorded run's units byte-identically and simulates only what is
missing (``chaos`` supports journaling too, at cell granularity).

All name resolution goes through the same
:mod:`repro.core.registry` the library API uses, so every spelling
accepted here ("pipelined", "1.1", "ppp", "jigsaw") works in code too.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import (generate_experiments_report,
                       reproduce_browser_table,
                       reproduce_content_experiments,
                       reproduce_modem_experiment,
                       reproduce_protocol_table, reproduce_table3)
from .core import TABLE_CELLS, UnknownNameError, run_experiment
from .matrix import (DEFAULT_RETRY_BUDGET, CellEvent, MatrixRunner,
                     ResultCache)


def _print_progress(event: CellEvent) -> None:
    if event.status == "hit":
        tag = "cache"
    elif event.status == "failed":
        tag = f"FAIL attempt {event.attempt}"
    elif event.status == "retried":
        tag = f"retry attempt {event.attempt}"
    else:
        tag = f"{event.wall_time:5.2f}s"
    print(f"  [{event.completed}/{event.total}] {event.label} "
          f"seed={event.seed} ({tag})", file=sys.stderr)


#: Flags that do not change *what* is computed, excluded from derived
#: journal run ids so re-invocations with different machinery (jobs,
#: progress, cache toggles) resume the same journal.
_RUN_ID_SKIP = frozenset((
    "fn", "command", "journal", "resume", "progress", "jobs", "cache",
    "cache_dir", "no_artifact_cache", "retry_budget", "unit_deadline"))


def _journal_run_id(args: argparse.Namespace) -> str:
    """Derive a stable run id from the verb and its workload flags."""
    import hashlib
    import json
    workload = {key: value for key, value in sorted(vars(args).items())
                if key not in _RUN_ID_SKIP}
    digest = hashlib.sha256(json.dumps(
        workload, sort_keys=True, default=str).encode("utf-8"))
    return f"{args.command}-{digest.hexdigest()[:10]}"


def _make_runner(args: argparse.Namespace) -> MatrixRunner:
    """Build the MatrixRunner the parallel/cache/robustness flags ask."""
    cache = None
    if getattr(args, "cache", False) or args.cache_dir is not None:
        cache = ResultCache(args.cache_dir) if args.cache_dir \
            else ResultCache()
    progress = _print_progress if getattr(args, "progress", False) \
        else None
    journal = None
    resume = getattr(args, "resume", None)
    if resume or getattr(args, "journal", False):
        from .matrix import RunJournal
        journal = RunJournal(resume or _journal_run_id(args))
        print(f"journal: {journal.run_id}", file=sys.stderr)
    return MatrixRunner(
        jobs=args.jobs, cache=cache, progress=progress, journal=journal,
        retry_budget=getattr(args, "retry_budget",
                             DEFAULT_RETRY_BUDGET),
        unit_deadline=getattr(args, "unit_deadline", None))


def _add_matrix_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (0 = one per CPU)")
    parser.add_argument("--cache", action="store_true",
                        help="reuse cached results (.repro-cache/)")
    parser.add_argument("--cache-dir", default=None, metavar="PATH",
                        help="cache directory (implies --cache)")
    parser.add_argument("--progress", action="store_true",
                        help="print per-cell progress to stderr")
    parser.add_argument("--retry-budget", type=int,
                        default=DEFAULT_RETRY_BUDGET, metavar="N",
                        help="parallel re-dispatches allowed per "
                             "failing unit before downgrade/quarantine "
                             f"(default {DEFAULT_RETRY_BUDGET})")
    parser.add_argument("--unit-deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock budget per unit in a worker "
                             "(default: derived from the cell's "
                             "max_sim_time)")
    parser.add_argument("--journal", action="store_true",
                        help="record resolved units into a crash-safe "
                             "run journal (.repro-cache/runs/)")
    parser.add_argument("--resume", default=None, metavar="RUN_ID",
                        help="resume a journaled run: replay recorded "
                             "units byte-identically, simulate only "
                             "the rest (implies --journal)")
    _add_artifact_flag(parser)


def _add_artifact_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--no-artifact-cache", action="store_true",
                        help="disable the content-addressed artifact "
                             "store (.repro-cache/artifacts/); every "
                             "site build re-encodes from scratch")


def _cmd_table(args: argparse.Namespace) -> int:
    number = args.number
    runner = _make_runner(args)
    if number == 3:
        _, text = reproduce_table3(runs=args.runs, runner=runner)
    elif number in TABLE_CELLS:
        server, environment = TABLE_CELLS[number]
        _, text = reproduce_protocol_table(server, environment,
                                           runs=args.runs, runner=runner)
    elif number in (10, 11):
        server = "Jigsaw" if number == 10 else "Apache"
        _, text = reproduce_browser_table(server, runs=args.runs,
                                          runner=runner)
    else:
        print(f"no table {number} in the paper (use 3-11)",
              file=sys.stderr)
        return 2
    print(text)
    print(runner.stats.summary(), file=sys.stderr)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        result = run_experiment(args.mode, args.scenario,
                                environment=args.environment,
                                profile=args.server, seed=args.seed,
                                sanitize=args.sanitize,
                                fastpath=not args.no_fastpath)
    except UnknownNameError as exc:
        print(exc, file=sys.stderr)
        return 2
    from .core import resolve_environment, resolve_mode, resolve_profile
    print(f"mode:        {resolve_mode(args.mode).name}")
    print(f"scenario:    {args.scenario}")
    print(f"environment: {resolve_environment(args.environment).name}")
    print(f"server:      {resolve_profile(args.server).name}")
    print(f"packets:     {result.packets} "
          f"({result.packets_client_to_server} c->s, "
          f"{result.packets_server_to_client} s->c)")
    print(f"bytes:       {result.payload_bytes}")
    print(f"elapsed:     {result.elapsed:.3f} s")
    print(f"overhead:    {result.percent_overhead:.1f} %")
    print(f"connections: {result.connections_used} "
          f"(max {result.max_parallel_connections} parallel)")
    return 0


def _cmd_modem(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    _, text = reproduce_modem_experiment(runs=args.runs, runner=runner)
    print(text)
    print(runner.stats.summary(), file=sys.stderr)
    return 0


def _cmd_content(_args: argparse.Namespace) -> int:
    _, text = reproduce_content_experiments()
    print(text)
    return 0


def _cmd_site(_args: argparse.Namespace) -> int:
    from .content import build_microscape_site
    site = build_microscape_site()
    print(f"{'url':30s} {'type':10s} {'bytes':>7s} role")
    print(f"{site.html_url:30s} {'text/html':10s} "
          f"{site.html.size:7d} -")
    for obj in site.image_objects:
        print(f"{obj.url:30s} {'image/gif':10s} {obj.size:7d} "
              f"{obj.role.value}")
    print(f"{'TOTAL':30s} {'':10s} "
          f"{site.html.size + site.total_image_bytes:7d}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .perf import (run_benchmark, run_fastpath_benchmark,
                       run_fleet_benchmark, run_matrix_benchmark,
                       validate_bench_payload)
    if args.fleet:
        payload = run_fleet_benchmark(args.output, jobs=args.jobs)
        problems = validate_bench_payload(payload)
        if problems:
            for problem in problems:
                print(f"bench schema problem: {problem}", file=sys.stderr)
            return 1
        fleet = payload["fleet"]
        print(f"wrote {args.output}: fleet {fleet['users']} users in "
              f"{fleet['wall_time']:.1f} s "
              f"({fleet['users_per_minute']:.0f} users/min, "
              f"p99 {fleet['p99']:.2f} s, "
              f"{fleet['pages_completed']} pages)")
        return 0
    if args.fastpath:
        payload = run_fastpath_benchmark(
            args.output, repeats=args.repeats or 3)
        problems = validate_bench_payload(payload)
        if problems:
            for problem in problems:
                print(f"bench schema problem: {problem}", file=sys.stderr)
            return 1
        cells = payload["fastpath"]["cells"]
        speedups = sorted(entry["speedup_fastpath"]
                          for entry in cells.values())
        print(f"wrote {args.output}: {len(cells)} fast-path cells, "
              f"speedup {speedups[0]:.2f}x..{speedups[-1]:.2f}x, "
              f"traces byte-identical")
        return 0
    if args.matrix:
        payload = run_matrix_benchmark(args.output, jobs=args.jobs)
        problems = validate_bench_payload(payload)
        if problems:
            for problem in problems:
                print(f"bench schema problem: {problem}", file=sys.stderr)
            return 1
        matrix = payload["matrix"]
        print(f"wrote {args.output}: {matrix['cells']}-cell matrix, "
              f"cold {matrix['cold_wall_time']:.2f} s, warm "
              f"{matrix['warm_wall_time']:.2f} s "
              f"({matrix['speedup_warm_vs_cold']:.2f}x)")
        return 0
    payload = run_benchmark(args.output, quick=args.quick,
                            repeats=args.repeats)
    problems = validate_bench_payload(payload)
    if problems:
        for problem in problems:
            print(f"bench schema problem: {problem}", file=sys.stderr)
        return 1
    cells = payload["current"]["cells"]
    speedups = [entry["speedup_vs_baseline"] for entry in cells.values()
                if "speedup_vs_baseline" in entry]
    if speedups:
        print(f"wrote {args.output}: {len(cells)} cells, speedup vs "
              f"baseline {min(speedups):.2f}x..{max(speedups):.2f}x")
    else:
        print(f"wrote {args.output}: {len(cells)} cells "
              f"(baseline recorded)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    print(generate_experiments_report(runs=args.runs,
                                      browser_runs=min(args.runs, 3),
                                      runner=runner))
    print(runner.stats.summary(), file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Network Performance Effects of "
                    "HTTP/1.1, CSS1, and PNG' (SIGCOMM '97)")
    sub = parser.add_subparsers(dest="command", required=True)

    table = sub.add_parser("table", help="reproduce a paper table (3-11)")
    table.add_argument("number", type=int)
    table.add_argument("--runs", type=int, default=3)
    _add_matrix_flags(table)
    table.set_defaults(fn=_cmd_table)

    run = sub.add_parser("run", help="run one experiment cell")
    run.add_argument("--mode", default="pipelined",
                     help="http/1.0 | http/1.1 | pipelined | compressed "
                          "| mux | mux-push | sharded (any registered "
                          "mode name or alias)")
    run.add_argument("--scenario", choices=("first-time", "revalidate"),
                     default="first-time")
    run.add_argument("--environment", choices=("LAN", "WAN", "PPP",
                                               "lan", "wan", "ppp"),
                     default="LAN")
    run.add_argument("--server", choices=("jigsaw", "apache"),
                     default="apache")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--no-fastpath", action="store_true",
                     help="disable the flow-level fast-forward driver "
                          "and execute every segment event-by-event "
                          "(byte-identical; useful to verify the fast "
                          "path or isolate it when debugging)")
    run.add_argument("--sanitize", action="store_true",
                     help="validate the run live against the TCP "
                          "invariants and the mode's trace rules "
                          "(frame legality for MUX modes)")
    _add_artifact_flag(run)
    run.set_defaults(fn=_cmd_run)

    modem = sub.add_parser("modem", help="the 8.2.1 modem experiment")
    modem.add_argument("--runs", type=int, default=3)
    _add_matrix_flags(modem)
    modem.set_defaults(fn=_cmd_modem)

    content = sub.add_parser("content",
                             help="CSS/PNG/MNG/deflate experiments")
    content.set_defaults(fn=_cmd_content)

    site = sub.add_parser("site", help="print the Microscape inventory")
    site.set_defaults(fn=_cmd_site)

    bench = sub.add_parser("bench",
                           help="time representative cells, write "
                                "BENCH_simnet.json")
    bench.add_argument("--quick", action="store_true",
                       help="one repetition per cell (CI smoke mode)")
    bench.add_argument("--repeats", type=int, default=None, metavar="N",
                       help="repetitions per cell (default 3, best kept)")
    bench.add_argument("--output", default="BENCH_simnet.json",
                       metavar="PATH", help="output JSON path")
    bench.add_argument("--matrix", action="store_true",
                       help="time a 24-cell grid cold vs. warm "
                            "(artifact store + worker pool) and record "
                            "it under the file's 'matrix' key")
    bench.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="worker processes for --matrix "
                            "(default: one per CPU)")
    bench.add_argument("--fleet", action="store_true",
                       help="time the population-scale fleet workload "
                            "(1000 WAN users) and record it under the "
                            "file's 'fleet' key")
    bench.add_argument("--fastpath", action="store_true",
                       help="time bulk transfers with the fast-forward "
                            "driver on vs. off (verifies byte-identical "
                            "traces) and record the cells under the "
                            "file's 'fastpath' key")
    _add_artifact_flag(bench)
    bench.set_defaults(fn=_cmd_bench)

    report = sub.add_parser("report",
                            help="full paper-vs-measured report")
    report.add_argument("--runs", type=int, default=5)
    _add_matrix_flags(report)
    report.set_defaults(fn=_cmd_report)

    from .fleet.cli import add_fleet_parser
    add_fleet_parser(sub)

    from .faults.chaos import add_chaos_parser
    add_chaos_parser(sub)

    from .lint.cli import add_lint_parser
    add_lint_parser(sub)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "no_artifact_cache", False):
        from .content import artifacts
        artifacts.configure(enabled=False)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
