"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``table N``
    Reproduce one of the paper's tables (3–11) and print it next to the
    published numbers.
``run``
    Run a single experiment cell with explicit mode / scenario /
    environment / server.
``modem``
    The §8.2.1 modem-compression comparison.
``content``
    The CSS1 / PNG / MNG / deflate content experiments.
``site``
    Print the synthetic Microscape site inventory.
``report``
    Regenerate the full paper-vs-measured report (EXPERIMENTS.md body).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import (generate_experiments_report,
                       reproduce_browser_table,
                       reproduce_content_experiments,
                       reproduce_modem_experiment,
                       reproduce_protocol_table, reproduce_table3)
from .core import (ALL_MODES, FIRST_TIME, REVALIDATE, run_experiment)
from .server import APACHE, JIGSAW
from .simnet import ENVIRONMENTS

_TABLES = {
    4: ("Jigsaw", "LAN"), 5: ("Apache", "LAN"),
    6: ("Jigsaw", "WAN"), 7: ("Apache", "WAN"),
    8: ("Jigsaw", "PPP"), 9: ("Apache", "PPP"),
}

_MODES = {mode.name: mode for mode in ALL_MODES}
_MODE_ALIASES = {
    "http/1.0": "HTTP/1.0",
    "http/1.1": "HTTP/1.1",
    "pipelined": "HTTP/1.1 Pipelined",
    "compressed": "HTTP/1.1 Pipelined w. compression",
}


def _cmd_table(args: argparse.Namespace) -> int:
    number = args.number
    if number == 3:
        _, text = reproduce_table3(runs=args.runs)
    elif number in _TABLES:
        server, environment = _TABLES[number]
        _, text = reproduce_protocol_table(server, environment,
                                           runs=args.runs)
    elif number in (10, 11):
        server = "Jigsaw" if number == 10 else "Apache"
        _, text = reproduce_browser_table(server, runs=args.runs)
    else:
        print(f"no table {number} in the paper (use 3-11)",
              file=sys.stderr)
        return 2
    print(text)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    mode_key = _MODE_ALIASES.get(args.mode.lower(), args.mode)
    if mode_key not in _MODES:
        choices = ", ".join(sorted(_MODE_ALIASES))
        print(f"unknown mode {args.mode!r} (choose from: {choices})",
              file=sys.stderr)
        return 2
    environment = ENVIRONMENTS[args.environment.upper()]
    profile = JIGSAW if args.server.lower() == "jigsaw" else APACHE
    scenario = REVALIDATE if args.scenario == "revalidate" else FIRST_TIME
    result = run_experiment(_MODES[mode_key], scenario, environment,
                            profile, seed=args.seed)
    print(f"mode:        {mode_key}")
    print(f"scenario:    {scenario}")
    print(f"environment: {environment.name}")
    print(f"server:      {profile.name}")
    print(f"packets:     {result.packets} "
          f"({result.packets_client_to_server} c->s, "
          f"{result.packets_server_to_client} s->c)")
    print(f"bytes:       {result.payload_bytes}")
    print(f"elapsed:     {result.elapsed:.3f} s")
    print(f"overhead:    {result.percent_overhead:.1f} %")
    print(f"connections: {result.connections_used} "
          f"(max {result.max_parallel_connections} parallel)")
    return 0


def _cmd_modem(args: argparse.Namespace) -> int:
    _, text = reproduce_modem_experiment(runs=args.runs)
    print(text)
    return 0


def _cmd_content(_args: argparse.Namespace) -> int:
    _, text = reproduce_content_experiments()
    print(text)
    return 0


def _cmd_site(_args: argparse.Namespace) -> int:
    from .content import build_microscape_site
    site = build_microscape_site()
    print(f"{'url':30s} {'type':10s} {'bytes':>7s} role")
    print(f"{site.html_url:30s} {'text/html':10s} "
          f"{site.html.size:7d} -")
    for obj in site.image_objects:
        print(f"{obj.url:30s} {'image/gif':10s} {obj.size:7d} "
              f"{obj.role.value}")
    print(f"{'TOTAL':30s} {'':10s} "
          f"{site.html.size + site.total_image_bytes:7d}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    print(generate_experiments_report(runs=args.runs,
                                      browser_runs=min(args.runs, 3)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Network Performance Effects of "
                    "HTTP/1.1, CSS1, and PNG' (SIGCOMM '97)")
    sub = parser.add_subparsers(dest="command", required=True)

    table = sub.add_parser("table", help="reproduce a paper table (3-11)")
    table.add_argument("number", type=int)
    table.add_argument("--runs", type=int, default=3)
    table.set_defaults(fn=_cmd_table)

    run = sub.add_parser("run", help="run one experiment cell")
    run.add_argument("--mode", default="pipelined",
                     help="http/1.0 | http/1.1 | pipelined | compressed")
    run.add_argument("--scenario", choices=("first-time", "revalidate"),
                     default="first-time")
    run.add_argument("--environment", choices=("LAN", "WAN", "PPP",
                                               "lan", "wan", "ppp"),
                     default="LAN")
    run.add_argument("--server", choices=("jigsaw", "apache"),
                     default="apache")
    run.add_argument("--seed", type=int, default=0)
    run.set_defaults(fn=_cmd_run)

    modem = sub.add_parser("modem", help="the 8.2.1 modem experiment")
    modem.add_argument("--runs", type=int, default=3)
    modem.set_defaults(fn=_cmd_modem)

    content = sub.add_parser("content",
                             help="CSS/PNG/MNG/deflate experiments")
    content.set_defaults(fn=_cmd_content)

    site = sub.add_parser("site", help="print the Microscape inventory")
    site.set_defaults(fn=_cmd_site)

    report = sub.add_parser("report",
                            help="full paper-vs-measured report")
    report.add_argument("--runs", type=int, default=5)
    report.set_defaults(fn=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
