"""Client-side output buffering with the paper's flush policies.

The paper's "Buffer Tuning" section describes three mechanisms that get
pipelined requests onto the wire:

1. **size flush** — the buffer is flushed when it reaches a threshold;
   "we experimented with the output buffer size and found that 1024
   bytes is a good compromise" (two 512-byte segments, or most of one
   Ethernet segment),
2. **timer flush** — a timeout forces the buffer out; the initial runs
   used 1 second, the final runs 50 ms,
3. **explicit flush** — "the application (the robot) has much more
   knowledge about the requests than libwww, and by introducing an
   explicit flush mechanism in the application, we could get
   significantly better performance."

:class:`OutputBuffer` implements all three and counts which trigger
fired, so the flush-policy ablation can show their relative value.
"""

from __future__ import annotations

from typing import Optional

from ..simnet.engine import Event, Simulator
from ..simnet.tcp import TcpConnection

__all__ = ["FlowWindow", "OutputBuffer"]


class FlowWindow:
    """Per-stream flow-control credit for the MUX transports.

    Symmetric bookkeeping shared by the MUX client and server: the
    receiver grants credit (``grant``), the sender spends it on DATA
    payload bytes (``spend``).  A receiver that sees its own credit go
    negative has caught the peer overrunning the window.
    """

    __slots__ = ("credit",)

    def __init__(self, initial: int) -> None:
        self.credit = initial

    def sendable(self, want: int) -> int:
        """Bytes of ``want`` the current credit allows."""
        return min(want, self.credit) if self.credit > 0 else 0

    def spend(self, amount: int) -> None:
        self.credit -= amount

    def grant(self, amount: int) -> None:
        self.credit += amount

    @property
    def overrun(self) -> bool:
        return self.credit < 0


class OutputBuffer:
    """Buffers writes to a TCP connection, flushing by size or timer.

    Parameters
    ----------
    sim, conn:
        Simulator (for the timer) and the connection written to.
    size:
        Flush once this many bytes accumulate (0 disables size flushes).
    flush_timeout:
        Flush this many seconds after the first unflushed write
        (None disables the timer — then only size/explicit flushes run,
        which is how implementations stall if they forget to flush).
    """

    def __init__(self, sim: Simulator, conn: TcpConnection, *,
                 size: int = 1024,
                 flush_timeout: Optional[float] = 0.05) -> None:
        self.sim = sim
        self.conn = conn
        self.size = size
        self.flush_timeout = flush_timeout
        self._buffer = bytearray()
        self._timer: Optional[Event] = None
        #: Flush counters by trigger, for the ablation benchmarks.
        self.size_flushes = 0
        self.timer_flushes = 0
        self.explicit_flushes = 0
        self.bytes_written = 0

    def write(self, data: bytes) -> None:
        """Append ``data``; flush if the size threshold is reached."""
        self._buffer.extend(data)
        self.bytes_written += len(data)
        if self.size and len(self._buffer) >= self.size:
            self.size_flushes += 1
            self._flush_now()
        elif self._buffer and self._timer is None \
                and self.flush_timeout is not None:
            self._timer = self.sim.schedule(self.flush_timeout,
                                            self._timer_fire)

    def flush(self) -> None:
        """Explicit flush: the application knows the batch is complete."""
        if self._buffer:
            self.explicit_flushes += 1
        self._flush_now()

    @property
    def pending(self) -> int:
        """Bytes buffered but not yet written to TCP."""
        return len(self._buffer)

    def _timer_fire(self) -> None:
        self._timer = None
        if self._buffer:
            self.timer_flushes += 1
            self._flush_now()

    def _flush_now(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._buffer and self.conn.state != "CLOSED":
            self.conn.send(bytes(self._buffer))
        self._buffer.clear()
