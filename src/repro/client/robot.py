"""The libwww-robot-style web client.

One client, four personalities — exactly the configurations the paper
measures:

* **HTTP/1.0**: one TCP connection per request, up to four in parallel
  ("the same as Netscape Navigator's default"); cache revalidation via
  one plain GET (the HTML) plus HEAD requests on the images, matching
  the old libwww 4.1D behaviour the paper describes.
* **HTTP/1.1 persistent**: a single connection, requests strictly
  serialized — "the request / response sequence looks identical to
  HTTP/1.0 but all communication happens on the same TCP connection".
* **HTTP/1.1 pipelined**: requests buffered through
  :class:`~repro.client.pipeline.OutputBuffer` (1024-byte threshold,
  flush timer) with the paper's application-level explicit flush after
  the HTML request; full HTTP/1.1 cache validation with
  ``If-None-Match`` and entity tags.
* **HTTP/1.1 pipelined + deflate**: the HTML request advertises
  ``Accept-Encoding: deflate`` and the body is inflated on the fly,
  feeding the incremental HTML parser — so a compressed first segment
  carries ~3x the markup and discovers embedded images sooner, the
  paper's "Why Compression is Important" effect.

The robot parses HTML *incrementally*: every arriving body chunk is
scanned for new ``<img>`` URLs, and discovered images are requested
immediately (batched by the output buffer in pipelined mode).  It also
survives servers that close mid-pipeline (Apache 1.2b2's five-request
limit): unanswered requests are re-issued on a fresh connection.
"""

from __future__ import annotations

import dataclasses
import zlib
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..faults.recovery import RecoveryLog
from ..http import (HTTP10, HTTP11, Headers, MemoryCache, ParseError,
                    Request, Response, ResponseParser)
from .discovery import IncrementalImageScanner
from ..simnet.engine import Simulator
from ..simnet.tcp import TcpConnection, TcpStack
from .pipeline import OutputBuffer

__all__ = ["ClientConfig", "FetchResult", "Robot", "FIRST_TIME",
           "REVALIDATE", "TAIL_MARKER"]

FIRST_TIME = "first-time"
REVALIDATE = "revalidate"

#: Internal suffix distinguishing the tail fetch of a ranged image from
#: its prefix fetch (never appears on the wire).
TAIL_MARKER = "\x00tail"


@dataclasses.dataclass
class ClientConfig:
    """Behavioural knobs of the robot (see module docstring)."""

    http_version: Tuple[int, int] = HTTP11
    #: Maximum simultaneous TCP connections (4 = Navigator's default).
    max_connections: int = 1
    #: Pipeline requests on persistent connections.
    pipeline: bool = False
    #: Ask HTTP/1.0 servers to keep the connection open.
    keep_alive: bool = False
    #: Advertise ``Accept-Encoding: deflate`` on the HTML request.
    accept_deflate: bool = False
    #: Pipeline output buffer threshold ("1024 bytes is a good
    #: compromise") and flush timer (1 s initially, 50 ms in the final
    #: runs; None = no timer).
    output_buffer_size: int = 1024
    flush_timeout: Optional[float] = 0.05
    #: Flush explicitly after the HTML request / at end of a known batch.
    explicit_flush: bool = True
    #: Revalidation style: "conditional" (HTTP/1.1 Conditional GETs),
    #: "get-plus-head" (old libwww: GET the HTML, HEAD the images), or
    #: "conditional-or-head" (product-browser style: conditional GET
    #: when a usable validator is cached, HEAD for images otherwise).
    reval_strategy: str = "conditional"
    #: Prefer entity tags ("etag") or dates ("date") as validators.
    validator_preference: str = "etag"
    #: Fall back to the stored response ``Date`` when the server sent no
    #: ``Last-Modified`` (a Navigator heuristic; IE did not do this).
    allow_date_fallback: bool = False
    #: CPU seconds to process one response (serial client CPU).
    per_response_cpu: float = 0.002
    #: Disable Nagle on client connections (the paper's recommendation).
    nodelay: bool = True
    user_agent: str = "W3CRobot/5.1 libwww/5.1"
    #: Extra request headers (browser profiles are more verbose).
    extra_headers: Tuple[Tuple[str, str], ...] = ()
    #: Re-fetch the HTML unconditionally when revalidating (an observed
    #: product-browser behaviour; see repro.core.browsers).
    reval_refetch_html: bool = False
    #: Fetch embedded images discovered in the HTML.  False reproduces
    #: the paper's §8.2.1 modem test: "the HTML retrieval (a single
    #: HTTP GET request) only with no embedded objects".
    follow_images: bool = True
    #: "Poor man's multiplexing": request only the first N bytes of each
    #: image first (enough for its metadata/dimensions), then fetch the
    #: tails.  None disables ranged fetching.
    range_prefix_bytes: Optional[int] = None
    # -- Hardening knobs (fault tolerance; defaults chosen so a clean
    # -- run takes identical code paths and schedules no extra events).
    #: Total connection-retry budget for one fetch; exceeding it records
    #: a terminal error instead of re-queueing forever.
    retry_budget: int = 64
    #: Consecutive connection failures *without a single response*
    #: tolerated before giving up (a server that always closes before
    #: answering must not loop forever).
    max_consecutive_failures: int = 5
    #: Exponential backoff before re-dispatching after a zero-progress
    #: failure: ``base * 2**(failures-1)``, capped at ``max``.
    retry_backoff_base: float = 0.1
    retry_backoff_max: float = 5.0
    #: Abort a connection when no data has arrived for this many seconds
    #: while requests are outstanding (None = no watchdog).
    watchdog_timeout: Optional[float] = None
    #: Step down the downgrade ladder (pipelined → serialized →
    #: one-shot) after this many connections died with unanswered
    #: requests (None = never downgrade).
    downgrade_after: Optional[int] = None
    #: Times to re-issue a request answered with a 5xx before accepting
    #: the error response as final.
    retry_server_errors: int = 3
    # -- Sharding knobs (the HTTP/1.1 Sharded xN transport; 0 shards =
    # -- the classic single-origin dispatch, identical code paths).
    #: Number of simulated origins the content is hashed across; each
    #: origin listens on ``server_port + shard``.
    shards: int = 0
    #: Redundant persistent connections kept per shard.
    connections_per_shard: int = 2


@dataclasses.dataclass
class FetchResult:
    """Outcome of one page fetch."""

    responses: Dict[str, Response] = dataclasses.field(default_factory=dict)
    completed_at: Optional[float] = None
    started_at: float = 0.0
    connections_used: int = 0
    max_parallel_connections: int = 0
    retries: int = 0
    errors: List[str] = dataclasses.field(default_factory=list)
    request_bytes: int = 0
    requests_sent: int = 0
    #: Fault hits and recovery actions taken during the fetch (shared
    #: with the fault injector / server when one is active).
    recovery: RecoveryLog = dataclasses.field(default_factory=RecoveryLog)
    #: Set when the robot gave up (retry budget exhausted, repeated
    #: zero-progress failures); ``complete`` stays False.
    terminal_error: Optional[str] = None

    @property
    def elapsed(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.started_at

    @property
    def complete(self) -> bool:
        return self.completed_at is not None

    @property
    def mean_request_bytes(self) -> float:
        if not self.requests_sent:
            return 0.0
        return self.request_bytes / self.requests_sent


def _range_has_tail(response: Response) -> bool:
    """True when a 206's Content-Range shows bytes remain after it."""
    spec = response.headers.get("Content-Range", "")
    try:
        span, total_text = spec.split()[1].split("/")
        end = int(span.split("-")[1])
        return end < int(total_text) - 1
    except (IndexError, ValueError):
        return False


class _ConnState:
    """One client connection with its parser and output buffer."""

    def __init__(self, robot: "Robot",
                 shard: Optional[int] = None) -> None:
        self.robot = robot
        self.shard = shard
        port = robot.server_port + (shard or 0)
        self.conn: TcpConnection = robot.stack.connect(
            robot.server_host, port)
        self.conn.set_nodelay(robot.config.nodelay)
        self.parser = ResponseParser()
        self.parser.on_body_chunk = (
            lambda response, chunk:
            robot._on_body_chunk(self, response, chunk))
        self.buffer = OutputBuffer(
            robot.sim, self.conn, size=robot.config.output_buffer_size,
            flush_timeout=robot.config.flush_timeout)
        self.outstanding: Deque[str] = deque()
        self.popped = 0          # responses removed from outstanding
        self.open = True
        #: Watchdog: standing event chasing ``deadline`` (the lazy-timer
        #: pattern — progress just moves the attribute, the event
        #: re-schedules itself if it fires early).  None when the
        #: watchdog is disabled or idle.
        self.watchdog_event = None
        self.deadline = 0.0
        self.conn.on_data = self._on_data
        self.conn.on_eof = self._on_eof
        self.conn.on_reset = self._on_reset

    # ------------------------------------------------------------------
    def send_request(self, url: str, request: Request,
                     flush: bool) -> None:
        wire = request.to_bytes()
        self.parser.expect(request.method)
        self.outstanding.append(url)
        self.robot.result.request_bytes += len(wire)
        self.robot.result.requests_sent += 1
        self.buffer.write(wire)
        if flush:
            self.buffer.flush()
        self.robot._arm_watchdog(self)

    def cancel_watchdog(self) -> None:
        if self.watchdog_event is not None:
            self.watchdog_event.cancel()
            self.watchdog_event = None

    # ------------------------------------------------------------------
    def _on_data(self, _conn: TcpConnection, data: bytes) -> None:
        timeout = self.robot.config.watchdog_timeout
        if timeout is not None:
            self.deadline = self.robot.sim.now + timeout
        try:
            responses = self.parser.feed(data)
        except ParseError as exc:
            self.robot.result.errors.append(f"parse error: {exc}")
            self.conn.abort()
            self.open = False
            return
        for response in responses:
            url = self.outstanding.popleft()
            self.popped += 1
            self.robot._response_arrived(self, url, response)

    def _on_eof(self, _conn: TcpConnection) -> None:
        final = None
        try:
            final = self.parser.eof()
        except ParseError as exc:
            self.robot.result.errors.append(f"truncated response: {exc}")
        if final is not None and self.outstanding:
            url = self.outstanding.popleft()
            self.popped += 1
            self.robot._response_arrived(self, url, final)
        self.open = False
        if self.conn.state not in ("CLOSED",):
            self.conn.close()
        self.robot._connection_gone(self)

    def _on_reset(self, _conn: TcpConnection) -> None:
        self.open = False
        self.robot.result.errors.append(
            f"connection reset with {len(self.outstanding)} outstanding")
        self.robot._connection_gone(self)


class Robot:
    """Fetch a page and its embedded objects over the simulated network."""

    #: Connection-state class; the MUX client substitutes its own.
    _conn_class = _ConnState

    def __init__(self, sim: Simulator, stack: TcpStack, server_host: str,
                 server_port: int = 80,
                 config: Optional[ClientConfig] = None,
                 cache: Optional[MemoryCache] = None) -> None:
        self.sim = sim
        self.stack = stack
        self.server_host = server_host
        self.server_port = server_port
        self.config = config or ClientConfig()
        self.cache = cache if cache is not None else MemoryCache()
        self.result = FetchResult()
        self._conns: List[_ConnState] = []
        self._pending: Deque[str] = deque()
        #: Per-shard request queues (empty list when not sharding).
        self._shard_queues: List[Deque[str]] = [
            deque() for _ in range(self.config.shards)]
        self._expected: Dict[str, bool] = {}   # url -> handled?
        self._scenario = FIRST_TIME
        self._html_url: Optional[str] = None
        self._html_complete = False
        self._scanner = IncrementalImageScanner()
        self._inflater: Optional["zlib._Decompress"] = None
        self._cpu_free_at = 0.0
        self._started = False
        #: Consecutive zero-response connection failures, per origin
        #: (keyed by shard index; ``None`` = the single-origin modes).
        self._consecutive_failures: Dict[Optional[int], int] = {}
        #: Connections that died with unanswered requests (feeds the
        #: downgrade ladder) and the current ladder position: 0 = as
        #: configured, 1 = persistent-serialized, 2 = one-shot.
        self._pipeline_kills = 0
        self._downgrade_level = 0
        self._server_error_retries: Dict[str, int] = {}
        self.on_complete: Optional[Callable[[FetchResult], None]] = None
        #: Optional instrumentation hooks (used by repro.core.render):
        #: on_response(url, response) fires when a response is handled;
        #: on_body_progress(url, response, bytes_so_far, chunk) fires
        #: for every body chunk as it arrives off the wire.
        self.on_response: Optional[Callable[[str, Response], None]] = None
        self.on_body_progress: Optional[
            Callable[[str, Response, int, bytes], None]] = None
        self._body_progress: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def fetch(self, html_url: str, scenario: str = FIRST_TIME,
              known_urls: Optional[List[str]] = None) -> FetchResult:
        """Start fetching; run the simulator to make progress.

        ``known_urls`` (for :data:`REVALIDATE`) defaults to every URL in
        the cache, HTML first — the robot validates them all without
        waiting for the HTML body.
        """
        if self._started:
            raise RuntimeError("robot instances are single-use")
        self._started = True
        self._scenario = scenario
        self._html_url = html_url
        self.result.started_at = self.sim.now
        if scenario == REVALIDATE:
            urls = known_urls
            if urls is None:
                urls = [html_url] + [u for u in self.cache.urls()
                                     if u != html_url]
            for url in urls:
                self._expected[url] = False
                self._pending.append(url)
            self._html_complete = True
        else:
            self._expected[html_url] = False
            self._pending.append(html_url)
        self._dispatch()
        return self.result

    # ------------------------------------------------------------------
    # Request construction
    # ------------------------------------------------------------------
    def _build_request(self, url: str) -> Request:
        config = self.config
        tail_of: Optional[str] = None
        if url.endswith(TAIL_MARKER):
            tail_of = url[:-len(TAIL_MARKER)]
            url = tail_of
        is_html = url == self._html_url
        method = "GET"
        headers = Headers([("Host", self.server_host)])
        headers.add("User-Agent", config.user_agent)
        headers.add("Accept", "*/*")
        for name, value in config.extra_headers:
            headers.add(name, value)
        if is_html and config.accept_deflate:
            headers.add("Accept-Encoding", "deflate")
        if config.http_version == HTTP10 and config.keep_alive:
            headers.add("Connection", "Keep-Alive")
        elif config.http_version >= HTTP11 and self._downgrade_level >= 2:
            # Fully downgraded: one request per connection, and the
            # server must not hold the connection open afterwards.
            headers.add("Connection", "close")
        prefix = config.range_prefix_bytes
        if prefix and not is_html and self._scenario == FIRST_TIME:
            if tail_of is not None:
                headers.add("Range", f"bytes={prefix}-")
            else:
                headers.add("Range", f"bytes=0-{prefix - 1}")
        if self._scenario == REVALIDATE:
            refetch = is_html and config.reval_refetch_html
            strategy = config.reval_strategy
            if strategy == "get-plus-head":
                if not is_html:
                    method = "HEAD"
            elif not refetch:
                http11 = (config.http_version >= HTTP11
                          and config.validator_preference == "etag")
                validators = self.cache.conditional_headers(
                    url, http11=http11,
                    date_fallback=config.allow_date_fallback)
                if validators:
                    for name, value in validators:
                        headers.add(name, value)
                elif strategy == "conditional-or-head" and not is_html:
                    # No usable validator: check the image's metadata
                    # with a HEAD instead of re-transferring it.
                    method = "HEAD"
        return Request(method, url, config.http_version, headers)

    # ------------------------------------------------------------------
    # Dispatch policies
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        if self.result.complete or self.result.terminal_error is not None:
            return
        config = self.config
        persistent = (config.http_version >= HTTP11 or config.keep_alive)
        if config.shards:
            self._dispatch_sharded()
        elif not persistent or self._downgrade_level >= 2:
            self._dispatch_one_shot()
        elif config.pipeline and self._downgrade_level == 0:
            self._dispatch_pipelined()
        else:
            self._dispatch_serialized()

    def _dispatch_one_shot(self) -> None:
        """HTTP/1.0: one request per connection, N connections parallel."""
        while self._pending and (len(self._alive_conns())
                                 < self.config.max_connections):
            url = self._pending.popleft()
            state = self._new_conn()
            state.send_request(url, self._build_request(url), flush=True)

    def _dispatch_serialized(self) -> None:
        """Persistent connections, one outstanding request per conn."""
        idle = [c for c in self._alive_conns() if not c.outstanding]
        while self._pending and idle:
            state = idle.pop()
            url = self._pending.popleft()
            state.send_request(url, self._build_request(url), flush=True)
        while self._pending and (len(self._alive_conns())
                                 < self.config.max_connections):
            url = self._pending.popleft()
            state = self._new_conn()
            state.send_request(url, self._build_request(url), flush=True)

    def _dispatch_pipelined(self) -> None:
        """Pipeline through the buffer over up to ``max_connections``
        persistent connections (the HTTP/1.1 specification permits two;
        the paper's tests use one, and discuss how splitting "divides
        the mean length of packet trains down by a factor of two")."""
        conns = self._alive_conns()
        if not conns:
            conns = [self._new_conn()]
        while (len(conns) < self.config.max_connections
               and len(self._pending) > len(conns)):
            conns.append(self._new_conn())
        wrote = set()
        index = 0
        while self._pending:
            url = self._pending.popleft()
            request = self._build_request(url)
            if url == self._html_url:
                state = conns[0]
            else:
                state = conns[index % len(conns)]
                index += 1
            explicit = (self.config.explicit_flush
                        and url == self._html_url
                        and self._scenario == FIRST_TIME)
            state.send_request(url, request, flush=explicit)
            wrote.add(id(state))
        # The application knows no further requests are coming right now
        # (the HTML is fully parsed, or the batch was fully known):
        # flush rather than wait for the timer.
        if self.config.explicit_flush and self._html_complete:
            for state in conns:
                if id(state) in wrote:
                    state.buffer.flush()

    def _shard_of(self, url: str) -> int:
        """Hash a URL to its origin (stable across the whole fetch)."""
        key = url[:-len(TAIL_MARKER)] if url.endswith(TAIL_MARKER) else url
        return zlib.crc32(key.encode("ascii", "replace")) \
            % self.config.shards

    def _dispatch_sharded(self) -> None:
        """Hash each URL to one of N origins; keep up to
        ``connections_per_shard`` redundant persistent connections per
        origin, serialized (one outstanding request each).  This is the
        late-90s sharding workaround the MUX modes obsolete: more
        parallelism bought with extra handshakes and slow-starts."""
        config = self.config
        while self._pending:
            url = self._pending.popleft()
            self._shard_queues[self._shard_of(url)].append(url)
        for shard, queue in enumerate(self._shard_queues):
            if not queue:
                continue
            conns = [c for c in self._alive_conns() if c.shard == shard]
            idle = [c for c in conns if not c.outstanding]
            while queue and idle:
                state = idle.pop()
                url = queue.popleft()
                state.send_request(url, self._build_request(url),
                                   flush=True)
            while queue and len([c for c in self._alive_conns()
                                 if c.shard == shard]) \
                    < config.connections_per_shard:
                url = queue.popleft()
                state = self._new_conn(shard=shard)
                state.send_request(url, self._build_request(url),
                                   flush=True)

    def _new_conn(self, shard: Optional[int] = None) -> _ConnState:
        state = self._conn_class(self, shard) if shard is not None \
            else self._conn_class(self)
        self._conns.append(state)
        self.result.connections_used += 1
        parallel = len(self._alive_conns())
        self.result.max_parallel_connections = max(
            self.result.max_parallel_connections, parallel)
        return state

    def _alive_conns(self) -> List[_ConnState]:
        return [c for c in self._conns if c.open]

    # ------------------------------------------------------------------
    # Response path
    # ------------------------------------------------------------------
    def _response_arrived(self, state: _ConnState, url: str,
                          response: Response) -> None:
        cost = self.config.per_response_cpu
        start = max(self.sim.now, self._cpu_free_at)
        self._cpu_free_at = start + cost
        self.sim.schedule_at(self._cpu_free_at, self._handle_response,
                             state, url, response)

    def _handle_response(self, state: _ConnState, url: str,
                         response: Response) -> None:
        if 500 <= response.status < 600:
            attempts = self._server_error_retries.get(url, 0)
            if attempts < self.config.retry_server_errors:
                # Transient server error: re-issue the request rather
                # than accepting the error body as the resource.
                self._server_error_retries[url] = attempts + 1
                self.result.retries += 1
                self._note("retry-5xx",
                           f"{response.status} for {url} "
                           f"(attempt {attempts + 1})")
                self._pending.append(url)
                if not response.allows_keep_alive() and state.open:
                    state.open = False
                    if state.conn.state != "CLOSED":
                        state.conn.close()
                self._dispatch()
                self._check_complete()
                return
        if response.status in (200, 304) and response.request_method == "GET":
            body = response.body
            if response.headers.get("Content-Encoding") == "deflate" \
                    and response.status == 200:
                body = zlib.decompress(response.body)
                response = dataclasses.replace(response, body=body)
                response.headers.remove("Content-Encoding")
            self.cache.handle_response(url, response)
        self.result.responses[url] = response
        self._expected[url] = True
        # A ranged image prefix: schedule the tail fetch unless the
        # prefix already covered the whole entity.
        if (self.config.range_prefix_bytes
                and self._scenario == FIRST_TIME
                and response.status == 206
                and not url.endswith(TAIL_MARKER)):
            tail_key = url + TAIL_MARKER
            if tail_key not in self._expected \
                    and _range_has_tail(response):
                self._expected[tail_key] = False
                self._pending.append(tail_key)
        if self.on_response is not None:
            self.on_response(url, response)
        if url == self._html_url and response.status == 200 \
                and not self._scanner.bytes_seen:
            # Body observer missed it (e.g. zero-chunk path): scan whole.
            self._discover(response.body if isinstance(response.body, bytes)
                           else bytes(response.body))
        if url == self._html_url:
            self._html_complete = True
        close_after = not response.allows_keep_alive()
        if close_after and state.open:
            state.open = False
            if state.conn.state != "CLOSED":
                state.conn.close()
        self._dispatch()
        self._check_complete()

    # ------------------------------------------------------------------
    # Incremental HTML discovery
    # ------------------------------------------------------------------
    def _on_body_chunk(self, state: "_ConnState", response: Response,
                       chunk: bytes) -> None:
        """Called by the parser for every body byte-run as it arrives."""
        if self.on_body_progress is not None and state.outstanding:
            # Several responses can complete inside one parser feed;
            # index into the outstanding queue by how many this parser
            # has finished beyond those already popped.
            index = state.parser.messages_completed - state.popped
            if 0 <= index < len(state.outstanding):
                url = state.outstanding[index]
                total = self._body_progress.get(url, 0) + len(chunk)
                self._body_progress[url] = total
                self.on_body_progress(url, response, total, chunk)
        if self._scenario != FIRST_TIME:
            return
        # Only the first (HTML) response feeds the scanner.
        if response.headers.get("Content-Type", "").startswith("text/html"):
            if response.headers.get("Content-Encoding") == "deflate":
                if self._inflater is None:
                    self._inflater = zlib.decompressobj()
                try:
                    text = self._inflater.decompress(chunk)
                except zlib.error:
                    return
            else:
                text = chunk
            self._discover(text)

    def _discover(self, html_bytes: bytes) -> None:
        if not self.config.follow_images:
            return
        new_urls = self._scanner.feed(html_bytes)
        fresh = [u for u in new_urls if u not in self._expected]
        if not fresh:
            return
        for url in fresh:
            self._expected[url] = False
            self._pending.append(url)
        self._dispatch()

    # ------------------------------------------------------------------
    # Retry / completion
    # ------------------------------------------------------------------
    def _note(self, kind: str, detail: str = "") -> None:
        self.result.recovery.note(self.sim.now, "client", kind, detail)

    def _arm_watchdog(self, state: _ConnState) -> None:
        timeout = self.config.watchdog_timeout
        if timeout is None:
            return
        state.deadline = self.sim.now + timeout
        if state.watchdog_event is None:
            state.watchdog_event = self.sim.schedule(
                timeout, self._watchdog_fire, state)

    def _watchdog_fire(self, state: _ConnState) -> None:
        state.watchdog_event = None
        if (not state.open or self.result.complete
                or self.result.terminal_error is not None):
            return
        if not state.outstanding:
            # Idle connection; the next send_request re-arms.
            return
        if self.sim.now < state.deadline:
            # Progress moved the deadline since we were scheduled:
            # chase it (the lazy-timer pattern).
            state.watchdog_event = self.sim.schedule_at(
                state.deadline, self._watchdog_fire, state)
            return
        self.result.errors.append(
            f"watchdog: no data for {self.config.watchdog_timeout:g}s "
            f"with {len(state.outstanding)} outstanding")
        self._note("watchdog",
                   f"{len(state.outstanding)} outstanding, popped "
                   f"{state.popped}")
        state.open = False
        if state.conn.state != "CLOSED":
            state.conn.abort()
        self._connection_gone(state)

    def _connection_gone(self, state: _ConnState) -> None:
        state.cancel_watchdog()
        if self.result.complete or self.result.terminal_error is not None:
            return
        if state.outstanding:
            # Server closed (or the watchdog killed) the connection with
            # unanswered requests: re-issue them on a fresh connection,
            # within a bounded budget.  Failure streaks are tracked per
            # origin (shard): eight origins stalling once each is eight
            # independent hiccups, not one dead server.
            self.result.retries += 1
            requeue = list(state.outstanding)
            state.outstanding.clear()
            origin = getattr(state, "shard", None)
            if state.popped:
                failures = self._consecutive_failures[origin] = 0
            else:
                failures = self._consecutive_failures[origin] = \
                    self._consecutive_failures.get(origin, 0) + 1
            self._note("retry",
                       f"requeue {len(requeue)} after connection loss")
            if self.result.retries > self.config.retry_budget:
                self._fail(f"retry budget exhausted "
                           f"({self.config.retry_budget})")
                return
            if failures >= self.config.max_consecutive_failures:
                self._fail(f"{failures} consecutive "
                           f"connection failures without a response")
                return
            for url in reversed(requeue):
                self._pending.appendleft(url)
            self._maybe_downgrade()
            if failures:
                # Zero-progress failure: back off exponentially before
                # hammering the server again.
                delay = min(
                    self.config.retry_backoff_base
                    * 2.0 ** (failures - 1),
                    self.config.retry_backoff_max)
                self._note("backoff", f"{delay:g}s")
                self.sim.schedule(delay, self._retry_dispatch)
                return
        self._dispatch()
        self._check_complete()

    def _retry_dispatch(self) -> None:
        if self.result.complete or self.result.terminal_error is not None:
            return
        self._dispatch()
        self._check_complete()

    def _maybe_downgrade(self) -> None:
        """Step down pipelined → serialized → one-shot after repeated
        connection deaths with unanswered requests."""
        after = self.config.downgrade_after
        if after is None:
            return
        self._pipeline_kills += 1
        config = self.config
        persistent = (config.http_version >= HTTP11 or config.keep_alive)
        if (self._downgrade_level == 0 and config.pipeline and persistent
                and self._pipeline_kills >= after):
            self._downgrade_level = 1
            self._note("downgrade", "pipelined -> serialized")
        elif (self._downgrade_level <= 1 and persistent
                and self._pipeline_kills >= 2 * after):
            self._downgrade_level = 2
            self._note("downgrade", "serialized -> one-shot")

    def _fail(self, reason: str) -> None:
        if self.result.complete or self.result.terminal_error is not None:
            return
        self.result.terminal_error = reason
        self.result.errors.append(f"terminal: {reason}")
        self._note("terminal", reason)
        for state in self._conns:
            state.cancel_watchdog()
            if state.open:
                state.open = False
                if state.conn.state != "CLOSED":
                    state.conn.abort()
        if self.on_complete is not None:
            self.on_complete(self.result)

    def _check_complete(self) -> None:
        if self.result.complete:
            return
        if self._pending or not self._html_complete:
            return
        if any(self._shard_queues):
            return
        if any(not handled for handled in self._expected.values()):
            return
        if any(c.outstanding for c in self._alive_conns()):
            return
        self.result.completed_at = self.sim.now
        for state in self._conns:
            state.cancel_watchdog()
        for state in self._alive_conns():
            state.buffer.flush()
            state.open = False
            if state.conn.state != "CLOSED":
                state.conn.close()
        if self.on_complete is not None:
            self.on_complete(self.result)
