"""The MUX client: multiplexed streams over one TCP connection.

Subclasses :class:`~repro.client.robot.Robot` so the whole hardening
surface — retry budget, exponential backoff, watchdog, 5xx re-issue,
incremental HTML discovery — is shared; only the wire layer changes:

* every request is a ``HEADERS`` frame on a fresh odd-numbered stream
  (batched through the same :class:`~repro.client.pipeline.
  OutputBuffer` the pipelined mode tunes);
* response heads arrive as ``HEADERS`` frames and bodies as
  flow-controlled ``DATA`` frames, interleaved across streams; the
  client replenishes each stream's credit immediately with
  ``WINDOW_UPDATE``, so the per-stream window bounds how far any one
  response can get ahead of the client;
* a ``PUSH_PROMISE`` registers a speculative server push on an
  even-numbered stream — unless the URL is already requested or
  delivered, in which case the client refuses it with ``CANCEL``
  (cancel-on-duplicate);
* a dead connection re-queues every unfinished stream — including
  promised-but-unfinished pushes — through the robot's normal
  recovery path, which re-issues them as plain requests.
"""

from __future__ import annotations

import zlib
from collections import deque
from typing import Deque, Dict, Optional

from ..http import ParseError, Request, Response, ResponseParser
from ..http.framing import (F_CANCEL, F_DATA, F_END_STREAM, F_HEADERS,
                            F_PUSH_PROMISE, F_WINDOW_UPDATE,
                            FRAME_HEADER_SIZE, Frame, FramingError,
                            FrameReader, INITIAL_STREAM_WINDOW,
                            encode_frame, encode_window_update)
from ..simnet.tcp import TcpConnection
from .pipeline import FlowWindow, OutputBuffer
from .robot import FIRST_TIME, Robot

__all__ = ["MuxClient"]


class _MuxStream:
    """Client-side state of one stream (requested or pushed)."""

    __slots__ = ("url", "parser", "pushed", "recv_window")

    def __init__(self, url: str, pushed: bool) -> None:
        self.url = url
        self.parser = ResponseParser()
        self.pushed = pushed
        self.recv_window = FlowWindow(INITIAL_STREAM_WINDOW)


class _MuxConnState:
    """One MUX connection: frame reader, output buffer, open streams.

    Exposes the same attribute surface the robot's recovery machinery
    touches on a plain connection (``outstanding``, ``popped``,
    ``open``, ``buffer``, watchdog fields), so `_connection_gone`,
    `_watchdog_fire` and `_check_complete` work unchanged.
    """

    __slots__ = ("robot", "shard", "conn", "reader", "buffer",
                 "streams", "outstanding", "popped", "open",
                 "next_stream", "watchdog_event", "deadline")

    def __init__(self, robot: "MuxClient",
                 shard: Optional[int] = None) -> None:
        self.robot = robot
        self.shard = shard
        self.conn: TcpConnection = robot.stack.connect(
            robot.server_host, robot.server_port)
        self.conn.set_nodelay(robot.config.nodelay)
        self.reader = FrameReader()
        self.buffer = OutputBuffer(
            robot.sim, self.conn, size=robot.config.output_buffer_size,
            flush_timeout=robot.config.flush_timeout)
        #: Stream id → stream, both requested (odd) and pushed (even).
        self.streams: Dict[int, _MuxStream] = {}
        #: URLs with an open client-initiated stream, in request order.
        self.outstanding: Deque[str] = deque()
        self.popped = 0          # responses completed on this connection
        self.open = True
        self.next_stream = 1
        self.watchdog_event = None
        self.deadline = 0.0
        self.conn.on_data = self._on_data
        self.conn.on_eof = self._on_eof
        self.conn.on_reset = self._on_reset

    # ------------------------------------------------------------------
    def send_request(self, url: str, request: Request,
                     flush: bool) -> None:
        sid = self.next_stream
        self.next_stream += 2
        stream = _MuxStream(url, pushed=False)
        stream.parser.expect(request.method)
        stream.parser.on_body_chunk = (
            lambda response, chunk:
            self.robot._on_mux_body_chunk(stream, response, chunk))
        self.streams[sid] = stream
        self.outstanding.append(url)
        payload = request.to_bytes()
        self.robot.result.request_bytes += \
            len(payload) + FRAME_HEADER_SIZE
        self.robot.result.requests_sent += 1
        self.robot._send_frame(self, F_HEADERS, sid, payload,
                               buffered=True, flush=flush)
        self.robot._arm_watchdog(self)

    def cancel_watchdog(self) -> None:
        if self.watchdog_event is not None:
            self.watchdog_event.cancel()
            self.watchdog_event = None

    def collect_unfinished(self) -> None:
        """Move promised-but-unfinished pushes into ``outstanding`` so
        the robot's recovery re-issues them as plain requests."""
        for stream in self.streams.values():
            if stream.pushed and stream.url not in self.outstanding:
                self.outstanding.append(stream.url)
        self.streams.clear()

    # ------------------------------------------------------------------
    def _on_data(self, _conn: TcpConnection, data: bytes) -> None:
        timeout = self.robot.config.watchdog_timeout
        if timeout is not None:
            self.deadline = self.robot.sim.now + timeout
        try:
            frames = self.reader.feed(data)
        except FramingError as exc:
            self.robot.result.errors.append(f"framing error: {exc}")
            self.conn.abort()
            self.open = False
            return
        for frame in frames:
            self.robot._on_frame(self, frame)
            if not self.open:
                break

    def _on_eof(self, _conn: TcpConnection) -> None:
        self.open = False
        if self.conn.state not in ("CLOSED",):
            self.conn.close()
        self.robot._connection_gone(self)

    def _on_reset(self, _conn: TcpConnection) -> None:
        self.open = False
        self.robot.result.errors.append(
            f"connection reset with {len(self.outstanding)} outstanding")
        self.robot._connection_gone(self)


class MuxClient(Robot):
    """Fetch a page over multiplexed framed streams (one connection)."""

    # Robot itself is not slotted, so instances keep a __dict__; the
    # declaration still catches typos on the MUX-specific attributes.
    __slots__ = ("frame_tap", "pushes_cancelled")

    _conn_class = _MuxConnState

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: Optional hook observing every frame the client emits:
        #: ``tap(now, "c>s", frame_type, stream_id, payload)``.
        self.frame_tap = None
        #: URLs whose push the client refused (cancel-on-duplicate).
        self.pushes_cancelled = 0

    # ------------------------------------------------------------------
    # Dispatch: everything rides the single multiplexed connection
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        if self.result.complete or self.result.terminal_error is not None:
            return
        if not self._pending:
            return
        alive = self._alive_conns()
        state = alive[0] if alive else self._new_conn()
        wrote = False
        while self._pending:
            url = self._pending.popleft()
            request = self._build_request(url)
            explicit = (self.config.explicit_flush
                        and url == self._html_url
                        and self._scenario == FIRST_TIME)
            state.send_request(url, request, flush=explicit)
            wrote = True
        # Same policy as the pipelined robot: the application knows the
        # batch is complete once the HTML is fully parsed.
        if wrote and self.config.explicit_flush and self._html_complete:
            state.buffer.flush()

    def _maybe_downgrade(self) -> None:
        # There is no downgrade ladder below MUX: recovery re-opens the
        # single multiplexed connection instead.
        return

    # ------------------------------------------------------------------
    # Frame plumbing
    # ------------------------------------------------------------------
    def _send_frame(self, state: _MuxConnState, ftype: int, sid: int,
                    payload: bytes = b"", *, buffered: bool = False,
                    flush: bool = False) -> None:
        if self.frame_tap is not None:
            self.frame_tap(self.sim.now, "c>s", ftype, sid, payload)
        wire = encode_frame(ftype, sid, payload)
        if buffered:
            state.buffer.write(wire)
            if flush:
                state.buffer.flush()
        elif state.conn.state != "CLOSED":
            # Control frames (WINDOW_UPDATE, CANCEL) must not sit in
            # the request batch buffer: the server may be stalled on
            # exactly this credit.
            state.conn.send(wire)

    def _on_frame(self, state: _MuxConnState, frame: Frame) -> None:
        ftype = frame.type
        if ftype in (F_HEADERS, F_DATA):
            stream = state.streams.get(frame.stream)
            if stream is None:
                return      # cancelled or already complete; stale frame
            if ftype == F_DATA:
                stream.recv_window.spend(len(frame.payload))
                if stream.recv_window.overrun:
                    self.result.errors.append(
                        f"flow-control overrun on stream {frame.stream}")
                    state.open = False
                    state.conn.abort()
                    return
                # Replenish immediately: the client consumes as it
                # parses, so credit equals consumption.
                stream.recv_window.grant(len(frame.payload))
                wire = encode_window_update(frame.stream,
                                            len(frame.payload))
                if self.frame_tap is not None:
                    self.frame_tap(self.sim.now, "c>s", F_WINDOW_UPDATE,
                                   frame.stream,
                                   wire[FRAME_HEADER_SIZE:])
                if state.conn.state != "CLOSED":
                    state.conn.send(wire)
            try:
                responses = stream.parser.feed(frame.payload)
            except ParseError as exc:
                self.result.errors.append(f"parse error: {exc}")
                state.open = False
                state.conn.abort()
                return
            for response in responses:
                self._stream_complete(state, frame.stream, stream,
                                      response)
        elif ftype == F_PUSH_PROMISE:
            self._on_push_promise(state, frame)
        elif ftype == F_END_STREAM:
            state.streams.pop(frame.stream, None)
        # Servers send nothing else client-relevant; ignore the rest.

    def _on_push_promise(self, state: _MuxConnState,
                         frame: Frame) -> None:
        url = frame.payload.decode("ascii", "replace")
        if url in self._expected or url in self.result.responses:
            # Duplicate of something already requested or delivered:
            # refuse the push before the server spends wire on it.
            self.pushes_cancelled += 1
            self._note("push-cancel", url)
            self._send_frame(state, F_CANCEL, frame.stream)
            return
        self._expected[url] = False
        stream = _MuxStream(url, pushed=True)
        stream.parser.expect("GET")
        stream.parser.on_body_chunk = (
            lambda response, chunk:
            self._on_mux_body_chunk(stream, response, chunk))
        state.streams[frame.stream] = stream

    def _stream_complete(self, state: _MuxConnState, sid: int,
                         stream: _MuxStream, response: Response) -> None:
        state.streams.pop(sid, None)
        if not stream.pushed:
            try:
                state.outstanding.remove(stream.url)
            except ValueError:
                pass
        state.popped += 1
        self._response_arrived(state, stream.url, response)

    def _on_mux_body_chunk(self, stream: _MuxStream, response: Response,
                           chunk: bytes) -> None:
        if self.on_body_progress is not None:
            total = self._body_progress.get(stream.url, 0) + len(chunk)
            self._body_progress[stream.url] = total
            self.on_body_progress(stream.url, response, total, chunk)
        if self._scenario != FIRST_TIME:
            return
        if response.headers.get("Content-Type",
                                "").startswith("text/html"):
            if response.headers.get("Content-Encoding") == "deflate":
                if self._inflater is None:
                    self._inflater = zlib.decompressobj()
                try:
                    text = self._inflater.decompress(chunk)
                except zlib.error:
                    return
            else:
                text = chunk
            self._discover(text)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _connection_gone(self, state) -> None:
        if isinstance(state, _MuxConnState):
            state.collect_unfinished()
        super()._connection_gone(state)
