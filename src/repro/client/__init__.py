"""HTTP clients: the libwww-robot reimplementation.

:class:`~repro.client.robot.Robot` drives page fetches over the
simulated network in the paper's four configurations (HTTP/1.0 with
parallel connections; HTTP/1.1 persistent; pipelined; pipelined with
deflate), with incremental HTML parsing, output buffering with
size/timer/explicit flush policies, HTTP/1.1 cache validation, and
recovery from servers that close mid-pipeline.
"""

from .discovery import IncrementalImageScanner
from .pipeline import OutputBuffer
from .robot import (FIRST_TIME, REVALIDATE, ClientConfig, FetchResult,
                    Robot)

__all__ = [
    "IncrementalImageScanner", "OutputBuffer",
    "FIRST_TIME", "REVALIDATE", "ClientConfig", "FetchResult", "Robot",
]
