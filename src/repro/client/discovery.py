"""Incremental discovery of embedded objects in streaming HTML.

A 1997 browser starts requesting inlined images before the HTML finishes
arriving — the paper's "Why Compression is Important" section builds on
exactly this: the first TCP segment of (compressed) HTML carries enough
``<img>`` references to fill a new pipelined request batch.

:class:`IncrementalImageScanner` is the robot's HTML "parser": feed it
body chunks as they arrive and it returns the image URLs that became
visible, holding back any tag still split across a chunk boundary.
"""

from __future__ import annotations

from typing import List

from ..content.htmlparse import HtmlTokenizer

__all__ = ["IncrementalImageScanner"]


class IncrementalImageScanner:
    """Streaming ``<img src>`` scanner with duplicate suppression.

    Built on the incremental HTML tokenizer, so tags split across
    chunk boundaries are handled and commented-out markup is ignored —
    what a real browser parser does.
    """

    def __init__(self) -> None:
        self._tokenizer = HtmlTokenizer()
        self._seen = set()
        #: Total body bytes fed so far.
        self.bytes_seen = 0

    def feed(self, chunk: bytes) -> List[str]:
        """Scan a body chunk; return newly discovered image URLs."""
        self.bytes_seen += len(chunk)
        fresh = []
        for token in self._tokenizer.feed(
                chunk.decode("latin-1", errors="replace")):
            if token.kind != "start" or token.data != "img":
                continue
            url = token.get("src")
            if url and url not in self._seen:
                self._seen.add(url)
                fresh.append(url)
        return fresh

    @property
    def discovered(self) -> int:
        """Number of distinct URLs found so far."""
        return len(self._seen)
