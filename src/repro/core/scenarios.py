"""The two client behaviours the paper simulates.

* **First-time retrieval** — "equivalent to a browser visiting a site
  for the first time, e.g. its cache is empty and it has to retrieve
  the top page and all the embedded objects.  In HTTP, this is
  equivalent to 43 GET requests."
* **Cache revalidation** — "equivalent to revisiting a home page where
  the contents are already available in a local cache ... resulting in
  no actual transfer of the HTML or the embedded objects.  In HTTP,
  this is equivalent to 43 Conditional GET requests."  (The HTTP/1.0
  client approximates this with one GET plus 42 HEADs, as old libwww
  did.)

:func:`prefill_cache` establishes the revalidation precondition: a
client cache holding every object with the validators the server would
have sent on a previous visit.
"""

from __future__ import annotations

from ..client.robot import FIRST_TIME, REVALIDATE
from ..content.microscape import MicroscapeSite
from ..http import Headers, MemoryCache, Response
from ..server.profiles import ServerProfile
from ..server.static import ResourceStore

__all__ = ["FIRST_TIME", "REVALIDATE", "SCENARIOS", "prefill_cache"]

#: Both scenarios, in table-column order.
SCENARIOS = (FIRST_TIME, REVALIDATE)


def prefill_cache(cache: MemoryCache, store: ResourceStore,
                  site: MicroscapeSite,
                  profile: ServerProfile) -> None:
    """Populate ``cache`` as if the site had been fetched previously.

    Validators mirror what the server would have sent: always the
    entity tag, plus ``Last-Modified`` when the profile emits dates.
    """
    for url in site.all_urls():
        resource = store.get(url)
        if resource is None:
            raise KeyError(f"site url {url} missing from resource store")
        headers = Headers([("Date", resource.last_modified),
                           ("Content-Type", resource.content_type),
                           ("Content-Length", str(len(resource.body))),
                           ("ETag", resource.etag)])
        if profile.sends_last_modified:
            headers.add("Last-Modified", resource.last_modified)
        cache.store(url, Response(200, headers=headers,
                                  body=resource.body))
