"""Perceived rendering timelines (the paper's future-work question).

"We have not investigated perceived time to render ..., but with the
range request techniques outlined in this paper, we believe HTTP/1.1
can perform well over a single connection."  This module measures it:

* **time to first HTML byte** — when anything can appear,
* **time to layout** — when the dimensions of every embedded image are
  known, so the page can be laid out without reflowing.  A browser
  learns a GIF's dimensions from its logical screen descriptor, i.e.
  the first 10 bytes of the file ("the first bytes typically contain
  the image size");
* **time to first complete image**, and
* **time to full render** — every object fully transferred.

Strategies compared: HTTP/1.0 with four parallel connections (dims
arrive early because four images download at once), serialized and
pipelined HTTP/1.1, and pipelined HTTP/1.1 with the paper's **"poor
man's multiplexing"** — ranged prefix requests that pull every image's
metadata over one connection before any image body monopolizes it.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from ..client.robot import (ClientConfig, FIRST_TIME, Robot, TAIL_MARKER)
from ..content.microscape import MicroscapeSite, build_microscape_site
from ..http import MemoryCache
from ..server.base import SimHttpServer
from ..server.profiles import ServerProfile
from ..server.static import ResourceStore
from ..simnet.link import NetworkEnvironment
from ..simnet.network import SERVER_HOST, TwoHostNetwork
from ..simnet.tcp import TcpConfig
from .runner import _default_site_and_store

__all__ = ["RenderMetrics", "measure_render", "GIF_DIMENSION_BYTES"]

#: Bytes of a GIF needed for its logical screen descriptor (6-byte
#: signature + 4 bytes of width/height).
GIF_DIMENSION_BYTES = 10


@dataclasses.dataclass
class RenderMetrics:
    """When each rendering milestone became possible."""

    first_html_byte: Optional[float] = None
    html_complete: Optional[float] = None
    layout_complete: Optional[float] = None
    first_image_complete: Optional[float] = None
    full_render: Optional[float] = None
    images_expected: int = 0
    #: Whether every transferred byte matched the site content.
    verified: bool = False


class _RenderObserver:
    """Builds a :class:`RenderMetrics` from robot instrumentation."""

    def __init__(self, site: MicroscapeSite, robot: Robot) -> None:
        self.site = site
        self.robot = robot
        self.metrics = RenderMetrics(
            images_expected=len(site.embedded_urls()))
        self._dims_known: Dict[str, bool] = {}
        self._complete: Dict[str, bool] = {}
        self._image_urls = set(site.embedded_urls())
        robot.on_body_progress = self._progress
        robot.on_response = self._response

    def _now(self) -> float:
        return self.robot.sim.now

    def _progress(self, url: str, response, bytes_so_far: int,
                  _chunk: bytes) -> None:
        if url == self.site.html_url:
            if self.metrics.first_html_byte is None:
                self.metrics.first_html_byte = self._now()
            return
        base = url[:-len(TAIL_MARKER)] if url.endswith(TAIL_MARKER) \
            else url
        if base in self._image_urls \
                and bytes_so_far >= GIF_DIMENSION_BYTES \
                and not url.endswith(TAIL_MARKER) \
                and not self._dims_known.get(base):
            self._dims_known[base] = True
            if len(self._dims_known) == len(self._image_urls):
                self.metrics.layout_complete = self._now()

    def _response(self, url: str, response) -> None:
        now = self._now()
        if url == self.site.html_url:
            self.metrics.html_complete = now
            return
        base = url[:-len(TAIL_MARKER)] if url.endswith(TAIL_MARKER) \
            else url
        if base not in self._image_urls:
            return
        if response.status == 206 and not url.endswith(TAIL_MARKER):
            # Prefix alone completes the image when it covered it all.
            from ..client.robot import _range_has_tail
            if _range_has_tail(response):
                return
        if not self._complete.get(base):
            self._complete[base] = True
            if self.metrics.first_image_complete is None:
                self.metrics.first_image_complete = now
            if len(self._complete) == len(self._image_urls):
                self.metrics.full_render = now

    def verify(self) -> bool:
        """Reassemble every image and compare with the site content."""
        responses = self.robot.result.responses
        for url in self._image_urls:
            original = self.site.objects[url].body
            prefix = responses.get(url)
            if prefix is None:
                return False
            body = prefix.body
            tail = responses.get(url + TAIL_MARKER)
            if tail is not None:
                body = body + tail.body
            if body != original:
                return False
        html = responses.get(self.site.html_url)
        return html is not None and html.body == self.site.html.body


def measure_render(config: ClientConfig,
                   environment: NetworkEnvironment,
                   profile: ServerProfile, *,
                   site: Optional[MicroscapeSite] = None,
                   seed: int = 0, jitter: float = 0.0) -> RenderMetrics:
    """Run a first-time retrieval and report its rendering timeline."""
    if site is None:
        site, store = _default_site_and_store()
    else:
        store = ResourceStore.from_site(site)
    server_tcp = TcpConfig(mss=environment.mss, delack_delay=0.050)
    net = TwoHostNetwork(environment, seed=seed, jitter=jitter,
                         server_config=server_tcp)
    server = SimHttpServer(net.sim, net.server, store, profile)
    robot = Robot(net.sim, net.client, SERVER_HOST, server.port, config,
                  MemoryCache())
    observer = _RenderObserver(site, robot)
    result = robot.fetch(site.html_url, FIRST_TIME)
    net.run()
    if not result.complete:
        raise RuntimeError(f"render run incomplete: {result.errors}")
    observer.metrics.verified = observer.verify()
    return observer.metrics
