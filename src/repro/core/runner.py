"""The experiment runner: one fetch of Microscape, fully measured.

Wires a :class:`~repro.client.robot.Robot` and a
:class:`~repro.server.base.SimHttpServer` across a
:class:`~repro.simnet.network.TwoHostNetwork`, runs the simulation to
quiescence, verifies the transfer was correct, and reduces the packet
trace to the paper's Pa / Bytes / Sec / %ov columns.
:func:`run_repeated` averages five seeded runs, as every number in
Tables 3–11 is.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
import statistics
import traceback
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..client.robot import ClientConfig, FetchResult
from ..faults import (FaultInjector, FaultPlan, FaultyProfile, RecoveryLog,
                      resolve_fault_plan)
from ..perf import PerfCounters
from ..content.microscape import MicroscapeSite, build_microscape_site
from ..http import MemoryCache
from ..server.profiles import ServerProfile
from ..server.static import ResourceStore
from ..simnet.link import NetworkEnvironment
from ..simnet.network import SERVER_HOST, TwoHostNetwork
from ..simnet.tcp import TcpConfig
from ..simnet.trace import TraceSummary
from .modes import ModeTuning, ProtocolMode
from .registry import (resolve_environment, resolve_mode, resolve_profile,
                       resolve_scenario)
from .scenarios import FIRST_TIME, REVALIDATE, prefill_cache

__all__ = ["RunResult", "AveragedResult", "ExperimentError",
           "UnitFailure", "run_experiment", "run_repeated",
           "warm_default_site", "reset_default_site", "nearest_rank"]


def nearest_rank(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile: the smallest value with ≥ p% at or below.

    The estimator every fleet tail statistic uses: always an observed
    sample (no interpolation, so aggregates stay byte-reproducible
    across jobs counts and resumes), NaN on an empty sample.  ``p`` is
    in percent (50 → median, 99 → p99).
    """
    if not values:
        return math.nan
    ordered = sorted(values)
    rank = math.ceil(p / 100.0 * len(ordered))
    if rank < 1:
        rank = 1
    elif rank > len(ordered):
        rank = len(ordered)
    return ordered[rank - 1]

#: Default jitter: a small seeded variation standing in for the network
#: fluctuations the paper averaged over five runs.
DEFAULT_JITTER = 0.02

#: The default Microscape site and its resource store, built once and
#: held strongly together.  Keeping the *pair* alive (rather than a
#: table keyed by ``id(site)``) means a dead site can never alias a
#: fresh one through CPython id reuse, and there is nothing to evict:
#: callers with their own site pass an explicit ``store`` (or let
#: :func:`run_experiment` build a fresh one per call).
_DEFAULT_SITE_AND_STORE: Optional[Tuple[MicroscapeSite,
                                        ResourceStore]] = None


class ExperimentError(RuntimeError):
    """Raised when a run does not complete or returns wrong content."""


@dataclasses.dataclass
class RunResult:
    """Measurements from a single run (one row-cell of a table)."""

    packets: int
    payload_bytes: int
    percent_overhead: float
    elapsed: float
    packets_client_to_server: int
    packets_server_to_client: int
    connections_used: int
    max_parallel_connections: int
    retries: int
    #: Server CPU-busy seconds (the paper's future-work quantification).
    server_cpu_seconds: float
    mean_packets_per_connection: float
    mean_packet_size: float
    mean_request_bytes: float
    statuses: Dict[int, int]
    fetch: FetchResult
    trace: TraceSummary
    #: Link drops split by cause, and TCP sender recovery totals (all
    #: zero on the paper's clean links; nonzero under fault injection).
    dropped_loss: int = 0
    dropped_overflow: int = 0
    retransmissions: int = 0
    timeouts: int = 0
    fast_retransmits: int = 0
    checksum_drops: int = 0
    #: Full tcpdump-style trace lines (only when ``keep_trace=True``).
    trace_lines: Optional[str] = None


@dataclasses.dataclass(frozen=True)
class UnitFailure:
    """A (cell, seed) work unit the engine could not complete.

    Failed units no longer abort a grid: the supervised
    :class:`~repro.matrix.runner.MatrixRunner` quarantines the unit as
    one of these — exception text, a stable digest of the traceback,
    the attempt count the retry ladder spent — and sibling units keep
    running.  Failures ride along in :attr:`AveragedResult.failures`
    and are excluded from every averaged measurement column.
    """

    label: str
    seed: int
    #: ``"exception"`` (the unit raised), ``"deadline"`` (its worker
    #: blew the wall-clock budget) or ``"worker-lost"`` (its worker
    #: process died mid-chunk).
    kind: str
    #: ``ExceptionType: message`` for exception failures, else a short
    #: description of what the supervisor observed.
    error: str
    #: First 12 hex digits of the SHA-256 of the formatted traceback
    #: ("" when there was no Python-level exception).  Stable across
    #: processes, so identical crashes dedupe by digest.
    traceback_digest: str
    #: Total attempts the retry ladder made before quarantining.
    attempts: int

    @classmethod
    def from_exception(cls, label: str, seed: int, exc: BaseException,
                       *, attempts: int = 1) -> "UnitFailure":
        text = "".join(traceback.format_exception(
            type(exc), exc, exc.__traceback__))
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]
        return cls(label=label, seed=int(seed), kind="exception",
                   error=f"{type(exc).__name__}: {exc}",
                   traceback_digest=digest, attempts=int(attempts))

    def summary(self) -> str:
        return (f"{self.label} seed={self.seed}: {self.kind} after "
                f"{self.attempts} attempt(s): {self.error}")


@dataclasses.dataclass
class AveragedResult:
    """Mean of several seeded runs — what the paper's tables print.

    Quarantined units arrive as :class:`UnitFailure` entries in
    :attr:`failures`; the averaged properties cover the successful runs
    only (and read as NaN when every unit of the cell failed, so a
    wrecked cell is loud in any table instead of silently zero).
    """

    runs: List[RunResult]
    failures: List[UnitFailure] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every requested unit produced a measurement."""
        return not self.failures

    def _mean(self, attribute: str) -> float:
        if not self.runs:
            return math.nan
        return statistics.fmean(getattr(r, attribute) for r in self.runs)

    def percentile(self, p: float, attribute: str = "elapsed") -> float:
        """Nearest-rank percentile of ``attribute`` over successful runs.

        Quarantined units (:attr:`failures`) are skipped entirely — a
        partially-quarantined cell reports the percentile of the runs
        that *did* measure, deterministically, instead of poisoning the
        tail with NaN.  An all-failed cell still reads NaN (loud, like
        the means).
        """
        return nearest_rank([getattr(r, attribute) for r in self.runs], p)

    @property
    def packets(self) -> float:
        return self._mean("packets")

    @property
    def payload_bytes(self) -> float:
        return self._mean("payload_bytes")

    @property
    def percent_overhead(self) -> float:
        return self._mean("percent_overhead")

    @property
    def elapsed(self) -> float:
        return self._mean("elapsed")

    @property
    def packets_client_to_server(self) -> float:
        return self._mean("packets_client_to_server")

    @property
    def packets_server_to_client(self) -> float:
        return self._mean("packets_server_to_client")

    @property
    def connections_used(self) -> float:
        return self._mean("connections_used")

    @property
    def max_parallel_connections(self) -> float:
        if not self.runs:
            return math.nan
        return max(r.max_parallel_connections for r in self.runs)

    @property
    def server_cpu_seconds(self) -> float:
        return self._mean("server_cpu_seconds")

    @property
    def mean_packets_per_connection(self) -> float:
        return self._mean("mean_packets_per_connection")

    @property
    def mean_packet_size(self) -> float:
        return self._mean("mean_packet_size")

    @property
    def retries(self) -> float:
        return self._mean("retries")

    @property
    def dropped_loss(self) -> float:
        return self._mean("dropped_loss")

    @property
    def dropped_overflow(self) -> float:
        return self._mean("dropped_overflow")

    @property
    def retransmissions(self) -> float:
        return self._mean("retransmissions")

    @property
    def timeouts(self) -> float:
        return self._mean("timeouts")

    @property
    def fast_retransmits(self) -> float:
        return self._mean("fast_retransmits")

    @property
    def checksum_drops(self) -> float:
        return self._mean("checksum_drops")

    @property
    def perf(self) -> PerfCounters:
        """Aggregate simulator work counters across the seeded runs.

        Monotonic counters sum; ``heap_peak`` reports the worst run.
        Runs whose trace carries no counters (hand-built summaries)
        contribute nothing.
        """
        total = PerfCounters()
        for run in self.runs:
            counters = run.trace.perf
            if counters is None:
                continue
            total.events_processed += counters.events_processed
            total.events_cancelled += counters.events_cancelled
            total.heap_peak = max(total.heap_peak, counters.heap_peak)
            total.heap_purges += counters.heap_purges
            total.segments += counters.segments
            total.cancels_avoided += counters.cancels_avoided
            total.fastforward_spans += counters.fastforward_spans
            total.segments_synthesized += counters.segments_synthesized
        return total


def _default_site_and_store() -> Tuple[MicroscapeSite, ResourceStore]:
    global _DEFAULT_SITE_AND_STORE
    if _DEFAULT_SITE_AND_STORE is None:
        site = build_microscape_site()
        _DEFAULT_SITE_AND_STORE = (site, ResourceStore.from_site(site))
    return _DEFAULT_SITE_AND_STORE


def warm_default_site() -> None:
    """Pre-build the default site and resource store.

    Pool warm-up hook: the parent calls this before forking workers (so
    the built site is shared copy-on-write) and each worker's
    initializer calls it on spawn, moving the one-time build cost off
    the first dispatched unit's critical path.  Idempotent and cheap
    when the artifact store is warm.
    """
    _default_site_and_store()


def reset_default_site() -> None:
    """Drop the process-wide site/store memo (and the build LRU).

    For benchmarks and tests that need the next :func:`run_experiment`
    to pay the true cold synthesis cost, as a fresh process would.
    """
    global _DEFAULT_SITE_AND_STORE
    _DEFAULT_SITE_AND_STORE = None
    build_microscape_site.cache_clear()


def run_experiment(mode: Union[str, ProtocolMode],
                   scenario: str, *,
                   environment: Union[str, NetworkEnvironment],
                   profile: Union[str, ServerProfile],
                   site: Optional[MicroscapeSite] = None,
                   store: Optional[ResourceStore] = None,
                   seed: int = 0, jitter: float = DEFAULT_JITTER,
                   client_config: Optional[ClientConfig] = None,
                   flush_timeout: Optional[float] = 0.05,
                   explicit_flush: bool = True,
                   verify: bool = True,
                   keep_trace: bool = False,
                   sanitize: bool = False,
                   max_sim_time: float = 1200.0,
                   faults: Union[None, str, FaultPlan] = None,
                   fastpath: bool = True) -> RunResult:
    """Run one (mode, scenario, environment, server) cell.

    ``mode``, ``scenario``, ``environment`` and ``profile`` accept
    either the objects themselves or their canonical string names
    ("pipelined", "revalidate", "WAN", "Apache"), resolved through
    :mod:`repro.core.registry`.  ``environment`` and ``profile`` are
    keyword-only.

    ``client_config`` overrides the mode-derived configuration for
    ablations (flush policies, Nagle, buffer sizes).  ``store`` supplies
    a prebuilt :class:`ResourceStore` for a custom ``site``; without it
    a fresh store is built (the default site's store is memoized).
    ``keep_trace=True`` preserves the full tcpdump-style trace as
    :attr:`RunResult.trace_lines` (the golden-trace tests rely on it).
    ``sanitize=True`` attaches a :class:`~repro.lint.LiveSanitizer` to
    the link, raising :class:`~repro.lint.InvariantViolationError` the
    moment any segment breaks a TCP invariant (handshake order,
    sequence monotonicity, Nagle, delayed-ACK deadlines, half-close).

    ``faults`` names a :class:`~repro.faults.FaultPlan` (or passes one
    directly): link faults are injected by a seeded
    :class:`~repro.faults.FaultInjector`, server faults wrap ``profile``
    in a :class:`~repro.faults.FaultyProfile`, and the client config is
    hardened (watchdog + downgrade ladder) unless explicitly tuned.
    With ``faults=None`` nothing changes: no injector is installed, no
    extra events are scheduled, and runs stay bit-identical to the
    golden traces.

    ``fastpath=False`` (the CLI's ``--no-fastpath``) disables the
    flow-level fast-forward driver and forces per-segment execution.
    Traces and summaries are byte-identical either way; only the
    :class:`~repro.perf.PerfCounters` work profile differs.
    """
    mode = resolve_mode(mode)
    scenario = resolve_scenario(scenario)
    environment = resolve_environment(environment)
    profile = resolve_profile(profile)
    if site is None:
        site, default_store = _default_site_and_store()
        store = store or default_store
    elif store is None:
        store = ResourceStore.from_site(site)
    # The server host ran Solaris 2.5, whose delayed-ACK timer is 50 ms
    # (the clients were BSD-derived 200 ms stacks).
    server_tcp = TcpConfig(mss=environment.mss, delack_delay=0.050)
    config = client_config or mode.client_config(
        tuning=ModeTuning(flush_timeout=flush_timeout,
                          explicit_flush=explicit_flush))
    plan = resolve_fault_plan(faults)
    recovery: Optional[RecoveryLog] = None
    if plan is not None:
        recovery = RecoveryLog()
        if plan.server.active:
            profile = FaultyProfile.wrap(profile, plan.server)
        config = _fault_hardened_config(config, environment)
    net = TwoHostNetwork(environment, seed=seed, jitter=jitter,
                         server_config=server_tcp, fastpath=fastpath)
    if plan is not None and plan.link.active:
        # A private RNG stream (offset from the run seed) so injecting
        # faults never perturbs the link's jitter draw sequence.
        FaultInjector(net.link, plan.link, seed=seed + 7919,
                      recovery=recovery)
    transport = mode.transport
    servers = transport.start_servers(net.sim, net.server, store, profile)
    server = servers[0]
    for srv in servers:
        srv.recovery = recovery
    sanitizer = None
    frame_validator = None
    if sanitize:
        from ..lint import (FrameStreamValidator, LiveSanitizer,
                            SanitizerConfig)
        client_tcp = TcpConfig(mss=environment.mss)
        s_config = SanitizerConfig.for_run(
            environment=environment,
            client_nodelay=config.nodelay,
            server_nodelay=profile.nodelay,
            client_delack=client_tcp.delack_delay,
            server_delack=server_tcp.delack_delay,
            max_parallel=config.max_connections)
        if plan is None:
            # Clean runs also enforce the mode's connection-shape
            # contract (fault recovery legitimately re-dials, so the
            # rules are skipped under injection).
            rules = transport.trace_rules(config)
            if rules is not None:
                s_config = dataclasses.replace(s_config, mode_rules=rules)
        sanitizer = LiveSanitizer(net.link, s_config)
        if transport.mux:
            frame_validator = FrameStreamValidator(
                push_allowed=transport.push)
    cache = MemoryCache()
    if scenario == REVALIDATE:
        prefill_cache(cache, store, site, profile)
    robot = transport.create_client(net.sim, net.client, SERVER_HOST,
                                    server.port, config, cache)
    if frame_validator is not None:
        robot.frame_tap = frame_validator.observe
        for srv in servers:
            srv.frame_tap = frame_validator.observe
    if recovery is not None:
        # One shared log: injector, server and robot all write to it.
        robot.result.recovery = recovery
    known = site.all_urls() if scenario == REVALIDATE else None
    result = robot.fetch(site.html_url, scenario, known_urls=known)
    net.run(until=max_sim_time)
    net.sim.run()   # drain any residual timers/ACKs past the deadline
    if sanitizer is not None:
        sanitizer.finish(net.sim.now)
    if frame_validator is not None:
        frame_validator.finish(net.sim.now)
        if frame_validator.violations:
            from ..lint import InvariantViolationError
            raise InvariantViolationError("; ".join(
                v.format() for v in frame_validator.violations[:5]))
    if not result.complete:
        detail = (f" (terminal: {result.terminal_error})"
                  if result.terminal_error else "")
        raise ExperimentError(
            f"fetch did not complete{detail}: "
            f"{len(result.responses)} responses, "
            f"errors={result.errors}")
    if verify:
        _verify(result, scenario, site)
    statuses: Dict[int, int] = {}
    for response in result.responses.values():
        statuses[response.status] = statuses.get(response.status, 0) + 1
    trace = net.trace.summary()
    trace.retransmissions = (net.client.retransmissions
                             + net.server.retransmissions)
    trace.timeouts = net.client.timeouts + net.server.timeouts
    trace.fast_retransmits = (net.client.fast_retransmits
                              + net.server.fast_retransmits)
    trace.checksum_drops = (net.client.checksum_drops
                            + net.server.checksum_drops)
    trace.recovery = recovery
    return RunResult(
        packets=trace.packets,
        payload_bytes=trace.payload_bytes,
        percent_overhead=trace.percent_overhead,
        elapsed=result.elapsed or 0.0,
        packets_client_to_server=trace.packets_client_to_server,
        packets_server_to_client=trace.packets_server_to_client,
        connections_used=result.connections_used,
        max_parallel_connections=result.max_parallel_connections,
        retries=result.retries,
        server_cpu_seconds=sum(s.cpu_busy_seconds for s in servers),
        mean_packets_per_connection=trace.mean_packets_per_connection,
        mean_packet_size=trace.mean_packet_size,
        mean_request_bytes=result.mean_request_bytes,
        statuses=statuses,
        fetch=result,
        trace=trace,
        dropped_loss=trace.dropped_loss,
        dropped_overflow=trace.dropped_overflow,
        retransmissions=trace.retransmissions,
        timeouts=trace.timeouts,
        fast_retransmits=trace.fast_retransmits,
        checksum_drops=trace.checksum_drops,
        trace_lines=net.trace.format_trace() if keep_trace else None)


def _fault_hardened_config(config: ClientConfig,
                           environment: NetworkEnvironment) -> ClientConfig:
    """Fill in hardening defaults for a run under fault injection.

    Knobs already set (non-default) are respected; the watchdog scales
    with the environment's RTT so slow modem links are not mistaken for
    stalled servers.
    """
    overrides = {}
    if config.watchdog_timeout is None:
        overrides["watchdog_timeout"] = 10.0 + 40.0 * environment.rtt
    if config.downgrade_after is None:
        overrides["downgrade_after"] = 2
    if not overrides:
        return config
    return dataclasses.replace(config, **overrides)


def _verify(result: FetchResult, scenario: str,
            site: MicroscapeSite) -> None:
    """Check the run retrieved exactly the right content."""
    expected_urls = set(site.all_urls())
    got_urls = set(result.responses)
    if got_urls != expected_urls:
        missing = expected_urls - got_urls
        raise ExperimentError(f"missing responses for {sorted(missing)}")
    for url, response in result.responses.items():
        if scenario == FIRST_TIME:
            if response.status != 200:
                raise ExperimentError(f"{url}: status {response.status}")
            if response.request_method == "GET" \
                    and response.body != site.objects[url].body:
                raise ExperimentError(f"{url}: body mismatch")
        else:
            if response.status not in (200, 304):
                raise ExperimentError(f"{url}: status {response.status}")


def run_repeated(mode: Union[str, ProtocolMode], scenario: str, *,
                 environment: Union[str, NetworkEnvironment],
                 profile: Union[str, ServerProfile], runs: int = 5,
                 seeds: Optional[Sequence[int]] = None,
                 **kwargs) -> AveragedResult:
    """Average ``runs`` seeded runs, as the paper's tables do."""
    seeds = seeds if seeds is not None else range(runs)
    return AveragedResult([
        run_experiment(mode, scenario, environment=environment,
                       profile=profile, seed=seed, **kwargs)
        for seed in seeds])
