"""The single name registry: canonical strings for experiment axes.

Every layer that names a protocol mode, scenario, network environment
or server profile — the CLI, the :mod:`repro.matrix` subsystem, the
benchmarks — resolves through these four functions, so "pipelined",
"WAN" and "Apache" mean the same objects everywhere.  Each resolver
accepts either the already-resolved object (returned unchanged) or a
name; names are matched case-insensitively, with the common shorthands
registered as aliases.

Modes are *registered*, not enumerated: :func:`register_mode` is public
so new transports (or downstream experiments) self-register and
automatically appear in :func:`resolve_mode`, the matrix engine, the
chaos planner, the sanitizer and the report tables.  The built-in
modes in :mod:`repro.core.modes` register themselves the same way.

Unknown names raise :class:`UnknownNameError` whose message lists the
accepted spellings (and the closest match, when one is close enough);
the CLI prints it verbatim.
"""

from __future__ import annotations

import difflib
from typing import Dict, Iterable, Optional, Tuple, Union

from ..client.robot import FIRST_TIME, REVALIDATE
from ..server.profiles import (APACHE, APACHE_12B2, JIGSAW, JIGSAW_INITIAL,
                               NAGLE_STALL_SERVER, NAIVE_CLOSE_SERVER,
                               ServerProfile)
from ..simnet.link import ENVIRONMENTS, NetworkEnvironment

__all__ = [
    "UnknownNameError",
    "MODES", "MODE_ALIASES", "PROFILES", "SCENARIOS_BY_NAME",
    "TABLE_CELLS",
    "register_mode", "modes_for_environment",
    "resolve_mode", "resolve_environment", "resolve_profile",
    "resolve_scenario",
]


class UnknownNameError(ValueError):
    """A name that no registry entry answers to."""


#: Canonical mode name (as the tables print it) → mode.  Live registry:
#: entries appear via :func:`register_mode`, in registration order.
MODES: Dict[str, "ProtocolMode"] = {}

#: Shorthand → canonical mode name.
MODE_ALIASES: Dict[str, str] = {}

#: Mode name → environments it runs in (None = every environment).
_MODE_ENVIRONMENTS: Dict[str, Optional[Tuple[str, ...]]] = {}

#: Mode name → environments where it is a row of the paper's tables.
_PAPER_ENVIRONMENTS: Dict[str, Tuple[str, ...]] = {}

#: Profile name → server profile (the two paper servers + ablations).
PROFILES: Dict[str, ServerProfile] = {
    profile.name: profile
    for profile in (JIGSAW, APACHE, JIGSAW_INITIAL, APACHE_12B2,
                    NAGLE_STALL_SERVER, NAIVE_CLOSE_SERVER)
}

#: Scenario spelling → canonical scenario constant.
SCENARIOS_BY_NAME: Dict[str, str] = {
    FIRST_TIME: FIRST_TIME,
    "first": FIRST_TIME,
    "firsttime": FIRST_TIME,
    REVALIDATE: REVALIDATE,
    "reval": REVALIDATE,
    "revalidation": REVALIDATE,
}

#: Paper table number → (server, environment) for Tables 4-9.
TABLE_CELLS: Dict[int, Tuple[str, str]] = {
    4: ("Jigsaw", "LAN"), 5: ("Apache", "LAN"),
    6: ("Jigsaw", "WAN"), 7: ("Apache", "WAN"),
    8: ("Jigsaw", "PPP"), 9: ("Apache", "PPP"),
}


def register_mode(mode: "ProtocolMode", *,
                  aliases: Iterable[str] = (),
                  environments: Optional[Iterable[str]] = None,
                  paper_environments: Iterable[str] = (),
                  replace: bool = False) -> "ProtocolMode":
    """Register a protocol mode under its canonical name.

    Parameters
    ----------
    mode:
        The :class:`~repro.core.modes.ProtocolMode` to register.
    aliases:
        Extra (case-insensitive) spellings ``resolve_mode`` accepts.
    environments:
        Environments the mode participates in (``None`` = all) — this
        is what :func:`modes_for_environment` answers with.
    paper_environments:
        Environments where the mode is a row of the paper's Tables 4–9
        (empty for post-paper modes).
    replace:
        Allow re-registering an existing name (tests, ablations).

    Returns the mode, so registration can wrap construction.
    """
    from .modes import ProtocolMode
    if not isinstance(mode, ProtocolMode):
        raise TypeError(f"register_mode wants a ProtocolMode, "
                        f"got {type(mode).__name__}")
    if mode.name in MODES and not replace:
        raise ValueError(f"mode {mode.name!r} is already registered "
                         f"(pass replace=True to override)")
    MODES[mode.name] = mode
    _MODE_ENVIRONMENTS[mode.name] = (
        None if environments is None
        else tuple(str(env).upper() for env in environments))
    _PAPER_ENVIRONMENTS[mode.name] = tuple(
        str(env).upper() for env in paper_environments)
    for alias in aliases:
        MODE_ALIASES[str(alias).lower()] = mode.name
    return mode


def modes_for_environment(environment: Union[str, NetworkEnvironment], *,
                          paper_only: bool = False
                          ) -> Tuple["ProtocolMode", ...]:
    """Registered modes that run in ``environment``, in registration
    order.

    With ``paper_only`` the answer is restricted to the rows of the
    paper's tables for that environment (Tables 8–9 omit HTTP/1.0 on
    PPP) — what the deprecated ``TABLE_MODES`` alias serves.
    """
    env = resolve_environment(environment).name
    selected = []
    for name, mode in MODES.items():
        if paper_only:
            if env not in _PAPER_ENVIRONMENTS.get(name, ()):
                continue
        else:
            environments = _MODE_ENVIRONMENTS.get(name)
            if environments is not None and env not in environments:
                continue
        selected.append(mode)
    return tuple(selected)


def _unknown(kind: str, value: object, choices) -> UnknownNameError:
    names = sorted({str(choice) for choice in choices}, key=str.lower)
    listed = ", ".join(names)
    by_lower = {name.lower(): name for name in names}
    close = difflib.get_close_matches(str(value).lower(), list(by_lower),
                                      n=1, cutoff=0.6)
    if close:
        return UnknownNameError(
            f"unknown {kind} {value!r} (did you mean "
            f"{by_lower[close[0]]!r}? choose from: {listed})")
    return UnknownNameError(f"unknown {kind} {value!r} "
                            f"(choose from: {listed})")


def resolve_mode(value: Union[str, "ProtocolMode"]) -> "ProtocolMode":
    """Resolve a protocol mode by object, canonical name, or alias."""
    from .modes import ProtocolMode
    if isinstance(value, ProtocolMode):
        return value
    if value in MODES:
        return MODES[value]
    key = str(value).lower()
    for name, mode in MODES.items():
        if name.lower() == key:
            return mode
    if key in MODE_ALIASES:
        return MODES[MODE_ALIASES[key]]
    raise _unknown("mode", value, list(MODES) + list(MODE_ALIASES))


def resolve_environment(value: Union[str, NetworkEnvironment]
                        ) -> NetworkEnvironment:
    """Resolve a network environment by object or (any-case) name."""
    if isinstance(value, NetworkEnvironment):
        return value
    environment = ENVIRONMENTS.get(str(value).upper())
    if environment is None:
        raise _unknown("environment", value, ENVIRONMENTS)
    return environment


def resolve_profile(value: Union[str, ServerProfile]) -> ServerProfile:
    """Resolve a server profile by object or (any-case) name."""
    if isinstance(value, ServerProfile):
        return value
    if value in PROFILES:
        return PROFILES[value]
    key = str(value).lower()
    for name, profile in PROFILES.items():
        if name.lower() == key:
            return profile
    raise _unknown("server", value, PROFILES)


def resolve_scenario(value: str) -> str:
    """Resolve a scenario spelling to ``FIRST_TIME`` / ``REVALIDATE``."""
    scenario = SCENARIOS_BY_NAME.get(str(value).lower())
    if scenario is None:
        raise _unknown("scenario", value, SCENARIOS_BY_NAME)
    return scenario


# The built-in modes live in .modes and self-register on import; pull
# them in here so ``registry.MODES`` is populated no matter which of
# the two modules is imported first.  (Must stay the last statement:
# everything register_mode needs is defined above.)
from . import modes as _builtin_modes  # noqa: E402,F401  (self-registers)
