"""The single name registry: canonical strings for experiment axes.

Every layer that names a protocol mode, scenario, network environment
or server profile — the CLI, the :mod:`repro.matrix` subsystem, the
benchmarks — resolves through these four functions, so "pipelined",
"WAN" and "Apache" mean the same objects everywhere.  Each resolver
accepts either the already-resolved object (returned unchanged) or a
name; names are matched case-insensitively, with the common shorthands
registered as aliases.

Unknown names raise :class:`UnknownNameError` whose message lists the
accepted spellings, which the CLI prints verbatim.
"""

from __future__ import annotations

from typing import Dict, Tuple, Union

from ..client.robot import FIRST_TIME, REVALIDATE
from ..server.profiles import (APACHE, APACHE_12B2, JIGSAW, JIGSAW_INITIAL,
                               NAGLE_STALL_SERVER, NAIVE_CLOSE_SERVER,
                               ServerProfile)
from ..simnet.link import ENVIRONMENTS, NetworkEnvironment
from .modes import ALL_MODES, ProtocolMode

__all__ = [
    "UnknownNameError",
    "MODES", "MODE_ALIASES", "PROFILES", "SCENARIOS_BY_NAME",
    "TABLE_CELLS",
    "resolve_mode", "resolve_environment", "resolve_profile",
    "resolve_scenario",
]


class UnknownNameError(ValueError):
    """A name that no registry entry answers to."""


#: Canonical mode name (as the paper's tables print it) → mode.
MODES: Dict[str, ProtocolMode] = {mode.name: mode for mode in ALL_MODES}

#: Shorthand → canonical mode name.
MODE_ALIASES: Dict[str, str] = {
    "http/1.0": "HTTP/1.0",
    "1.0": "HTTP/1.0",
    "http/1.1": "HTTP/1.1",
    "1.1": "HTTP/1.1",
    "persistent": "HTTP/1.1",
    "pipelined": "HTTP/1.1 Pipelined",
    "pipeline": "HTTP/1.1 Pipelined",
    "compressed": "HTTP/1.1 Pipelined w. compression",
    "pipelined-compressed": "HTTP/1.1 Pipelined w. compression",
}

#: Profile name → server profile (the two paper servers + ablations).
PROFILES: Dict[str, ServerProfile] = {
    profile.name: profile
    for profile in (JIGSAW, APACHE, JIGSAW_INITIAL, APACHE_12B2,
                    NAGLE_STALL_SERVER, NAIVE_CLOSE_SERVER)
}

#: Scenario spelling → canonical scenario constant.
SCENARIOS_BY_NAME: Dict[str, str] = {
    FIRST_TIME: FIRST_TIME,
    "first": FIRST_TIME,
    "firsttime": FIRST_TIME,
    REVALIDATE: REVALIDATE,
    "reval": REVALIDATE,
    "revalidation": REVALIDATE,
}

#: Paper table number → (server, environment) for Tables 4-9.
TABLE_CELLS: Dict[int, Tuple[str, str]] = {
    4: ("Jigsaw", "LAN"), 5: ("Apache", "LAN"),
    6: ("Jigsaw", "WAN"), 7: ("Apache", "WAN"),
    8: ("Jigsaw", "PPP"), 9: ("Apache", "PPP"),
}


def _unknown(kind: str, value: object, choices) -> UnknownNameError:
    listed = ", ".join(sorted(choices, key=str.lower))
    return UnknownNameError(f"unknown {kind} {value!r} "
                            f"(choose from: {listed})")


def resolve_mode(value: Union[str, ProtocolMode]) -> ProtocolMode:
    """Resolve a protocol mode by object, canonical name, or alias."""
    if isinstance(value, ProtocolMode):
        return value
    if value in MODES:
        return MODES[value]
    key = str(value).lower()
    for name, mode in MODES.items():
        if name.lower() == key:
            return mode
    if key in MODE_ALIASES:
        return MODES[MODE_ALIASES[key]]
    raise _unknown("mode", value, list(MODES) + list(MODE_ALIASES))


def resolve_environment(value: Union[str, NetworkEnvironment]
                        ) -> NetworkEnvironment:
    """Resolve a network environment by object or (any-case) name."""
    if isinstance(value, NetworkEnvironment):
        return value
    environment = ENVIRONMENTS.get(str(value).upper())
    if environment is None:
        raise _unknown("environment", value, ENVIRONMENTS)
    return environment


def resolve_profile(value: Union[str, ServerProfile]) -> ServerProfile:
    """Resolve a server profile by object or (any-case) name."""
    if isinstance(value, ServerProfile):
        return value
    if value in PROFILES:
        return PROFILES[value]
    key = str(value).lower()
    for name, profile in PROFILES.items():
        if name.lower() == key:
            return profile
    raise _unknown("server", value, PROFILES)


def resolve_scenario(value: str) -> str:
    """Resolve a scenario spelling to ``FIRST_TIME`` / ``REVALIDATE``."""
    scenario = SCENARIOS_BY_NAME.get(str(value).lower())
    if scenario is None:
        raise _unknown("scenario", value, SCENARIOS_BY_NAME)
    return scenario
