"""Transport strategies: how a protocol mode reaches the wire.

The original mode API hard-coded its two behaviours (``if version ==
HTTP10`` inside ``client_config()``); every grid that consumed modes —
the matrix engine, the chaos planner, the report tables — enumerated a
literal four-tuple.  This module is the redesign's core: a
:class:`ProtocolMode <repro.core.modes.ProtocolMode>` now carries a
:class:`Transport` strategy object that owns

* **client construction** — which client class speaks the mode and the
  :class:`~repro.client.robot.ClientConfig` it runs with,
* **server wiring** — how many listeners to start and in which framing
  mode (plain HTTP, MUX, MUX + push),
* **sanitizer rules** — per-mode packet-level invariants for the
  :class:`~repro.lint.sanitizer.TraceValidator`.

Transports are frozen dataclasses so modes stay hashable and
value-comparable; two ``ShardedTransport(shards=4)`` instances are the
same transport.

Tuning knobs travel as one keyword-only :class:`ModeTuning` value
instead of three loose keywords (the old spellings survive behind a
deprecation shim in ``ProtocolMode.client_config``).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, TYPE_CHECKING

from ..client.robot import ClientConfig, Robot
from ..http import HTTP10, HTTP11
from ..server.base import SimHttpServer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .modes import ProtocolMode

__all__ = ["ModeTuning", "Transport", "Http10Transport", "Http11Transport",
           "MuxTransport", "ShardedTransport", "DEFAULT_PORT"]

#: Base listening port; sharded transports fan out to consecutive ports.
DEFAULT_PORT = 80


@dataclasses.dataclass(frozen=True)
class ModeTuning:
    """The paper's buffer-tuning knobs, as one value.

    Defaults are the *final* (tuned) settings: 1024-byte output buffer,
    50 ms flush timer, application-level explicit flush.
    """

    flush_timeout: Optional[float] = 0.05
    explicit_flush: bool = True
    output_buffer_size: int = 1024


@dataclasses.dataclass(frozen=True)
class Transport:
    """Base strategy: one plain-HTTP listener, the libwww-style robot.

    Subclasses override the pieces that differ; the defaults reproduce
    the paper's wiring exactly so the four legacy modes stay
    byte-identical at the packet level.
    """

    #: Whether the connection carries MUX frames (consulted by the
    #: runner to attach the frame-level validator).  Class attribute,
    #: not a field: transports compare by type + their own knobs.
    mux = False
    #: Whether the server speculatively pushes inline objects.
    push = False

    def client_config(self, mode: "ProtocolMode",
                      tuning: ModeTuning) -> ClientConfig:
        raise NotImplementedError

    def start_servers(self, sim, stack, store, profile
                      ) -> List[SimHttpServer]:
        """Start the mode's listener(s) on ``stack``; first is primary."""
        return [SimHttpServer(sim, stack, store, profile)]

    def create_client(self, sim, stack, server_host: str, server_port: int,
                      config: ClientConfig, cache) -> Robot:
        """Build the client that speaks this transport."""
        return Robot(sim, stack, server_host, server_port, config, cache)

    def trace_rules(self, config: ClientConfig):
        """Packet-level invariants for clean runs (None = generic only)."""
        return None


@dataclasses.dataclass(frozen=True)
class Http10Transport(Transport):
    """HTTP/1.0: the *old* libwww (4.1D) client, one request per
    connection.

    The fat request profile lives here now (it used to be the
    ``if self.version == HTTP10`` branch of ``client_config()``): the
    4.1D robot's requests were noticeably larger than the tuned 5.1
    robot's ~190 bytes, and the paper's byte counts reflect it.
    Tuning is ignored — the 4.1D robot had no output buffering.
    """

    def client_config(self, mode: "ProtocolMode",
                      tuning: ModeTuning) -> ClientConfig:
        return ClientConfig(
            http_version=HTTP10,
            max_connections=mode.parallel_connections,
            pipeline=False,
            reval_strategy="get-plus-head",
            validator_preference="date",
            user_agent="W3CRobot/4.1D libwww/4.1D",
            extra_headers=(
                ("Accept", "image/gif"),
                ("Accept", "image/x-xbitmap"),
                ("Accept", "image/jpeg"),
                ("Accept", "image/pjpeg"),
                ("Accept", "text/html"),
                ("Accept", "text/plain"),
                ("Accept-Language", "en"),
                ("Accept-Charset", "iso-8859-1,*,utf-8"),
            ))


@dataclasses.dataclass(frozen=True)
class Http11Transport(Transport):
    """HTTP/1.1: persistent connections, optionally pipelined."""

    def client_config(self, mode: "ProtocolMode",
                      tuning: ModeTuning) -> ClientConfig:
        return ClientConfig(
            http_version=HTTP11,
            max_connections=mode.parallel_connections,
            pipeline=mode.pipeline,
            accept_deflate=mode.compression,
            output_buffer_size=tuning.output_buffer_size,
            flush_timeout=tuning.flush_timeout,
            explicit_flush=tuning.explicit_flush,
            reval_strategy="conditional",
            validator_preference="etag")


@dataclasses.dataclass(frozen=True)
class MuxTransport(Transport):
    """Multiplexed streams over one TCP connection (HTTP/2-shaped).

    With ``server_push`` the server speculatively frames every inline
    image after an HTML request; the client cancels duplicates.
    """

    server_push: bool = False

    mux = True

    @property
    def push(self) -> bool:
        return self.server_push

    def client_config(self, mode: "ProtocolMode",
                      tuning: ModeTuning) -> ClientConfig:
        return ClientConfig(
            http_version=HTTP11,
            max_connections=1,
            pipeline=False,
            output_buffer_size=tuning.output_buffer_size,
            flush_timeout=tuning.flush_timeout,
            explicit_flush=tuning.explicit_flush,
            reval_strategy="conditional",
            validator_preference="etag")

    def start_servers(self, sim, stack, store, profile
                      ) -> List[SimHttpServer]:
        return [SimHttpServer(sim, stack, store, profile,
                              mux=True, push=self.server_push)]

    def create_client(self, sim, stack, server_host: str, server_port: int,
                      config: ClientConfig, cache):
        from ..client.mux import MuxClient
        return MuxClient(sim, stack, server_host, server_port, config,
                         cache)

    def trace_rules(self, config: ClientConfig):
        from ..lint.sanitizer import ModeTraceRules
        # Everything multiplexes over exactly one TCP connection.
        return ModeTraceRules(min_connections=1, max_connections=1)


@dataclasses.dataclass(frozen=True)
class ShardedTransport(Transport):
    """Content split across N simulated origins (ports 80..80+N-1).

    Each shard is an independent :class:`SimHttpServer` with its own
    serial CPU; the client hashes each URL to a shard and keeps up to
    ``connections_per_shard`` redundant persistent connections there.
    """

    shards: int = 4
    connections_per_shard: int = 2

    def client_config(self, mode: "ProtocolMode",
                      tuning: ModeTuning) -> ClientConfig:
        return ClientConfig(
            http_version=HTTP11,
            max_connections=self.shards * self.connections_per_shard,
            pipeline=False,
            output_buffer_size=tuning.output_buffer_size,
            flush_timeout=tuning.flush_timeout,
            explicit_flush=tuning.explicit_flush,
            reval_strategy="conditional",
            validator_preference="etag",
            shards=self.shards,
            connections_per_shard=self.connections_per_shard)

    def start_servers(self, sim, stack, store, profile
                      ) -> List[SimHttpServer]:
        return [SimHttpServer(sim, stack, store, profile,
                              port=DEFAULT_PORT + shard)
                for shard in range(self.shards)]

    def trace_rules(self, config: ClientConfig):
        from ..lint.sanitizer import ModeTraceRules
        ports = tuple(DEFAULT_PORT + shard for shard in range(self.shards))
        return ModeTraceRules(
            required_ports=ports,
            max_handshakes_per_port=self.connections_per_shard)
