"""Experiment core: protocol modes, scenarios, runner, browser profiles.

This is the package that turns the substrates (simulated network, HTTP
layer, clients, servers, content) into the paper's experiments::

    from repro.core import run_repeated

    row = run_repeated("pipelined", "first-time",
                       environment="WAN", profile="Apache")
    print(row.packets, row.payload_bytes, row.elapsed,
          row.percent_overhead)

Every axis accepts objects or registry names (:mod:`.registry` holds
the single name table shared with the CLI and :mod:`repro.matrix`);
``environment`` and ``profile`` are keyword-only.
"""

from .browsers import BROWSERS, BrowserProfile, IE_40B1, NETSCAPE_40B5
from .modes import (ALL_MODES, HTTP10_MODE, HTTP11_PERSISTENT,
                    HTTP11_PIPELINED, HTTP11_PIPELINED_COMPRESSED,
                    ProtocolMode, TABLE_MODES,
                    initial_tuning_client_config)
from .registry import (MODE_ALIASES, MODES, PROFILES, TABLE_CELLS,
                       UnknownNameError, resolve_environment, resolve_mode,
                       resolve_profile, resolve_scenario)
from .render import GIF_DIMENSION_BYTES, RenderMetrics, measure_render
from .runner import (AveragedResult, ExperimentError, RunResult,
                     reset_default_site, run_experiment, run_repeated,
                     warm_default_site)
from .scenarios import FIRST_TIME, REVALIDATE, SCENARIOS, prefill_cache

__all__ = [
    "MODE_ALIASES", "MODES", "PROFILES", "TABLE_CELLS",
    "UnknownNameError", "resolve_environment", "resolve_mode",
    "resolve_profile", "resolve_scenario",
    "BROWSERS", "BrowserProfile", "IE_40B1", "NETSCAPE_40B5",
    "ALL_MODES", "HTTP10_MODE", "HTTP11_PERSISTENT", "HTTP11_PIPELINED",
    "HTTP11_PIPELINED_COMPRESSED", "ProtocolMode", "TABLE_MODES",
    "initial_tuning_client_config",
    "GIF_DIMENSION_BYTES", "RenderMetrics", "measure_render",
    "AveragedResult", "ExperimentError", "RunResult", "run_experiment",
    "run_repeated", "warm_default_site", "reset_default_site",
    "FIRST_TIME", "REVALIDATE", "SCENARIOS", "prefill_cache",
]
