"""Experiment core: protocol modes, scenarios, runner, browser profiles.

This is the package that turns the substrates (simulated network, HTTP
layer, clients, servers, content) into the paper's experiments::

    from repro.core import (HTTP11_PIPELINED, FIRST_TIME, run_repeated)
    from repro.server import APACHE
    from repro.simnet import WAN

    row = run_repeated(HTTP11_PIPELINED, FIRST_TIME, WAN, APACHE)
    print(row.packets, row.payload_bytes, row.elapsed,
          row.percent_overhead)
"""

from .browsers import BROWSERS, BrowserProfile, IE_40B1, NETSCAPE_40B5
from .modes import (ALL_MODES, HTTP10_MODE, HTTP11_PERSISTENT,
                    HTTP11_PIPELINED, HTTP11_PIPELINED_COMPRESSED,
                    ProtocolMode, TABLE_MODES,
                    initial_tuning_client_config)
from .render import GIF_DIMENSION_BYTES, RenderMetrics, measure_render
from .runner import (AveragedResult, ExperimentError, RunResult,
                     run_experiment, run_repeated)
from .scenarios import FIRST_TIME, REVALIDATE, SCENARIOS, prefill_cache

__all__ = [
    "BROWSERS", "BrowserProfile", "IE_40B1", "NETSCAPE_40B5",
    "ALL_MODES", "HTTP10_MODE", "HTTP11_PERSISTENT", "HTTP11_PIPELINED",
    "HTTP11_PIPELINED_COMPRESSED", "ProtocolMode", "TABLE_MODES",
    "initial_tuning_client_config",
    "GIF_DIMENSION_BYTES", "RenderMetrics", "measure_render",
    "AveragedResult", "ExperimentError", "RunResult", "run_experiment",
    "run_repeated",
    "FIRST_TIME", "REVALIDATE", "SCENARIOS", "prefill_cache",
]
