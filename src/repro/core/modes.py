"""Protocol modes: the four client configurations of Tables 3–9.

Each mode maps to a :class:`~repro.client.robot.ClientConfig`:

=============================  =====================================
Mode                           Client behaviour
=============================  =====================================
HTTP/1.0                       4 parallel connections, one request
                               each; reval = GET html + HEAD images
HTTP/1.1                       one persistent connection, serialized
HTTP/1.1 Pipelined             one connection, buffered pipelining
HTTP/1.1 Pipelined w. compr.   + ``Accept-Encoding: deflate`` (HTML)
=============================  =====================================
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from ..client.robot import ClientConfig
from ..http import HTTP10, HTTP11

__all__ = ["ProtocolMode", "HTTP10_MODE", "HTTP11_PERSISTENT",
           "HTTP11_PIPELINED", "HTTP11_PIPELINED_COMPRESSED", "ALL_MODES",
           "TABLE_MODES", "initial_tuning_client_config"]


@dataclasses.dataclass(frozen=True)
class ProtocolMode:
    """A named client configuration as the paper's tables label them."""

    name: str
    version: Tuple[int, int]
    parallel_connections: int = 1
    pipeline: bool = False
    compression: bool = False

    def client_config(self, *,
                      flush_timeout: Optional[float] = 0.05,
                      explicit_flush: bool = True,
                      output_buffer_size: int = 1024) -> ClientConfig:
        """Materialize the mode as a robot configuration."""
        if self.version == HTTP10:
            # The HTTP/1.0 client is the *old* libwww (4.1D), whose
            # requests were noticeably fatter than the tuned 5.1
            # robot's ~190 bytes (the paper's byte counts reflect it).
            return ClientConfig(
                http_version=HTTP10,
                max_connections=self.parallel_connections,
                pipeline=False,
                reval_strategy="get-plus-head",
                validator_preference="date",
                user_agent="W3CRobot/4.1D libwww/4.1D",
                extra_headers=(
                    ("Accept", "image/gif"),
                    ("Accept", "image/x-xbitmap"),
                    ("Accept", "image/jpeg"),
                    ("Accept", "image/pjpeg"),
                    ("Accept", "text/html"),
                    ("Accept", "text/plain"),
                    ("Accept-Language", "en"),
                    ("Accept-Charset", "iso-8859-1,*,utf-8"),
                ))
        return ClientConfig(
            http_version=HTTP11,
            max_connections=self.parallel_connections,
            pipeline=self.pipeline,
            accept_deflate=self.compression,
            output_buffer_size=output_buffer_size,
            flush_timeout=flush_timeout,
            explicit_flush=explicit_flush,
            reval_strategy="conditional",
            validator_preference="etag")


def initial_tuning_client_config(mode: "ProtocolMode") -> ClientConfig:
    """The robot as configured for the paper's *initial* tests (Table 3).

    Three differences from the final runs:

    * revalidation still uses the old GET-the-HTML-plus-HEAD-the-images
      profile ("rather than the HEAD requests used in our HTTP/1.0
      version" — the If-None-Match change came *after* initial tuning),
    * the pipeline flush timer is 1 second ("initially we used a 1
      second delay"), with no application-level explicit flush yet,
    * each response pays the libwww persistent-cache overhead — "each
      cached object contains two independent files ... the overhead in
      our implementation became a performance bottleneck in our
      HTTP/1.1 tests" — modelled as ~65 ms of client CPU per object
      (two synchronous file operations on a 1997 disk).  The final
      runs moved the cache to a memory filesystem.
    """
    if mode.version == HTTP10:
        # The HTTP/1.0 robot (libwww 4.1D) had no persistent cache.
        return HTTP10_MODE.client_config()
    return ClientConfig(
        http_version=HTTP11,
        max_connections=1,
        pipeline=mode.pipeline,
        flush_timeout=1.0,
        explicit_flush=False,
        reval_strategy="get-plus-head",
        validator_preference="date",
        per_response_cpu=0.065)


#: Plain HTTP/1.0 with the Navigator default of 4 parallel connections.
HTTP10_MODE = ProtocolMode("HTTP/1.0", HTTP10, parallel_connections=4)

#: HTTP/1.1 persistent connection, strictly serialized requests.
HTTP11_PERSISTENT = ProtocolMode("HTTP/1.1", HTTP11)

#: HTTP/1.1 with buffered pipelining.
HTTP11_PIPELINED = ProtocolMode("HTTP/1.1 Pipelined", HTTP11,
                                pipeline=True)

#: Pipelining plus deflate transport compression of the HTML.
HTTP11_PIPELINED_COMPRESSED = ProtocolMode(
    "HTTP/1.1 Pipelined w. compression", HTTP11, pipeline=True,
    compression=True)

#: The four rows of Tables 4–7 (Tables 8–9 omit HTTP/1.0 on PPP).
ALL_MODES = (HTTP10_MODE, HTTP11_PERSISTENT, HTTP11_PIPELINED,
             HTTP11_PIPELINED_COMPRESSED)

#: Rows used for the PPP tables (the paper did not run HTTP/1.0 there).
TABLE_MODES = {
    "LAN": ALL_MODES,
    "WAN": ALL_MODES,
    "PPP": (HTTP11_PERSISTENT, HTTP11_PIPELINED,
            HTTP11_PIPELINED_COMPRESSED),
}
