"""Protocol modes: the paper's four configurations plus the moderns.

Each mode pairs a table label with a :class:`~repro.core.transport.
Transport` strategy that owns client configuration and server wiring:

=============================  =====================================
Mode                           Client behaviour
=============================  =====================================
HTTP/1.0                       4 parallel connections, one request
                               each; reval = GET html + HEAD images
HTTP/1.1                       one persistent connection, serialized
HTTP/1.1 Pipelined             one connection, buffered pipelining
HTTP/1.1 Pipelined w. compr.   + ``Accept-Encoding: deflate`` (HTML)
HTTP/MUX                       one connection, interleaved framed
                               streams with per-stream flow control
HTTP/MUX Push                  + server speculatively pushes the
                               inline GIFs (client cancels dupes)
HTTP/1.1 Sharded x4            content hashed over 4 origins, 2
                               redundant connections each
=============================  =====================================

Modes self-register through :func:`repro.core.registry.register_mode`,
which is how they appear in ``resolve_mode``, the matrix engine, the
chaos planner and the report tables; third-party extensions register
the same way.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Optional, Tuple

from ..client.robot import ClientConfig
from ..http import HTTP10, HTTP11
from .transport import (Http10Transport, Http11Transport, ModeTuning,
                        MuxTransport, ShardedTransport, Transport)
from .registry import register_mode

__all__ = ["ProtocolMode", "ModeTuning", "HTTP10_MODE", "HTTP11_PERSISTENT",
           "HTTP11_PIPELINED", "HTTP11_PIPELINED_COMPRESSED", "HTTP_MUX",
           "HTTP_MUX_PUSH", "HTTP11_SHARDED", "ALL_MODES", "MODERN_MODES",
           "TABLE_MODES", "initial_tuning_client_config"]

#: Sentinel distinguishing "not passed" from an explicit None.
_UNSET = object()


@dataclasses.dataclass(frozen=True)
class ProtocolMode:
    """A named client configuration as the paper's tables label them."""

    name: str
    version: Tuple[int, int]
    parallel_connections: int = 1
    pipeline: bool = False
    compression: bool = False
    #: The strategy that turns this mode into wire behaviour.  Defaults
    #: by HTTP version so the legacy constructor calls keep working.
    transport: Optional[Transport] = None

    def __post_init__(self) -> None:
        if self.transport is None:
            default = (Http10Transport() if self.version == HTTP10
                       else Http11Transport())
            object.__setattr__(self, "transport", default)

    def client_config(self, *, tuning: Optional[ModeTuning] = None,
                      flush_timeout=_UNSET, explicit_flush=_UNSET,
                      output_buffer_size=_UNSET) -> ClientConfig:
        """Materialize the mode as a client configuration.

        Tuning knobs travel as one :class:`ModeTuning`; the three old
        loose keywords still work behind a deprecation shim.
        """
        legacy = {name: value for name, value in (
            ("flush_timeout", flush_timeout),
            ("explicit_flush", explicit_flush),
            ("output_buffer_size", output_buffer_size),
        ) if value is not _UNSET}
        if legacy:
            if tuning is not None:
                raise TypeError("pass either tuning= or the legacy "
                                "keywords, not both")
            warnings.warn(
                "client_config(flush_timeout=..., explicit_flush=..., "
                "output_buffer_size=...) is deprecated; pass "
                "tuning=ModeTuning(...) instead", DeprecationWarning,
                stacklevel=2)
            tuning = ModeTuning(**legacy)
        return self.transport.client_config(self, tuning or ModeTuning())


def initial_tuning_client_config(mode: "ProtocolMode") -> ClientConfig:
    """The robot as configured for the paper's *initial* tests (Table 3).

    Three differences from the final runs:

    * revalidation still uses the old GET-the-HTML-plus-HEAD-the-images
      profile ("rather than the HEAD requests used in our HTTP/1.0
      version" — the If-None-Match change came *after* initial tuning),
    * the pipeline flush timer is 1 second ("initially we used a 1
      second delay"), with no application-level explicit flush yet,
    * each response pays the libwww persistent-cache overhead — "each
      cached object contains two independent files ... the overhead in
      our implementation became a performance bottleneck in our
      HTTP/1.1 tests" — modelled as ~65 ms of client CPU per object
      (two synchronous file operations on a 1997 disk).  The final
      runs moved the cache to a memory filesystem.
    """
    if mode.version == HTTP10:
        # The HTTP/1.0 robot (libwww 4.1D) had no persistent cache.
        return HTTP10_MODE.client_config()
    return ClientConfig(
        http_version=HTTP11,
        max_connections=1,
        pipeline=mode.pipeline,
        flush_timeout=1.0,
        explicit_flush=False,
        reval_strategy="get-plus-head",
        validator_preference="date",
        per_response_cpu=0.065)


#: Plain HTTP/1.0 with the Navigator default of 4 parallel connections.
HTTP10_MODE = ProtocolMode("HTTP/1.0", HTTP10, parallel_connections=4)

#: HTTP/1.1 persistent connection, strictly serialized requests.
HTTP11_PERSISTENT = ProtocolMode("HTTP/1.1", HTTP11)

#: HTTP/1.1 with buffered pipelining.
HTTP11_PIPELINED = ProtocolMode("HTTP/1.1 Pipelined", HTTP11,
                                pipeline=True)

#: Pipelining plus deflate transport compression of the HTML.
HTTP11_PIPELINED_COMPRESSED = ProtocolMode(
    "HTTP/1.1 Pipelined w. compression", HTTP11, pipeline=True,
    compression=True)

#: Multiplexed streams over one TCP connection (HTTP/2-shaped framing).
HTTP_MUX = ProtocolMode("HTTP/MUX", HTTP11, transport=MuxTransport())

#: MUX plus speculative server push of the inline images.
HTTP_MUX_PUSH = ProtocolMode("HTTP/MUX Push", HTTP11,
                             transport=MuxTransport(server_push=True))

#: Domain sharding: 4 origins, 2 redundant connections per origin.
HTTP11_SHARDED = ProtocolMode(
    "HTTP/1.1 Sharded x4", HTTP11, parallel_connections=8,
    transport=ShardedTransport(shards=4, connections_per_shard=2))

#: Deprecated alias: the four rows of Tables 4–7 as a literal tuple.
#: New code should call ``registry.modes_for_environment(env)``.
ALL_MODES = (HTTP10_MODE, HTTP11_PERSISTENT, HTTP11_PIPELINED,
             HTTP11_PIPELINED_COMPRESSED)

#: The post-paper modes (ROADMAP item 1).
MODERN_MODES = (HTTP_MUX, HTTP_MUX_PUSH, HTTP11_SHARDED)

register_mode(HTTP10_MODE, aliases=("http/1.0", "1.0"),
              paper_environments=("LAN", "WAN"))
register_mode(HTTP11_PERSISTENT,
              aliases=("http/1.1", "1.1", "persistent"),
              paper_environments=("LAN", "WAN", "PPP"))
register_mode(HTTP11_PIPELINED, aliases=("pipelined", "pipeline"),
              paper_environments=("LAN", "WAN", "PPP"))
register_mode(HTTP11_PIPELINED_COMPRESSED,
              aliases=("compressed", "pipelined-compressed"),
              paper_environments=("LAN", "WAN", "PPP"))
register_mode(HTTP_MUX, aliases=("mux", "http/mux", "h2", "multiplexed"))
register_mode(HTTP_MUX_PUSH, aliases=("mux-push", "push"))
register_mode(HTTP11_SHARDED, aliases=("sharded", "sharded-x4"))


class _TableModesAlias:
    """Deprecated mapping façade over ``modes_for_environment``.

    Kept so ``TABLE_MODES["PPP"]`` and friends keep answering with the
    paper's table rows while the registry owns the truth.
    """

    _ENVIRONMENTS = ("LAN", "WAN", "PPP")

    def __getitem__(self, environment: str) -> Tuple[ProtocolMode, ...]:
        from .registry import modes_for_environment
        return modes_for_environment(environment, paper_only=True)

    def __iter__(self):
        return iter(self._ENVIRONMENTS)

    def __len__(self) -> int:
        return len(self._ENVIRONMENTS)

    def __contains__(self, environment: object) -> bool:
        return environment in self._ENVIRONMENTS

    def keys(self):
        return self._ENVIRONMENTS

    def items(self):
        return [(env, self[env]) for env in self._ENVIRONMENTS]


#: Deprecated alias: rows of the paper's tables by environment (the
#: paper did not run HTTP/1.0 on PPP).  Use
#: ``registry.modes_for_environment(env, paper_only=True)``.
TABLE_MODES = _TableModesAlias()
