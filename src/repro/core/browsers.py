"""Product-browser profiles for Tables 10 and 11.

The paper compares the tuned libwww robot against the two dominant 1997
browsers on the PPP link: **Netscape Navigator 4.0 beta 5** and
**Microsoft Internet Explorer 4.0 beta 1** (both on Windows NT).  Both
speak HTTP/1.0 with ``Connection: Keep-Alive`` over up to four parallel
connections and send noticeably more request-header bytes than the
robot's ~190-byte requests.

The revalidation asymmetry the tables show is reproduced mechanically:

* **Navigator** validates with ``If-Modified-Since``, falling back to
  the stored response ``Date`` when the server sent no
  ``Last-Modified`` — so it gets 304s from Jigsaw (which omits
  ``Last-Modified``) as well as Apache.
* **Internet Explorer** has no date fallback; without a validator it
  checks image metadata with HEAD requests — and Jigsaw drops HTTP/1.0
  keep-alive after a HEAD, so against Jigsaw IE pays a fresh TCP
  connection per image (Table 10's 301 packets and ~61 KB, versus 117
  packets / ~23 KB against Apache in Table 11).
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

from ..client.robot import ClientConfig
from ..http import HTTP10

__all__ = ["BrowserProfile", "NETSCAPE_40B5", "IE_40B1", "BROWSERS"]


@dataclasses.dataclass(frozen=True)
class BrowserProfile:
    """A named browser configuration for the comparison tables."""

    name: str
    user_agent: str
    extra_headers: Tuple[Tuple[str, str], ...]
    reval_strategy: str
    allow_date_fallback: bool
    max_connections: int = 4

    def client_config(self) -> ClientConfig:
        """Materialize as a robot configuration."""
        return ClientConfig(
            http_version=HTTP10,
            max_connections=self.max_connections,
            keep_alive=True,
            pipeline=False,
            reval_strategy=self.reval_strategy,
            validator_preference="date",
            allow_date_fallback=self.allow_date_fallback,
            user_agent=self.user_agent,
            extra_headers=self.extra_headers,
            per_response_cpu=0.004)


NETSCAPE_40B5 = BrowserProfile(
    name="Netscape Navigator",
    user_agent="Mozilla/4.0b5 [en] (WinNT; I)",
    extra_headers=(
        ("Accept", "image/gif, image/x-xbitmap, image/jpeg, "
                   "image/pjpeg, */*"),
        ("Accept-Language", "en"),
        ("Accept-Charset", "iso-8859-1,*,utf-8"),
    ),
    reval_strategy="conditional-or-head",
    allow_date_fallback=True,
)

IE_40B1 = BrowserProfile(
    name="Internet Explorer",
    user_agent="Mozilla/4.0 (compatible; MSIE 4.0b1; Windows NT)",
    extra_headers=(
        ("Accept", "*/*"),
        ("Accept-Language", "en-us"),
        ("UA-pixels", "1024x768"),
        ("UA-color", "color8"),
        ("UA-OS", "Windows NT"),
        ("UA-CPU", "x86"),
    ),
    reval_strategy="conditional-or-head",
    allow_date_fallback=False,
)

#: Table row order.
BROWSERS = (NETSCAPE_40B5, IE_40B1)
