"""A real-socket HTTP client with persistent connections and pipelining.

The blocking counterpart of the simulated robot, for localhost
integration tests and demos: one TCP connection, requests optionally
batched into a single write (pipelining), responses parsed with the
same incremental :class:`~repro.http.parser.ResponseParser`, validators
and deflate handled like the robot does.
"""

from __future__ import annotations

import socket
import zlib
from typing import Iterable, List, Optional, Sequence, Tuple

from ..http import (HTTP11, Headers, MemoryCache, Request, Response,
                    ResponseParser)

__all__ = ["RealHttpClient"]


class RealHttpClient:
    """A persistent-connection HTTP client over real sockets.

    >>> client = RealHttpClient(host, port)           # doctest: +SKIP
    >>> response = client.get("/home.html")           # doctest: +SKIP
    >>> responses = client.pipeline(["/a.gif", "/b.gif"])  # doctest: +SKIP
    """

    __slots__ = ("host", "port", "user_agent", "timeout", "cache",
                 "_socket", "_parser", "connections_opened")

    def __init__(self, host: str, port: int, *,
                 user_agent: str = "repro-realnet/1.0",
                 timeout: float = 5.0,
                 cache: Optional[MemoryCache] = None) -> None:
        self.host = host
        self.port = port
        self.user_agent = user_agent
        self.timeout = timeout
        self.cache = cache if cache is not None else MemoryCache()
        self._socket: Optional[socket.socket] = None
        self._parser = ResponseParser()
        #: Connections opened over this client's lifetime.
        self.connections_opened = 0

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def _connect(self) -> socket.socket:
        if self._socket is None:
            sock = socket.create_connection((self.host, self.port),
                                            timeout=self.timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._socket = sock
            self._parser = ResponseParser()
            self.connections_opened += 1
        return self._socket

    def close(self) -> None:
        """Close the persistent connection (if open)."""
        if self._socket is not None:
            self._socket.close()
            self._socket = None

    def __enter__(self) -> "RealHttpClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def build_request(self, url: str, *, method: str = "GET",
                      conditional: bool = False,
                      accept_deflate: bool = False,
                      accept_delta: bool = False,
                      headers: Iterable[Tuple[str, str]] = ()) -> Request:
        """Construct a request like the tuned robot would.

        ``accept_delta`` advertises delta support (``A-IM``) alongside
        the conditional validator: an unchanged resource costs a 304, a
        changed one costs only its difference (226 IM Used).
        """
        header_list = Headers([("Host", f"{self.host}:{self.port}"),
                               ("User-Agent", self.user_agent),
                               ("Accept", "*/*")])
        for name, value in headers:
            header_list.add(name, value)
        if accept_deflate:
            header_list.add("Accept-Encoding", "deflate")
        if conditional or accept_delta:
            for name, value in self.cache.conditional_headers(url):
                header_list.add(name, value)
        if accept_delta:
            from ..http.delta import DELTA_IM_TOKEN
            header_list.add("A-IM", DELTA_IM_TOKEN)
        return Request(method, url, HTTP11, header_list)

    def get(self, url: str, **kwargs) -> Response:
        """One GET over the persistent connection."""
        return self.request(self.build_request(url, **kwargs))

    def request(self, request: Request) -> Response:
        """Send one request and read its response."""
        return self.pipeline_requests([request])[0]

    def pipeline(self, urls: Sequence[str], **kwargs) -> List[Response]:
        """Pipeline GETs for ``urls`` in one batched write."""
        return self.pipeline_requests(
            [self.build_request(url, **kwargs) for url in urls])

    def pipeline_requests(self,
                          requests: Sequence[Request]) -> List[Response]:
        """Send all ``requests`` back to back, then collect responses.

        If the server closes mid-pipeline (e.g. a request cap), the
        remaining requests are re-issued on a fresh connection — the
        same recovery the simulated robot implements.
        """
        pending = list(requests)
        responses: List[Response] = []
        attempts = 0
        while pending:
            attempts += 1
            if attempts > len(requests) + 4:
                raise ConnectionError("server keeps closing mid-pipeline")
            sock = self._connect()
            for request in pending:
                self._parser.expect(request.method)
            sock.sendall(b"".join(r.to_bytes() for r in pending))
            got = self._read_responses(len(pending))
            for request, response in zip(pending, got):
                responses.append(self._postprocess(request, response))
            pending = pending[len(got):]
            if pending:
                self.close()    # retry leftovers on a new connection
        return responses

    def _read_responses(self, expected: int) -> List[Response]:
        assert self._socket is not None
        out: List[Response] = []
        closed = False
        while len(out) < expected:
            try:
                data = self._socket.recv(65536)
            except socket.timeout:
                break
            if not data:
                final = self._parser.eof()
                if final is not None:
                    out.append(final)
                closed = True
                break
            out.extend(self._parser.feed(data))
        if closed or any(not r.allows_keep_alive() for r in out):
            self.close()
        return out

    def _postprocess(self, request: Request,
                     response: Response) -> Response:
        if response.headers.get("Content-Encoding") == "deflate" \
                and response.status == 200:
            import dataclasses
            response = dataclasses.replace(
                response, body=zlib.decompress(response.body))
            response.headers.remove("Content-Encoding")
        if response.status == 226 and request.method == "GET":
            import dataclasses
            from ..http.delta import apply_delta_response
            entry = self.cache.get(request.target)
            body = apply_delta_response(entry, response)
            headers = response.headers.copy()
            headers.remove("IM")
            headers.remove("Delta-Base")
            headers.set("Content-Length", str(len(body)))
            reconstructed = dataclasses.replace(
                response, status=200, headers=headers, body=body,
                reason="OK")
            self.cache.store(request.target, reconstructed)
            return dataclasses.replace(response, body=body)
        if request.method == "GET":
            if response.status == 304:
                entry = self.cache.get(request.target)
                if entry is not None:
                    import dataclasses
                    response = dataclasses.replace(response,
                                                   body=entry.body)
                self.cache.validations += 0   # counted in handle_response
            elif response.status == 200:
                self.cache.store(request.target, response)
        return response
