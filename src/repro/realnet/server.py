"""A real-socket HTTP/1.0 + HTTP/1.1 server.

The simulated server (:mod:`repro.server`) produces the paper's packet
counts; this one serves the same :class:`~repro.server.static.ResourceStore`
with the same response-construction logic over genuine TCP sockets, so
the protocol implementation can be exercised end to end on localhost —
persistent connections, pipelining, validators, ranges, deflate, and
the careful half-close discipline, with ``TCP_NODELAY`` set as the
paper recommends.

Threading model: one accept thread plus one thread per connection
(entirely adequate for tests and demos; the 1997 servers were similar).
"""

from __future__ import annotations

import socket
import threading
from typing import Callable, Optional, Tuple

from ..http import (HTTP11, ParseError, RequestParser, Response,
                    format_http_date)
from ..server.profiles import APACHE, ServerProfile
from ..server.static import ResourceStore, build_response

import time

__all__ = ["RealHttpServer"]


class RealHttpServer:
    """Serve a resource store over real sockets.

    Usage::

        with RealHttpServer(store) as server:
            client = RealHttpClient(*server.address)
            ...

    Parameters mirror the simulated server where meaningful; CPU-cost
    modelling does not apply here.
    """

    __slots__ = ("store", "profile", "clock", "_listen_address",
                 "_socket", "_accept_thread", "_running", "_lock",
                 "requests_served", "connections_accepted")

    def __init__(self, store: ResourceStore,
                 profile: ServerProfile = APACHE,
                 host: str = "127.0.0.1", port: int = 0,
                 clock: Callable[[], float] = time.time) -> None:
        self.store = store
        self.profile = profile
        #: Source of Date-header timestamps; inject a fake for
        #: deterministic tests.
        self.clock = clock
        self._listen_address = (host, port)
        self._socket: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._running = False
        self._lock = threading.Lock()
        #: Statistics (guarded by _lock).
        self.requests_served = 0
        self.connections_accepted = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "RealHttpServer":
        """Bind, listen and start accepting."""
        if self._running:
            raise RuntimeError("server already running")
        self._socket = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._socket.bind(self._listen_address)
        self._socket.listen(16)
        self._socket.settimeout(0.2)
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-http-accept",
            daemon=True)
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting and close the listening socket."""
        self._running = False
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
            self._accept_thread = None
        if self._socket is not None:
            self._socket.close()
            self._socket = None

    def __enter__(self) -> "RealHttpServer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port)."""
        if self._socket is None:
            raise RuntimeError("server not started")
        return self._socket.getsockname()

    # ------------------------------------------------------------------
    # Accepting and serving
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._socket is not None
        while self._running:
            try:
                conn, _peer = self._socket.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            with self._lock:
                self.connections_accepted += 1
            thread = threading.Thread(target=self._serve_connection,
                                      args=(conn,), daemon=True)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY,
                        1 if self.profile.nodelay else 0)
        conn.settimeout(5.0)
        parser = RequestParser()
        requests_seen = 0
        try:
            while True:
                try:
                    data = conn.recv(65536)
                except socket.timeout:
                    break
                if not data:
                    break
                try:
                    requests = parser.feed(data)
                except ParseError:
                    from ..http import Headers
                    conn.sendall(Response(
                        400, (1, 0), Headers([("Content-Length", "0")]),
                        request_method="GET").to_bytes())
                    break
                # Aggregate every response for this batch of pipelined
                # requests into one send (the paper's server-side
                # response buffering).
                out = bytearray()
                close_after = False
                for request in requests:
                    requests_seen += 1
                    response = build_response(
                        self.store, request, self.profile,
                        date_header=format_http_date(self.clock()))
                    limit = self.profile.max_requests_per_connection
                    at_limit = (limit is not None
                                and requests_seen >= limit)
                    if request.version >= HTTP11:
                        keep = request.wants_keep_alive() and not at_limit
                        if not keep:
                            response.headers.add("Connection", "close")
                    else:
                        keep = request.wants_keep_alive() and not at_limit
                        if keep:
                            response.headers.add("Connection",
                                                 "Keep-Alive")
                    out.extend(response.to_bytes())
                    with self._lock:
                        self.requests_served += 1
                    if not keep:
                        close_after = True
                        break
                if out:
                    conn.sendall(bytes(out))
                if close_after:
                    # Careful close: shut down the send side only, then
                    # drain the receive side so late pipelined requests
                    # are ACKed rather than RST.
                    conn.shutdown(socket.SHUT_WR)
                    try:
                        while conn.recv(65536):
                            pass
                    except OSError:
                        pass
                    break
        finally:
            conn.close()
