"""Real-socket HTTP implementations (localhost integration layer).

The simulator measures packets; this package proves the protocol code
runs over genuine TCP: a threaded :class:`RealHttpServer` serving the
same resource stores with the same response logic, and a pipelining
:class:`RealHttpClient` sharing the robot's parser, cache and deflate
handling.
"""

from .client import RealHttpClient
from .server import RealHttpServer

__all__ = ["RealHttpClient", "RealHttpServer"]
