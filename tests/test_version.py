"""The packaging metadata and the library must agree on the version."""

import pathlib
import re

import repro

_ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_pyproject_version_matches_package():
    pyproject = (_ROOT / "pyproject.toml").read_text(encoding="utf-8")
    match = re.search(r'^version\s*=\s*"([^"]+)"', pyproject,
                      flags=re.MULTILINE)
    assert match is not None, "no version field in pyproject.toml"
    assert match.group(1) == repro.__version__
