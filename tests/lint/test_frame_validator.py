"""Frame-stream legality and the per-mode trace rules.

The :class:`FrameStreamValidator` sees the MUX frame taps; the
:class:`ModeTraceRules` ride the packet-level :func:`validate_trace_text`
path.  Both accept the captured golden behaviour and reject mutations.
"""

import pathlib

from repro.http.framing import (F_CANCEL, F_DATA, F_END_STREAM, F_HEADERS,
                                F_PUSH_PROMISE, F_WINDOW_UPDATE,
                                INITIAL_STREAM_WINDOW, encode_window_update,
                                FRAME_HEADER_SIZE)
from repro.lint import (FrameStreamValidator, ModeTraceRules,
                        SanitizerConfig, validate_trace_text)

FIXTURES = pathlib.Path(__file__).resolve().parents[1] \
    / "simnet" / "fixtures"


def rules_of(violations):
    return [violation.rule for violation in violations]


# ----------------------------------------------------------------------
# FrameStreamValidator: legal exchanges pass
# ----------------------------------------------------------------------
def test_plain_request_response_exchange_is_clean():
    v = FrameStreamValidator()
    v.observe(0.0, "c>s", F_HEADERS, 1, b"GET / HTTP/1.1\r\n\r\n")
    v.observe(0.1, "s>c", F_HEADERS, 1, b"HTTP/1.1 200 OK\r\n\r\n")
    v.observe(0.2, "s>c", F_DATA, 1, b"x" * 4096)
    v.observe(0.3, "s>c", F_END_STREAM, 1)
    assert v.finish(0.4) == []
    assert v.violations == []


def test_window_update_extends_the_credit():
    v = FrameStreamValidator()
    v.observe(0.0, "c>s", F_HEADERS, 1, b"head")
    v.observe(0.1, "s>c", F_DATA, 1, b"x" * INITIAL_STREAM_WINDOW)
    grant = encode_window_update(1, 4096)[FRAME_HEADER_SIZE:]
    v.observe(0.2, "c>s", F_WINDOW_UPDATE, 1, grant)
    v.observe(0.3, "s>c", F_DATA, 1, b"x" * 4096)
    v.observe(0.4, "s>c", F_END_STREAM, 1)
    assert v.finish(0.5) == []


def test_push_after_request_is_legal_when_allowed():
    v = FrameStreamValidator(push_allowed=True)
    v.observe(0.0, "c>s", F_HEADERS, 1, b"GET /")
    v.observe(0.1, "s>c", F_PUSH_PROMISE, 2, b"/gif/i0")
    v.observe(0.2, "s>c", F_HEADERS, 2, b"HTTP/1.1 200 OK\r\n\r\n")
    v.observe(0.3, "s>c", F_END_STREAM, 2)
    v.observe(0.4, "s>c", F_HEADERS, 1, b"HTTP/1.1 200 OK\r\n\r\n")
    v.observe(0.5, "s>c", F_END_STREAM, 1)
    assert v.finish(0.6) == []


def test_cancelled_stream_tolerates_crossing_frames():
    v = FrameStreamValidator(push_allowed=True)
    v.observe(0.0, "c>s", F_HEADERS, 1, b"GET /")
    v.observe(0.1, "s>c", F_PUSH_PROMISE, 2, b"/gif/i0")
    v.observe(0.2, "c>s", F_CANCEL, 2)
    # DATA already in flight when the CANCEL crossed it: not a fault.
    v.observe(0.3, "s>c", F_DATA, 2, b"x" * 100)
    v.observe(0.4, "s>c", F_HEADERS, 1, b"HTTP/1.1 200 OK\r\n\r\n")
    v.observe(0.5, "s>c", F_END_STREAM, 1)
    assert v.finish(0.6) == []


# ----------------------------------------------------------------------
# FrameStreamValidator: mutations are rejected
# ----------------------------------------------------------------------
def test_push_before_any_request_is_rejected():
    v = FrameStreamValidator(push_allowed=True)
    new = v.observe(0.0, "s>c", F_PUSH_PROMISE, 2, b"/gif/i0")
    assert "push-before-request" in rules_of(new)


def test_push_in_a_pushless_mode_is_rejected():
    v = FrameStreamValidator(push_allowed=False)
    v.observe(0.0, "c>s", F_HEADERS, 1, b"GET /")
    new = v.observe(0.1, "s>c", F_PUSH_PROMISE, 2, b"/gif/i0")
    assert "push-not-allowed" in rules_of(new)


def test_even_or_stale_client_stream_ids_are_rejected():
    v = FrameStreamValidator()
    assert "stream-id" in rules_of(
        v.observe(0.0, "c>s", F_HEADERS, 2, b"GET /"))
    v2 = FrameStreamValidator()
    v2.observe(0.0, "c>s", F_HEADERS, 3, b"GET /a")
    assert "stream-id" in rules_of(
        v2.observe(0.1, "c>s", F_HEADERS, 1, b"GET /b"))


def test_data_overrunning_the_window_is_rejected():
    v = FrameStreamValidator()
    v.observe(0.0, "c>s", F_HEADERS, 1, b"GET /")
    new = v.observe(0.1, "s>c", F_DATA, 1,
                    b"x" * (INITIAL_STREAM_WINDOW + 1))
    assert "flow-window" in rules_of(new)


def test_frames_on_unopened_or_ended_streams_are_rejected():
    v = FrameStreamValidator()
    assert "frame-unopened" in rules_of(
        v.observe(0.0, "s>c", F_DATA, 5, b"x"))
    v.observe(0.1, "c>s", F_HEADERS, 1, b"GET /")
    v.observe(0.2, "s>c", F_END_STREAM, 1)
    assert "frame-after-end" in rules_of(
        v.observe(0.3, "s>c", F_DATA, 1, b"x"))


def test_dangling_stream_is_reported_at_finish():
    v = FrameStreamValidator()
    v.observe(0.0, "c>s", F_HEADERS, 1, b"GET /")
    assert "stream-unfinished" in rules_of(v.finish(1.0))


# ----------------------------------------------------------------------
# ModeTraceRules over the captured golden traces
# ----------------------------------------------------------------------
def _golden(name):
    return (FIXTURES / name).read_text(encoding="utf-8")


def test_mux_trace_satisfies_the_single_connection_rule():
    config = SanitizerConfig(
        mode_rules=ModeTraceRules(min_connections=1, max_connections=1))
    assert validate_trace_text(_golden("golden_mux_wan.trace"),
                               config) == []


def test_sharded_trace_satisfies_its_port_contract():
    config = SanitizerConfig(
        mode_rules=ModeTraceRules(required_ports=(80, 81, 82, 83),
                                  max_handshakes_per_port=2))
    assert validate_trace_text(_golden("golden_sharded-x4_wan.trace"),
                               config) == []


def test_mode_rules_reject_too_few_connections():
    config = SanitizerConfig(
        mode_rules=ModeTraceRules(min_connections=2))
    violations = validate_trace_text(_golden("golden_mux_wan.trace"),
                                     config)
    assert "mode-rules" in rules_of(violations)


def test_mode_rules_reject_too_many_connections():
    config = SanitizerConfig(
        mode_rules=ModeTraceRules(max_connections=4))
    violations = validate_trace_text(
        _golden("golden_sharded-x4_wan.trace"), config)
    assert "mode-rules" in rules_of(violations)


def test_mode_rules_reject_a_missing_origin_port():
    config = SanitizerConfig(
        mode_rules=ModeTraceRules(required_ports=(8080,)))
    violations = validate_trace_text(_golden("golden_mux_wan.trace"),
                                     config)
    assert "mode-rules" in rules_of(violations)


def test_mode_rules_reject_a_busted_handshake_budget():
    config = SanitizerConfig(
        mode_rules=ModeTraceRules(max_handshakes_per_port=1))
    violations = validate_trace_text(
        _golden("golden_sharded-x4_wan.trace"), config)
    assert "mode-rules" in rules_of(violations)


def test_faulty_run_config_drops_the_mode_rules():
    base = SanitizerConfig(
        mode_rules=ModeTraceRules(max_connections=1))
    assert SanitizerConfig.for_faulty_run(base).mode_rules is None
