"""The whole-program graph: modules, imports, call edges, reachability."""

import textwrap

from repro.lint.graph import build_graph


def _write(tmp_path, name, source):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")


def _project(tmp_path):
    _write(tmp_path, "pkg/__init__.py", "")
    _write(tmp_path, "pkg/util.py", """\
        def helper(x):
            return x + 1

        class Widget:
            def __init__(self, size):
                self.size = size

            def resize(self, size):
                self.size = self.grow(size)

            def grow(self, size):
                return helper(size)
        """)
    _write(tmp_path, "pkg/app.py", """\
        from .util import Widget, helper

        STATE = {}

        def main(n):
            w = Widget(n)
            w.resize(n)
            return helper(n)

        def untouched():
            STATE["k"] = 1
        """)
    return build_graph(tmp_path)


def test_module_table_uses_package_relative_names(tmp_path):
    graph = _project(tmp_path)
    assert {"pkg", "pkg.util", "pkg.app"} <= set(graph.modules)


def test_relative_from_import_resolves(tmp_path):
    graph = _project(tmp_path)
    imports = graph.modules["pkg.app"].imports
    assert imports["Widget"] == ("pkg.util", "Widget")
    assert imports["helper"] == ("pkg.util", "helper")


def test_plain_name_call_resolves_to_imported_function(tmp_path):
    graph = _project(tmp_path)
    main = graph.functions["pkg.app:main"]
    targets = {t for call in main.calls for t in call.targets}
    assert "pkg.util:helper" in targets


def test_class_construction_dispatches_init(tmp_path):
    graph = _project(tmp_path)
    main = graph.functions["pkg.app:main"]
    by_raw = {call.raw: call.targets for call in main.calls}
    assert by_raw["Widget"] == ("pkg.util:Widget.__init__",)


def test_self_method_call_resolves_in_class(tmp_path):
    graph = _project(tmp_path)
    resize = graph.functions["pkg.util:Widget.resize"]
    targets = {t for call in resize.calls for t in call.targets}
    assert "pkg.util:Widget.grow" in targets


def test_attribute_call_falls_back_to_name_matching(tmp_path):
    graph = _project(tmp_path)
    main = graph.functions["pkg.app:main"]
    by_raw = {call.raw: call.targets for call in main.calls}
    assert by_raw["w.resize"] == ("pkg.util:Widget.resize",)


def test_reachability_follows_resolved_edges(tmp_path):
    graph = _project(tmp_path)
    reached = graph.reachable(["pkg.app:main"])
    assert {"pkg.app:main", "pkg.util:Widget.__init__",
            "pkg.util:Widget.resize", "pkg.util:Widget.grow",
            "pkg.util:helper"} <= reached
    assert "pkg.app:untouched" not in reached


def test_callers_of_lists_every_dispatch_site(tmp_path):
    graph = _project(tmp_path)
    callers = {fn.qualname
               for fn, _ in graph.callers_of("pkg.util:helper")}
    assert callers == {"pkg.app:main", "pkg.util:Widget.grow"}


def test_module_subscript_write_recorded(tmp_path):
    graph = _project(tmp_path)
    untouched = graph.functions["pkg.app:untouched"]
    assert [name for name, _ in untouched.module_subscript_writes] \
        == ["STATE"]


def test_shadowed_name_is_not_a_module_write(tmp_path):
    _write(tmp_path, "mod.py", """\
        TABLE = {}

        def local_shadow():
            TABLE = {}
            TABLE["k"] = 1
            return TABLE
        """)
    graph = build_graph(tmp_path)
    assert graph.functions["mod:local_shadow"] \
        .module_subscript_writes == []


def test_global_write_requires_assignment(tmp_path):
    _write(tmp_path, "mod.py", """\
        COUNT = 0

        def bump():
            global COUNT
            COUNT += 1

        def reader():
            global COUNT
            return COUNT
        """)
    graph = build_graph(tmp_path)
    assert [n for n, _ in graph.functions["mod:bump"].global_writes] \
        == ["COUNT"]
    assert graph.functions["mod:reader"].global_writes == []


def test_nested_def_calls_fold_into_enclosing_function(tmp_path):
    _write(tmp_path, "mod.py", """\
        def leaf():
            return 1

        def outer():
            def inner():
                return leaf()
            return inner
        """)
    graph = build_graph(tmp_path)
    assert "mod:leaf" in graph.reachable(["mod:outer"])


def test_dataclass_fields_and_lookup(tmp_path):
    _write(tmp_path, "mod.py", """\
        import dataclasses

        @dataclasses.dataclass
        class Spec:
            mode: str = "x"
            seed: int = 0
        """)
    graph = build_graph(tmp_path)
    spec = graph.find_class("Spec")
    assert spec is not None
    assert spec.fields == ("mode", "seed")
    assert spec.is_dataclass


def test_pragma_waives_at_line_and_line_above(tmp_path):
    _write(tmp_path, "mod.py", """\
        import random

        def f(seed):
            rng = random.Random(99)  # repro-lint: allow(rng-seed-origin)
            # repro-lint: allow(pool-global-write)
            return rng
        """)
    graph = build_graph(tmp_path)
    assert graph.waived("mod", "rng-seed-origin", 4)
    assert graph.waived("mod", "pool-global-write", 6)
    assert not graph.waived("mod", "rng-seed-origin", 6)


def test_unparsable_file_is_skipped(tmp_path):
    _write(tmp_path, "ok.py", "def fine():\n    return 0\n")
    _write(tmp_path, "broken.py", "def broken(:\n")
    graph = build_graph(tmp_path)
    assert "ok" in graph.modules
    assert "broken" not in graph.modules
