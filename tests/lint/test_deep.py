"""The flow-aware deep passes: corpus, waivers, baseline plumbing."""

import json
import pathlib
import textwrap

import pytest

from repro.lint import (DeepError, apply_baseline, load_baseline,
                        run_deep, write_baseline)

REPO = pathlib.Path(__file__).resolve().parents[2]
FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "deep"
BASELINE = REPO / "DEEP_BASELINE.json"


def _rules(findings):
    return sorted(f.rule for f in findings)


# ----------------------------------------------------------------------
# The bad_* corpus: one seeded mutation per deep rule
# ----------------------------------------------------------------------

def test_bad_cache_key_corpus():
    findings = run_deep(FIXTURES / "bad_cache_key")
    assert _rules(findings) == ["cache-key-missing", "cache-key-stale",
                                "cache-key-unkeyed-param"]
    by_rule = {f.rule: f.message for f in findings}
    assert "'jitter'" in by_rule["cache-key-missing"]
    assert "'ghost'" in by_rule["cache-key-stale"]
    assert "'turbo'" in by_rule["cache-key-unkeyed-param"]


def test_bad_rng_corpus():
    findings = run_deep(FIXTURES / "bad_rng")
    assert _rules(findings) == ["rng-seed-origin", "rng-seed-origin",
                                "rng-shared-stream"]
    messages = " | ".join(f.message for f in findings)
    assert "fixed_stream()" in messages
    assert "untraceable()" in messages
    assert "shared()" in messages
    # The sanctioned patterns stay clean: seed-derived construction
    # and one private stream per consumer.
    assert "private()" not in messages
    assert "make_link()" not in messages


def test_bad_pool_corpus():
    findings = run_deep(FIXTURES / "bad_pool")
    assert _rules(findings) == ["pool-global-write", "pool-global-write"]
    messages = " | ".join(f.message for f in findings)
    assert "'_COUNT'" in messages
    assert "'_MEMO[...]'" in messages
    # Same writes outside the dispatch's reach are not findings.
    assert "offline_report" not in messages


# ----------------------------------------------------------------------
# Seeded-mutation acceptance: fresh trees, one defect each
# ----------------------------------------------------------------------

def _write(tmp_path, name, source):
    (tmp_path / name).write_text(textwrap.dedent(source),
                                 encoding="utf-8")


def test_new_spec_field_omitted_from_key_is_caught(tmp_path):
    _write(tmp_path, "spec.py", """\
        import dataclasses

        CACHE_KEY_FIELDS = ("mode",)

        @dataclasses.dataclass(frozen=True)
        class ExperimentSpec:
            mode: str = "x"
            shiny: bool = False
        """)
    findings = run_deep(tmp_path)
    assert _rules(findings) == ["cache-key-missing"]
    assert "'shiny'" in findings[0].message


def test_missing_key_constant_is_itself_a_finding(tmp_path):
    _write(tmp_path, "spec.py", """\
        import dataclasses

        @dataclasses.dataclass(frozen=True)
        class ExperimentSpec:
            mode: str = "x"
        """)
    findings = run_deep(tmp_path)
    assert _rules(findings) == ["cache-key-missing"]
    assert "CACHE_KEY_FIELDS" in findings[0].message


def test_constant_seeded_rng_is_caught(tmp_path):
    _write(tmp_path, "noise.py", """\
        import random

        def sample():
            rng = random.Random(7)
            return rng.random()
        """)
    findings = run_deep(tmp_path)
    assert _rules(findings) == ["rng-seed-origin"]


def test_seed_derived_rng_is_clean(tmp_path):
    _write(tmp_path, "noise.py", """\
        import random

        def sample(seed):
            rng = random.Random(seed + 7919)
            return rng.random()
        """)
    assert run_deep(tmp_path) == []


def test_interprocedural_seed_rename_is_accepted(tmp_path):
    _write(tmp_path, "noise.py", """\
        import random

        def sample(entropy):
            return random.Random(entropy).random()

        def drive(seed):
            return sample(seed * 2)
        """)
    assert run_deep(tmp_path) == []


def test_global_write_in_dispatched_function_is_caught(tmp_path):
    _write(tmp_path, "worker.py", """\
        TOTAL = 0

        def _pool_chunk_entry(chunk):
            return [step(item) for item in chunk]

        def step(item):
            global TOTAL
            TOTAL += item
            return TOTAL
        """)
    findings = run_deep(tmp_path)
    assert _rules(findings) == ["pool-global-write"]
    assert "'TOTAL'" in findings[0].message


def test_pragma_waives_deep_finding(tmp_path):
    _write(tmp_path, "noise.py", """\
        import random

        def sample():
            # repro-lint: allow(rng-seed-origin)
            rng = random.Random(7)
            return rng.random()
        """)
    assert run_deep(tmp_path) == []


# ----------------------------------------------------------------------
# The repository's own tree, gated by the committed baseline
# ----------------------------------------------------------------------

def test_src_tree_matches_committed_baseline(monkeypatch):
    monkeypatch.chdir(REPO)
    findings = run_deep("src/repro")
    kept, stale = apply_baseline(findings, load_baseline(BASELINE),
                                 BASELINE)
    assert kept == [], [f.format() for f in kept]
    assert stale == [], [f.format() for f in stale]


def test_deep_findings_are_deterministically_ordered():
    first = run_deep(FIXTURES / "bad_rng")
    second = run_deep(FIXTURES / "bad_rng")
    key = lambda f: (f.path, f.line, f.col, f.rule)
    assert [key(f) for f in first] == [key(f) for f in second]
    assert [key(f) for f in first] == sorted(key(f) for f in first)


# ----------------------------------------------------------------------
# Baseline plumbing
# ----------------------------------------------------------------------

def test_baseline_round_trip(tmp_path):
    findings = run_deep(FIXTURES / "bad_rng")
    path = tmp_path / "baseline.json"
    write_baseline(findings, path)
    kept, stale = apply_baseline(findings, load_baseline(path), path)
    assert kept == []
    assert stale == []


def test_stale_baseline_entry_is_reported(tmp_path):
    findings = run_deep(FIXTURES / "bad_rng")
    path = tmp_path / "baseline.json"
    write_baseline(findings, path)
    baseline = load_baseline(path)
    baseline["deadbeef0000"] = {"rule": "rng-seed-origin",
                                "path": "gone.py"}
    kept, stale = apply_baseline(findings, baseline, path)
    assert kept == []
    assert [f.rule for f in stale] == ["stale-baseline"]
    assert "deadbeef0000" in stale[0].message


def test_finding_id_is_line_independent():
    findings = run_deep(FIXTURES / "bad_pool")
    from repro.lint.findings import Finding
    moved = Finding(path=findings[0].path, line=findings[0].line + 40,
                    col=0, rule=findings[0].rule,
                    message=findings[0].message, hint="")
    assert moved.finding_id == findings[0].finding_id
    assert len(moved.finding_id) == 12
    int(moved.finding_id, 16)


def test_malformed_baseline_raises(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{", encoding="utf-8")
    with pytest.raises(DeepError):
        load_baseline(bad)
    bad.write_text('{"findings": 3}', encoding="utf-8")
    with pytest.raises(DeepError):
        load_baseline(bad)
    bad.write_text('{"findings": [{"rule": "x"}]}', encoding="utf-8")
    with pytest.raises(DeepError):
        load_baseline(bad)
    with pytest.raises(DeepError):
        load_baseline(tmp_path / "missing.json")


def test_root_must_be_a_directory(tmp_path):
    target = tmp_path / "single.py"
    target.write_text("x = 1\n", encoding="utf-8")
    with pytest.raises(DeepError):
        run_deep(target)
