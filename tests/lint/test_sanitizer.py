"""The TCP protocol sanitizer: golden traces, mutations, live mode."""

import pathlib

import pytest

from repro.core import run_experiment
from repro.lint import (InvariantViolationError, LiveSanitizer,
                        SanitizerConfig, TraceValidator,
                        parse_trace_text, validate_records,
                        validate_trace_text)
from repro.server.profiles import NAGLE_STALL_SERVER

GOLDEN_DIR = (pathlib.Path(__file__).resolve().parents[1]
              / "simnet" / "fixtures")
GOLDEN_TRACES = sorted(GOLDEN_DIR.glob("golden_*.trace"))
LOSSY_TRACES = sorted(GOLDEN_DIR.glob("lossy_*.trace"))


# ----------------------------------------------------------------------
# Golden traces replay clean
# ----------------------------------------------------------------------
def test_golden_fixtures_exist():
    # Four legacy modes plus the three post-paper modes.
    assert len(GOLDEN_TRACES) == 7


@pytest.mark.parametrize("trace", GOLDEN_TRACES,
                         ids=lambda p: p.stem)
def test_golden_trace_validates_clean(trace):
    text = trace.read_text(encoding="utf-8")
    violations = validate_trace_text(text, SanitizerConfig())
    assert violations == []


def test_parse_trace_round_trip():
    text = GOLDEN_TRACES[0].read_text(encoding="utf-8")
    records = parse_trace_text(text)
    assert len(records) == len(text.strip().splitlines())
    assert validate_records(records, SanitizerConfig()) == []


# ----------------------------------------------------------------------
# Mutated traces are rejected
# ----------------------------------------------------------------------
def _golden_lines():
    return GOLDEN_TRACES[0].read_text(encoding="utf-8") \
        .strip().splitlines()


def _rules_for(lines):
    violations = validate_trace_text("\n".join(lines) + "\n",
                                     SanitizerConfig())
    return {v.rule for v in violations}


def test_reordered_handshake_rejected():
    lines = _golden_lines()
    lines[0], lines[1] = lines[1], lines[0]
    assert "handshake-order" in _rules_for(lines)


def test_payload_after_fin_rejected():
    lines = _golden_lines()
    # Fabricate a server data segment beyond its FIN.
    lines.append("  5.000000 www26.w3.org:80 > zorch.w3.org:32768 "
                 "[PA] seq=999999 ack=1 len=512")
    assert "payload-after-fin" in _rules_for(lines)


def test_ack_of_unsent_data_rejected():
    lines = _golden_lines()
    parts = lines[2]
    assert "ack=" in parts
    import re
    lines[2] = re.sub(r"ack=\d+", "ack=99999999", parts)
    assert "ack-unsent" in _rules_for(lines)


def test_sequence_gap_rejected():
    lines = _golden_lines()
    import re
    # Jump a data segment's sequence far beyond anything transmitted.
    for index, line in enumerate(lines):
        if "len=0" not in line and "[P" in line:
            lines[index] = re.sub(r"seq=\d+", "seq=77777777", line)
            break
    assert "seq-monotonic" in _rules_for(lines)


def test_truncated_teardown_rejected():
    lines = _golden_lines()
    # Drop the final exchange: FINs go unacknowledged / unsent.
    assert "half-close" in _rules_for(lines[:-6])


def test_rst_rejected_in_clean_mode():
    lines = _golden_lines()
    lines.append("  5.000000 zorch.w3.org:32768 > www26.w3.org:80 "
                 "[R] seq=1 ack=0 len=0")
    assert "rst" in _rules_for(lines)


def test_malformed_trace_line_raises():
    with pytest.raises(ValueError):
        parse_trace_text("not a trace line at all\n")


# ----------------------------------------------------------------------
# Lossy fixtures: captured under fault injection
# ----------------------------------------------------------------------
def test_lossy_fixture_exists():
    assert len(LOSSY_TRACES) == 1


@pytest.mark.parametrize("trace", LOSSY_TRACES, ids=lambda p: p.stem)
def test_lossy_trace_validates_under_relaxed_config(trace):
    text = trace.read_text(encoding="utf-8")
    violations = validate_trace_text(
        text, SanitizerConfig.for_faulty_run())
    assert violations == []


@pytest.mark.parametrize("trace", LOSSY_TRACES, ids=lambda p: p.stem)
def test_lossy_trace_rejected_under_strict_config(trace):
    """The relaxed config is load-bearing: the same capture trips the
    clean-run invariants (server aborts show up as RSTs)."""
    text = trace.read_text(encoding="utf-8")
    violations = validate_trace_text(text, SanitizerConfig())
    assert any(v.rule == "rst" for v in violations)


def test_for_faulty_run_relaxes_only_fault_rules():
    strict = SanitizerConfig()
    relaxed = SanitizerConfig.for_faulty_run(strict)
    assert relaxed.allow_rst and not strict.allow_rst
    assert not relaxed.require_teardown and strict.require_teardown
    assert relaxed.transit_bound > strict.transit_bound
    # Structural invariants stay armed.
    assert relaxed.mss == strict.mss
    assert relaxed.nagle_client == strict.nagle_client


# ----------------------------------------------------------------------
# Nagle invariant
# ----------------------------------------------------------------------
def _segment(time, seq, length, ack=1):
    return (time, "a", 1, "b", 2,
            dict(syn=False, fin=False, rst=False, ack_flag=True,
                 seq=seq, ack=ack, payload_len=length))


def test_two_outstanding_smalls_flagged_when_nagle_enabled():
    config = SanitizerConfig(nagle_client=True, require_teardown=False)
    validator = TraceValidator(config)
    # Handshake.
    validator.observe(0.0, "a", 1, "b", 2, syn=True, fin=False,
                      rst=False, ack_flag=False, seq=0, ack=0,
                      payload_len=0)
    validator.observe(0.1, "b", 2, "a", 1, syn=True, fin=False,
                      rst=False, ack_flag=True, seq=0, ack=1,
                      payload_len=0)
    validator.observe(0.2, "a", 1, "b", 2, syn=False, fin=False,
                      rst=False, ack_flag=True, seq=1, ack=1,
                      payload_len=0)
    # Two back-to-back sub-MSS segments with nothing acked between.
    time, src, sport, dst, dport, kw = _segment(0.3, 1, 100)
    validator.observe(time, src, sport, dst, dport, **kw)
    time, src, sport, dst, dport, kw = _segment(0.31, 101, 100)
    new = validator.observe(time, src, sport, dst, dport, **kw)
    assert any(v.rule == "nagle" for v in new)


def test_full_sized_segments_never_trip_nagle():
    config = SanitizerConfig(nagle_client=True, require_teardown=False)
    validator = TraceValidator(config)
    validator.observe(0.0, "a", 1, "b", 2, syn=True, fin=False,
                      rst=False, ack_flag=False, seq=0, ack=0,
                      payload_len=0)
    validator.observe(0.1, "b", 2, "a", 1, syn=True, fin=False,
                      rst=False, ack_flag=True, seq=0, ack=1,
                      payload_len=0)
    mss = config.mss
    seq = 1
    for step in range(3):
        time, src, sport, dst, dport, kw = _segment(
            0.2 + step / 100.0, seq, mss)
        validator.observe(time, src, sport, dst, dport, **kw)
        seq += mss
    assert not any(v.rule == "nagle" for v in validator.violations)


# ----------------------------------------------------------------------
# Live sanitizer mode
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["http/1.0", "http/1.1", "pipelined",
                                  "compressed"])
def test_live_sanitizer_passes_golden_cells(mode):
    result = run_experiment(mode, "first-time", environment="WAN",
                            profile="Apache", seed=0, sanitize=True)
    assert result.packets > 0


def test_live_sanitizer_passes_nagle_enabled_server():
    """With Nagle on (server side), the online Nagle check is active
    and the simulator's implementation satisfies it."""
    result = run_experiment("http/1.1", "first-time", environment="WAN",
                            profile=NAGLE_STALL_SERVER, seed=0,
                            sanitize=True)
    assert result.packets > 0


def test_live_sanitizer_raises_on_bad_segment():
    """Inject a forged segment into a live run: the tap must raise."""
    from repro.simnet.link import WAN
    from repro.simnet.network import TwoHostNetwork
    from repro.simnet.packet import Segment

    net = TwoHostNetwork(WAN, seed=0)
    sanitizer = LiveSanitizer(net.link, SanitizerConfig())
    # A payload segment on a flow that never shook hands.
    forged = Segment(src="zorch.w3.org", sport=40000,
                     dst="www26.w3.org", dport=80, seq=1, ack=0,
                     payload=b"x" * 100, flag_ack=True)
    with pytest.raises(InvariantViolationError):
        sanitizer._tap(forged, 0.5)


def test_validator_reports_structured_violations():
    text = GOLDEN_TRACES[0].read_text(encoding="utf-8")
    lines = text.strip().splitlines()
    lines[0], lines[1] = lines[1], lines[0]
    violations = validate_trace_text("\n".join(lines) + "\n",
                                     SanitizerConfig())
    assert violations
    payload = violations[0].to_dict()
    assert {"time", "flow", "rule", "message"} <= set(payload)
    assert "[" in violations[0].format()
