"""Fixture: draws from the interpreter-global RNG."""

import random


def jitter():
    return random.random()
