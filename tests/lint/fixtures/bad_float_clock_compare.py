"""Fixture: exact float equality on a simulated-clock value."""


def timer_due(sim, deadline):
    return sim.now == deadline
