"""Fixture: reads the host clock inside simulation code."""

import time


def timestamp():
    return time.time()
