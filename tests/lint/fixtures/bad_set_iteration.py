"""Fixture: iterates a set, feeding salted hash order downstream."""


def hosts_in_order(hosts):
    for host in set(hosts):
        yield host
