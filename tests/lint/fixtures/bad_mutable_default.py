"""Fixture: mutable default argument shared across calls."""


def record(event, log=[]):
    log.append(event)
    return log
