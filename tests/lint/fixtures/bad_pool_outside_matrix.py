"""Fixture: multiprocessing.Pool construction outside repro.matrix."""

import multiprocessing


def fan_out(work):
    with multiprocessing.Pool(processes=4) as pool:
        return pool.map(len, work)
